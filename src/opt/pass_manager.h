#ifndef TRAPJIT_OPT_PASS_MANAGER_H_
#define TRAPJIT_OPT_PASS_MANAGER_H_

/**
 * @file
 * Ordered pass list with per-pass wall-clock accounting.
 *
 * The timing split (null check optimization vs everything else) is what
 * regenerates the paper's compile-time breakdown (Table 4 / Figure 13):
 * each pass declares which budget it belongs to via
 * Pass::isNullCheckPass().
 *
 * Thread-safety / re-entrancy contract (relied on by the parallel
 * compile service, jit/compile_service.h):
 *
 *  - A PassManager and the Pass objects it owns are *per-job* state:
 *    one worker builds its own manager via buildPipeline() and never
 *    shares it.  Pass member state (e.g. the inliner's Stats) therefore
 *    needs no synchronization.
 *  - Passes must not keep mutable static/global state.  The audit of
 *    src/opt, src/analysis and src/codegen found only immutable
 *    function-local statics (lookup tables); new passes must keep it
 *    that way.
 *  - A pass may mutate only the Function it was handed.  PassContext's
 *    Module may be *read* (the inliner reads callee bodies and the
 *    class table) but never written; the service compiles private
 *    function copies against a module treated as an immutable snapshot
 *    while any job is in flight.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/audit/finding.h"
#include "opt/pass.h"

namespace trapjit
{

/** Accumulated wall-clock time per pass. */
struct PassTimings
{
    /** name -> accumulated seconds. */
    std::map<std::string, double> perPass;
    double nullCheckSeconds = 0.0;
    double otherSeconds = 0.0;

    /** Dataflow solver convergence counters, harvested per run(). */
    SolverStats solver;

    // Soundness-audit accounting (analysis/audit/), populated only when
    // the manager runs with an AuditMode other than Off.
    uint64_t functionsAudited = 0; ///< functions given a final audit
    uint64_t auditFindings = 0;    ///< findings across all audits
    double auditSeconds = 0.0;     ///< wall clock spent auditing

    double total() const { return nullCheckSeconds + otherSeconds; }
    void clear() { *this = PassTimings{}; }

    /** Merge another accounting into this one (per-worker merge). */
    PassTimings &operator+=(const PassTimings &other);
};

/**
 * Whether (and how) the null-check soundness auditor runs alongside the
 * pipeline: translation validation after every null-check pass plus a
 * final whole-function audit (see analysis/audit/audit.h).
 */
enum class AuditMode
{
    Off,     ///< no auditing (production default)
    Panic,   ///< TRAPJIT_PANIC on the first error-severity finding
    Collect, ///< record every finding in auditReport(), never panic
};

/** Runs an ordered list of passes over functions, accumulating timings. */
class PassManager
{
  public:
    /**
     * @param verify_after_each_pass run the IR verifier on the function
     *        before the first pass and after every pass, panicking on
     *        the first structural breakage (names the guilty pass).
     */
    explicit PassManager(bool verify_after_each_pass = false,
                         AuditMode audit_mode = AuditMode::Off)
        : verifyAfterEachPass_(verify_after_each_pass),
          auditMode_(audit_mode)
    {}

    /** Append a pass; runs in insertion order. */
    void add(std::unique_ptr<Pass> pass);

    /** Run all passes once, in order, over @p func. */
    bool run(Function &func, PassContext &ctx);

    const PassTimings &timings() const { return timings_; }
    void clearTimings() { timings_.clear(); }

    bool verifiesAfterEachPass() const { return verifyAfterEachPass_; }
    AuditMode auditMode() const { return auditMode_; }

    /** Findings accumulated across run() calls (Collect mode). */
    const AuditReport &auditReport() const { return auditReport_; }

  private:
    void absorbAudit(const AuditReport &report, const char *when);

    std::vector<std::unique_ptr<Pass>> passes_;
    PassTimings timings_;
    AuditReport auditReport_;
    bool verifyAfterEachPass_ = false;
    AuditMode auditMode_ = AuditMode::Off;
};

} // namespace trapjit

#endif // TRAPJIT_OPT_PASS_MANAGER_H_
