#include "opt/scalar/scalar_replacement.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "analysis/rpo.h"
#include "ir/layout.h"
#include "opt/bounds/bounds_facts.h"
#include "opt/nullcheck/facts.h"

namespace trapjit
{

namespace
{

/** Kind of promoted location. */
enum class LocKind : uint8_t { Field, Length, Element };

/** One candidate group: a loop-invariant heap location. */
struct Group
{
    LocKind kind = LocKind::Field;
    ValueId base = kNoValue;
    int64_t offset = 0;    ///< Field only
    ValueId idx = kNoValue; ///< Element only
    Type type = Type::I32;  ///< loaded value type
    bool hasRead = false;
    bool hasWrite = false;
    bool speculative = false;
    bool invalid = false;
    ValueId tmp = kNoValue; ///< assigned at apply time
};

using GroupKey = std::tuple<uint8_t, ValueId, int64_t, ValueId>;

GroupKey
keyOf(LocKind kind, ValueId base, int64_t offset, ValueId idx)
{
    return GroupKey{static_cast<uint8_t>(kind), base, offset, idx};
}

/**
 * Must-availability of "length value l is arraylength(base)" bindings,
 * used to connect a bounds fact (idx, l) to the array it protects.
 */
class LengthBindingAvailability
{
  public:
    LengthBindingAvailability(const Function &func, DataflowSolver &solver)
    {
        for (size_t b = 0; b < func.numBlocks(); ++b) {
            for (const Instruction &inst :
                 func.block(static_cast<BlockId>(b)).insts()) {
                if (inst.op != Opcode::ArrayLength)
                    continue;
                auto key = std::make_pair(inst.dst, inst.a);
                if (factOf_.emplace(key, pairs_.size()).second)
                    pairs_.push_back(key);
            }
        }
        byValue_.resize(func.numValues());
        for (size_t f = 0; f < pairs_.size(); ++f) {
            byValue_[pairs_[f].first].push_back(f);
            if (pairs_[f].second != pairs_[f].first)
                byValue_[pairs_[f].second].push_back(f);
        }

        const size_t numFacts = pairs_.size();
        const size_t numBlocks = func.numBlocks();
        DataflowSpec fwd;
        fwd.direction = DataflowSpec::Direction::Forward;
        fwd.confluence = DataflowSpec::Confluence::Intersect;
        fwd.numFacts = numFacts;
        fwd.gen.assign(numBlocks, BitSet(numFacts));
        fwd.kill.assign(numBlocks, BitSet(numFacts));
        for (size_t b = 0; b < numBlocks; ++b) {
            const BasicBlock &bb = func.block(static_cast<BlockId>(b));
            BitSet &gen = fwd.gen[b];
            BitSet &kill = fwd.kill[b];
            for (const Instruction &inst : bb.insts()) {
                if (inst.hasDst()) {
                    for (size_t fact : byValue_[inst.dst]) {
                        gen.reset(fact);
                        kill.set(fact);
                    }
                }
                if (inst.op == Opcode::ArrayLength) {
                    int fact = factIdx(inst.dst, inst.a);
                    gen.set(static_cast<size_t>(fact));
                    kill.reset(static_cast<size_t>(fact));
                }
            }
        }
        addExceptionEdgeKills(func, fwd);
        fwd.boundary.resize(numFacts);
        // Retained copy: the shared solver arena is reused for the
        // bounds availability solve right after this constructor.
        result_ = solver.solve(func, fwd);
    }

    /** Length values bound to @p base and available at @p block entry. */
    std::vector<ValueId>
    lengthsOf(ValueId base, BlockId block) const
    {
        std::vector<ValueId> out;
        for (size_t fact : byValue_[base]) {
            if (pairs_[fact].second == base &&
                result_.in[block].test(fact)) {
                out.push_back(pairs_[fact].first);
            }
        }
        return out;
    }

  private:
    int
    factIdx(ValueId len, ValueId base) const
    {
        return static_cast<int>(factOf_.at(std::make_pair(len, base)));
    }

    std::vector<std::pair<ValueId, ValueId>> pairs_; // (len, base)
    std::map<std::pair<ValueId, ValueId>, size_t> factOf_;
    std::vector<std::vector<size_t>> byValue_;
    DataflowResult result_;
};

/** Everything known about one loop's candidates. */
struct LoopPlan
{
    const Loop *loop = nullptr;
    std::vector<Group> groups;
};

/**
 * Collect and validate the promotion candidates of @p loop.
 */
LoopPlan
analyzeLoop(Function &func, PassContext &ctx, const Loop &loop,
            const NonNullDomain &domain,
            const std::vector<BitSet> &nonnull_entry,
            const BoundsUniverse &bu, const DataflowResult *bavail,
            const LengthBindingAvailability &lengths)
{
    LoopPlan plan;
    plan.loop = &loop;

    std::vector<bool> defined(func.numValues(), false);
    bool hasCall = false;
    for (BlockId b : loop.blocks) {
        for (const Instruction &inst : func.block(b).insts()) {
            if (inst.hasDst())
                defined[inst.dst] = true;
            if (inst.op == Opcode::Call)
                hasCall = true;
        }
    }

    std::map<GroupKey, Group> groups;
    // Writes that invalidate: (offset) of field writes through a variant
    // or foreign base; element stores through variant operands.
    std::vector<std::pair<ValueId, int64_t>> fieldWrites; // (base, offset)
    struct ElemWrite
    {
        ValueId base;
        ValueId idx;
        Type elemType;
        bool variant;
    };
    std::vector<ElemWrite> elemWrites;

    auto touch = [&](LocKind kind, ValueId base, int64_t offset,
                     ValueId idx, Type type, bool write) -> Group & {
        auto key = keyOf(kind, base, offset, idx);
        auto [it, fresh] = groups.emplace(key, Group{});
        Group &g = it->second;
        if (fresh) {
            g.kind = kind;
            g.base = base;
            g.offset = offset;
            g.idx = idx;
            g.type = type;
        } else if (g.type != type) {
            g.invalid = true; // mixed-type access, refuse
        }
        (write ? g.hasWrite : g.hasRead) = true;
        return g;
    };

    for (BlockId b : loop.blocks) {
        for (const Instruction &inst : func.block(b).insts()) {
            switch (inst.op) {
              case Opcode::GetField:
                if (!defined[inst.a] && !inst.exceptionSite &&
                    !inst.speculative) {
                    touch(LocKind::Field, inst.a, inst.imm, kNoValue,
                          func.value(inst.dst).type, false);
                }
                break;
              case Opcode::PutField:
                fieldWrites.emplace_back(
                    defined[inst.a] ? kNoValue : inst.a, inst.imm);
                if (!defined[inst.a] && !inst.exceptionSite) {
                    touch(LocKind::Field, inst.a, inst.imm, kNoValue,
                          func.value(inst.b).type, true);
                }
                break;
              case Opcode::ArrayLength:
                if (!defined[inst.a] && !inst.exceptionSite &&
                    !inst.speculative) {
                    touch(LocKind::Length, inst.a, 0, kNoValue,
                          Type::I32, false);
                }
                break;
              case Opcode::ArrayLoad:
                if (!defined[inst.a] && !defined[inst.b] &&
                    !inst.exceptionSite && !inst.speculative) {
                    touch(LocKind::Element, inst.a, 0, inst.b,
                          inst.elemType, false);
                }
                break;
              case Opcode::ArrayStore: {
                bool variant = defined[inst.a] || defined[inst.b];
                elemWrites.push_back(ElemWrite{
                    variant ? kNoValue : inst.a,
                    variant ? kNoValue : inst.b, inst.elemType, variant});
                if (!variant && !inst.exceptionSite) {
                    touch(LocKind::Element, inst.a, 0, inst.b,
                          inst.elemType, true);
                }
                break;
              }
              default:
                break;
            }
        }
    }

    const BlockId header = loop.header;
    for (auto &[key, g] : groups) {
        (void)key;
        if (g.invalid)
            continue;
        // Promoting a write-only location gains nothing and would
        // re-trigger every round; only promote locations that are read.
        if (!g.hasRead)
            continue;

        // Aliasing.
        if (g.kind == LocKind::Field) {
            if (hasCall) {
                g.invalid = true;
                continue;
            }
            for (const auto &[wbase, woffset] : fieldWrites) {
                if (woffset == g.offset && wbase != g.base) {
                    g.invalid = true;
                    break;
                }
            }
        } else if (g.kind == LocKind::Element) {
            if (hasCall) {
                g.invalid = true;
                continue;
            }
            for (const ElemWrite &w : elemWrites) {
                if (w.elemType != g.type)
                    continue;
                if (w.variant || w.base != g.base || w.idx != g.idx) {
                    g.invalid = true;
                    break;
                }
            }
        }
        if (g.invalid)
            continue;

        // Null safety of the preheader load.
        bool isNonNull =
            domain.tracked(g.base) &&
            nonnull_entry[header].test(domain.nonnullBit(g.base));
        if (!isNonNull) {
            int64_t off = g.kind == LocKind::Field ? g.offset
                          : g.kind == LocKind::Length ? kArrayLengthOffset
                                                      : -1;
            if (ctx.enableSpeculation &&
                ctx.target.readIsSpeculationSafe(off)) {
                g.speculative = true;
            } else {
                g.invalid = true;
                continue;
            }
        }

        // Bounds safety of a hoisted element load: some available length
        // binding of the base must have an available bounds fact with the
        // group's index.
        if (g.kind == LocKind::Element) {
            bool inBounds = false;
            if (bavail) {
                for (ValueId len : lengths.lengthsOf(g.base, header)) {
                    int bfact = bu.factOf(g.idx, len);
                    if (bfact >= 0 &&
                        bavail->in[header].test(
                            static_cast<size_t>(bfact))) {
                        inBounds = true;
                        break;
                    }
                }
            }
            if (!inBounds) {
                g.invalid = true;
                continue;
            }
        }

        plan.groups.push_back(g);
    }
    return plan;
}

/** Materialize the plan: preheader loads, in-loop moves. */
void
applyPlan(Function &func, LoopPlan &plan, BlockId preheader,
          ScalarReplacement::Stats &stats)
{
    for (Group &g : plan.groups) {
        g.tmp = func.addTemp(g.type);
        Instruction load;
        switch (g.kind) {
          case LocKind::Field:
            load.op = Opcode::GetField;
            load.dst = g.tmp;
            load.a = g.base;
            load.imm = g.offset;
            ++stats.promotedFields;
            break;
          case LocKind::Length:
            load.op = Opcode::ArrayLength;
            load.dst = g.tmp;
            load.a = g.base;
            ++stats.promotedLengths;
            break;
          case LocKind::Element:
            load.op = Opcode::ArrayLoad;
            load.dst = g.tmp;
            load.a = g.base;
            load.b = g.idx;
            load.elemType = g.type;
            ++stats.promotedElements;
            break;
        }
        load.speculative = g.speculative;
        if (g.speculative)
            ++stats.speculativeLoads;
        load.site = func.takeSiteId();
        func.block(preheader).insertBeforeTerminator(std::move(load));
    }

    auto findGroup = [&](LocKind kind, ValueId base, int64_t offset,
                         ValueId idx, Type type) -> Group * {
        for (Group &g : plan.groups) {
            if (g.kind == kind && g.base == base && g.offset == offset &&
                g.idx == idx && g.type == type) {
                return &g;
            }
        }
        return nullptr;
    };

    for (BlockId b : plan.loop->blocks) {
        BasicBlock &bb = func.block(b);
        std::vector<Instruction> rebuilt;
        rebuilt.reserve(bb.insts().size());
        for (Instruction inst : bb.insts()) {
            Group *g = nullptr;
            ValueId stored = kNoValue;
            switch (inst.op) {
              case Opcode::GetField:
                if (!inst.exceptionSite && !inst.speculative) {
                    g = findGroup(LocKind::Field, inst.a, inst.imm,
                                  kNoValue, func.value(inst.dst).type);
                }
                if (g) {
                    Instruction move;
                    move.op = Opcode::Move;
                    move.dst = inst.dst;
                    move.a = g->tmp;
                    move.site = inst.site;
                    rebuilt.push_back(move);
                    continue;
                }
                break;
              case Opcode::ArrayLength:
                if (!inst.exceptionSite && !inst.speculative) {
                    g = findGroup(LocKind::Length, inst.a, 0, kNoValue,
                                  Type::I32);
                }
                if (g) {
                    Instruction move;
                    move.op = Opcode::Move;
                    move.dst = inst.dst;
                    move.a = g->tmp;
                    move.site = inst.site;
                    rebuilt.push_back(move);
                    continue;
                }
                break;
              case Opcode::ArrayLoad:
                if (!inst.exceptionSite && !inst.speculative) {
                    g = findGroup(LocKind::Element, inst.a, 0, inst.b,
                                  inst.elemType);
                }
                if (g) {
                    Instruction move;
                    move.op = Opcode::Move;
                    move.dst = inst.dst;
                    move.a = g->tmp;
                    move.site = inst.site;
                    rebuilt.push_back(move);
                    continue;
                }
                break;
              case Opcode::PutField:
                g = findGroup(LocKind::Field, inst.a, inst.imm, kNoValue,
                              func.value(inst.b).type);
                stored = inst.b;
                break;
              case Opcode::ArrayStore:
                g = findGroup(LocKind::Element, inst.a, 0, inst.b,
                              inst.elemType);
                stored = inst.c;
                break;
              default:
                break;
            }
            rebuilt.push_back(inst);
            if (g && stored != kNoValue) {
                // Keep the store (observable) and track it in the temp.
                Instruction move;
                move.op = Opcode::Move;
                move.dst = g->tmp;
                move.a = stored;
                move.site = func.takeSiteId();
                rebuilt.push_back(move);
            }
        }
        bb.insts() = std::move(rebuilt);
    }
}

} // namespace

bool
ScalarReplacement::runOnFunction(Function &func, PassContext &ctx)
{
    stats_ = Stats{};
    bool changedAny = false;

    // Transform one loop per iteration and re-derive all analyses; loop
    // counts are small, clarity wins.
    for (int round = 0; round < 64; ++round) {
        func.recomputeCFG();
        DominatorTree dom(func);
        LoopForest forest(func, dom);
        if (forest.loops().empty())
            break;

        NullCheckUniverse ncu(func);
        NonNullDomain domain(func, ncu, &ctx.target);
        const NonNullStates &nonnull =
            nonnullSolver_.solve(func, domain, ncu, nullptr);
        BoundsUniverse bu(func);
        LengthBindingAvailability lengths(func, solver_);
        bool haveBounds = bu.numFacts() > 0;
        // Solved last on solver_, so the reference stays valid for the
        // whole round (lengths already copied its own result out).
        const DataflowResult *bavail =
            haveBounds
                ? &solveBoundsAvailability(func, bu, nullptr, solver_)
                : nullptr;

        // Innermost loops first.
        std::vector<const Loop *> order;
        for (const Loop &loop : forest.loops())
            order.push_back(&loop);
        std::sort(order.begin(), order.end(),
                  [](const Loop *a, const Loop *b) {
                      return a->depth > b->depth;
                  });

        bool changed = false;
        for (const Loop *loop : order) {
            if (loop->header == 0)
                continue;
            LoopPlan plan = analyzeLoop(func, ctx, *loop, domain,
                                        nonnull.in, bu, bavail, lengths);
            if (plan.groups.empty())
                continue;
            BlockId preheader = ensurePreheader(func, *loop);
            applyPlan(func, plan, preheader, stats_);
            changed = true;
            changedAny = true;
            break; // analyses are stale; restart
        }
        if (!changed)
            break;
    }
    ctx.solverStats += solver_.takeStats();
    ctx.solverStats += nonnullSolver_.takeStats();
    return changedAny;
}

} // namespace trapjit
