#ifndef TRAPJIT_OPT_SCALAR_SCALAR_REPLACEMENT_H_
#define TRAPJIT_OPT_SCALAR_SCALAR_REPLACEMENT_H_

/**
 * @file
 * Scalar replacement of loop-invariant memory accesses (Figures 4 and 6).
 *
 * For each natural loop, accesses whose address is loop-invariant —
 * `obj.field`, `arraylength arr`, `arr[idx]` with invariant operands —
 * are promoted to a temporary: one load in the preheader, `move`s inside
 * the loop, and (for written locations) a temp update after each store.
 * Stores themselves always stay in place, so the heap image at any
 * exception point is unchanged (precise exceptions are free); loads are
 * unobservable and may move.
 *
 * Hoisting the preheader load must not introduce a fault:
 *  - the base must be known non-null at the loop header (which is what
 *    phase 1's check hoisting establishes — the two passes assist each
 *    other exactly as Figure 4 shows), OR, on targets whose OS does not
 *    trap reads of the null page, the load may be issued *speculatively*
 *    (Section 5.4) and is tagged as such;
 *  - an element access additionally needs an available bounds fact
 *    `boundcheck(idx, len)` with `len` bound to `arraylength(base)` at
 *    the header (established by the bounds pass of the iterated
 *    pipeline).
 *
 * A loop containing a call is skipped for field/element promotion (the
 * callee may write anything) — this is why the non-intrinsified Math.exp
 * call limits Neural Net on the PowerPC model.  `arraylength` promotion
 * survives calls: lengths are immutable.
 */

#include "analysis/dataflow.h"
#include "opt/nullcheck/facts.h"
#include "opt/pass.h"

namespace trapjit
{

/** Loop-level scalar replacement with optional read speculation. */
class ScalarReplacement : public Pass
{
  public:
    const char *name() const override { return "scalar-replacement"; }
    bool runOnFunction(Function &func, PassContext &ctx) override;

    struct Stats
    {
        size_t promotedFields = 0;
        size_t promotedLengths = 0;
        size_t promotedElements = 0;
        size_t speculativeLoads = 0;
    };

    const Stats &lastStats() const { return stats_; }

  private:
    Stats stats_;
    DataflowSolver solver_;       ///< bounds availability + length bindings
    NonNullSolver nonnullSolver_; ///< hoist-safety non-nullness
};

} // namespace trapjit

#endif // TRAPJIT_OPT_SCALAR_SCALAR_REPLACEMENT_H_
