#include "runtime/exceptions.h"

namespace trapjit
{

// ThrownExc and HardFault are header-only; this translation unit anchors
// the component.

} // namespace trapjit
