#ifndef TRAPJIT_RUNTIME_EXCEPTIONS_H_
#define TRAPJIT_RUNTIME_EXCEPTIONS_H_

/**
 * @file
 * Runtime failure modes.
 *
 * Two very different things can go wrong while executing IR:
 *
 *  - a *Java-level exception* (NullPointerException & friends), which is
 *    part of the program's defined semantics and is dispatched to try
 *    handlers — represented as a plain value (ThrownExc), never as a C++
 *    exception;
 *
 *  - a *miscompilation* (HardFault): the optimizer emitted code whose
 *    execution dereferenced an unprotected null offset, stored out of an
 *    array's bounds without a preceding check, etc.  On real hardware
 *    this would be a crash or silent corruption.  The interpreter throws
 *    HardFault so that the test suite fails loudly.
 */

#include <stdexcept>
#include <string>

#include "ir/function.h"

namespace trapjit
{

/** A pending Java-level exception. */
struct ThrownExc
{
    ExcKind kind = ExcKind::None;
    SiteId site = 0; ///< the instruction site that raised it (debug aid)

    bool pending() const { return kind != ExcKind::None; }
};

/** A miscompilation detected at execution time. */
class HardFault : public std::runtime_error
{
  public:
    explicit HardFault(const std::string &what)
        : std::runtime_error(what)
    {}
};

} // namespace trapjit

#endif // TRAPJIT_RUNTIME_EXCEPTIONS_H_
