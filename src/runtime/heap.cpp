#include "runtime/heap.h"

#include <cstring>

#include <sys/mman.h>

#include "support/diagnostics.h"

namespace trapjit
{

Heap::Heap(size_t capacity_bytes)
    : mapBytes_(static_cast<size_t>(kHeapBase) + capacity_bytes),
      limit_(kHeapBase + capacity_bytes)
{
    // One mapping: [0, kHeapBase) is the PROT_NONE guard region standing
    // in for the OS's protected page-zero area, the rest is the arena.
    // MAP_NORESERVE keeps a fleet of test heaps cheap — pages commit on
    // first touch.
    void *map = mmap(nullptr, mapBytes_, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (map == MAP_FAILED)
        TRAPJIT_FATAL("mmap of the heap arena failed");
    base_ = static_cast<uint8_t *>(map);
    if (mprotect(base_ + kHeapBase, capacity_bytes,
                 PROT_READ | PROT_WRITE) != 0)
        TRAPJIT_FATAL("mprotect of the heap arena failed");
}

Heap::~Heap()
{
    if (base_ != nullptr)
        munmap(base_, mapBytes_);
}

// Allocation hands out pre-zeroed memory without touching it: bytes
// above next_ are always zero — fresh anonymous pages are zero-fill on
// first touch, every store lands inside an already-allocated block
// (below next_), and reset() re-wipes [kHeapBase, next_) before the
// bump pointer rewinds.  That keeps allocation O(1) regardless of
// object size (jumbo-field profiles allocate ~512 KB nodes) and moves
// all zeroing cost into reset(), off the execution path, where callers
// recycling a heap between runs can amortize or exclude it.

Address
Heap::allocateObject(ClassId cls, int64_t size)
{
    TRAPJIT_ASSERT(size >= kFieldBaseOffset, "undersized allocation");
    int64_t rounded = (size + 7) & ~int64_t(7);
    if (next_ + rounded > limit_)
        return 0;
    Address ref = next_;
    next_ += rounded;
    writeI32(ref + kHeaderOffset, static_cast<int32_t>(cls));
    return ref;
}

Address
Heap::allocateArray(Type elem_type, int32_t length)
{
    TRAPJIT_ASSERT(length >= 0, "negative array length reached the heap");
    int64_t size =
        kArrayDataOffset + int64_t(length) * typeSize(elem_type);
    int64_t rounded = (size + 7) & ~int64_t(7);
    if (next_ + rounded > limit_)
        return 0;
    Address ref = next_;
    next_ += rounded;
    writeI32(ref + kArrayLengthOffset, length);
    return ref;
}

uint64_t
Heap::digest() const
{
    uint64_t hash = 1469598103934665603ull;
    size_t used = static_cast<size_t>(next_ - kHeapBase);
    const uint8_t *data = base_ + kHeapBase;
    for (size_t i = 0; i < used; ++i) {
        hash ^= data[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

Heap::Difference
Heap::firstDifference(const Heap &other) const
{
    Difference diff;
    const size_t mine = static_cast<size_t>(next_ - kHeapBase);
    const size_t theirs = static_cast<size_t>(other.next_ - kHeapBase);
    const size_t common = mine < theirs ? mine : theirs;
    const uint8_t *a = base_ + kHeapBase;
    const uint8_t *b = other.base_ + kHeapBase;
    for (size_t i = 0; i < common; i += 8) {
        const size_t span = common - i < 8 ? common - i : 8;
        uint64_t wa = 0, wb = 0;
        std::memcpy(&wa, a + i, span);
        std::memcpy(&wb, b + i, span);
        if (wa != wb) {
            diff.differs = true;
            diff.address = kHeapBase + i;
            diff.lhsWord = wa;
            diff.rhsWord = wb;
            return diff;
        }
    }
    if (mine != theirs) {
        diff.differs = true;
        diff.sizeOnly = true;
        diff.address = kHeapBase + common;
    }
    return diff;
}

void
Heap::reset()
{
    size_t used = static_cast<size_t>(next_ - kHeapBase);
    std::memset(base_ + kHeapBase, 0, used);
    next_ = kHeapBase;
}

} // namespace trapjit
