#include "runtime/heap.h"

#include <cstring>

#include "support/diagnostics.h"

namespace trapjit
{

Heap::Heap(size_t capacity_bytes)
    : arena_(capacity_bytes, 0), limit_(kHeapBase + capacity_bytes)
{}

Address
Heap::allocateObject(ClassId cls, int64_t size)
{
    TRAPJIT_ASSERT(size >= kFieldBaseOffset, "undersized allocation");
    int64_t rounded = (size + 7) & ~int64_t(7);
    if (next_ + rounded > limit_)
        return 0;
    Address ref = next_;
    next_ += rounded;
    std::memset(plot(ref), 0, static_cast<size_t>(rounded));
    writeI32(ref + kHeaderOffset, static_cast<int32_t>(cls));
    return ref;
}

Address
Heap::allocateArray(Type elem_type, int32_t length)
{
    TRAPJIT_ASSERT(length >= 0, "negative array length reached the heap");
    int64_t size =
        kArrayDataOffset + int64_t(length) * typeSize(elem_type);
    int64_t rounded = (size + 7) & ~int64_t(7);
    if (next_ + rounded > limit_)
        return 0;
    Address ref = next_;
    next_ += rounded;
    std::memset(plot(ref), 0, static_cast<size_t>(rounded));
    writeI32(ref + kArrayLengthOffset, length);
    return ref;
}

uint64_t
Heap::digest() const
{
    uint64_t hash = 1469598103934665603ull;
    size_t used = static_cast<size_t>(next_ - kHeapBase);
    const uint8_t *data = arena_.data();
    for (size_t i = 0; i < used; ++i) {
        hash ^= data[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

void
Heap::reset()
{
    size_t used = static_cast<size_t>(next_ - kHeapBase);
    std::memset(arena_.data(), 0, used);
    next_ = kHeapBase;
}

} // namespace trapjit
