#ifndef TRAPJIT_RUNTIME_HEAP_H_
#define TRAPJIT_RUNTIME_HEAP_H_

/**
 * @file
 * Simulated Java heap backed by a real guard page.
 *
 * References are plain 64-bit addresses into an mmap'd arena; the null
 * reference is address 0.  The arena is one contiguous mapping whose
 * first `kHeapBase` bytes are PROT_NONE, so simulated address A lives at
 * host address hostBase() + A and an access through a null reference —
 * any offset below kHeapBase — lands on protected memory and raises a
 * real SIGSEGV.  The interpreters never touch that region (they check
 * for null first and consult the Target's trap model), but the native
 * x86-64 tier (codegen/native/) relies on the hardware fault exactly
 * the way the paper's JIT does: an implicit null check emits zero
 * instructions and the faulting load/store is caught by the signal
 * handler in codegen/native/native_runtime.cpp.
 *
 * Object layout (see ir/layout.h): 4-byte class-id header at offset 0;
 * arrays keep their length at offset 4 and elements from offset 8;
 * object fields start at offset 8.
 */

#include <cstdint>
#include <cstring>

#include "ir/layout.h"
#include "ir/type.h"
#include "ir/value.h"

namespace trapjit
{

/** Runtime address (a simulated reference). */
using Address = uint64_t;

/** First allocatable address: above any legal field offset from null. */
constexpr Address kHeapBase = 0x100000; // 1 MiB > kMaxFieldOffset

/** Bump-pointer arena with typed accessors. */
class Heap
{
  public:
    /** @param capacity_bytes arena size available for allocation. */
    explicit Heap(size_t capacity_bytes = 32u << 20);
    ~Heap();

    Heap(const Heap &) = delete;
    Heap &operator=(const Heap &) = delete;

    /**
     * Allocate @p size zeroed bytes tagged with @p cls in the header.
     * Returns 0 (null) when the arena is exhausted — the caller turns
     * that into an OutOfMemoryError.
     */
    Address allocateObject(ClassId cls, int64_t size);

    /**
     * Allocate an array of @p length elements of @p elem_type; writes the
     * length word.  Returns 0 when exhausted.  @p length must be >= 0.
     */
    Address allocateArray(Type elem_type, int32_t length);

    /** Bytes currently allocated (excludes the guarded low region). */
    size_t bytesAllocated() const { return next_ - kHeapBase; }

    /** True if [addr, addr+size) is inside the allocated arena. */
    bool
    inBounds(Address addr, int64_t size) const
    {
        return addr >= kHeapBase && addr + size <= next_;
    }

    /**
     * Host address of simulated address 0: host = hostBase() + simulated.
     * The native tier keeps this bias in a register; [hostBase(),
     * hostBase()+kHeapBase) is the PROT_NONE guard region whose faults
     * the SIGSEGV handler converts into NullPointerExceptions.
     */
    uint8_t *hostBase() const { return base_; }

    /** Host range of the guard region (fault-address classification). */
    uintptr_t guardLo() const { return reinterpret_cast<uintptr_t>(base_); }
    uintptr_t
    guardHi() const
    {
        return reinterpret_cast<uintptr_t>(base_) + kHeapBase;
    }

    // Typed accessors; addresses must be in bounds (callers check).
    // Inline: these sit on the hottest path of both interpreter engines.
    int32_t
    readI32(Address addr) const
    {
        int32_t v;
        std::memcpy(&v, plot(addr), sizeof(v));
        return v;
    }

    int64_t
    readI64(Address addr) const
    {
        int64_t v;
        std::memcpy(&v, plot(addr), sizeof(v));
        return v;
    }

    double
    readF64(Address addr) const
    {
        double v;
        std::memcpy(&v, plot(addr), sizeof(v));
        return v;
    }

    Address
    readRef(Address addr) const
    {
        Address v;
        std::memcpy(&v, plot(addr), sizeof(v));
        return v;
    }

    void
    writeI32(Address addr, int32_t value)
    {
        std::memcpy(plot(addr), &value, sizeof(value));
    }

    void
    writeI64(Address addr, int64_t value)
    {
        std::memcpy(plot(addr), &value, sizeof(value));
    }

    void
    writeF64(Address addr, double value)
    {
        std::memcpy(plot(addr), &value, sizeof(value));
    }

    void
    writeRef(Address addr, Address value)
    {
        std::memcpy(plot(addr), &value, sizeof(value));
    }

    /** Class id stored in the header of the object at @p ref. */
    ClassId
    classOf(Address ref) const
    {
        return static_cast<ClassId>(readI32(ref + kHeaderOffset));
    }

    /** Length word of the array at @p ref. */
    int32_t
    arrayLength(Address ref) const
    {
        return static_cast<int32_t>(readI32(ref + kArrayLengthOffset));
    }

    /** FNV-1a digest of the allocated region (for equivalence tests). */
    uint64_t digest() const;

    /**
     * First 8-byte word at which this heap's allocated region differs
     * from @p other's — the actionable half of a digest mismatch.  A
     * size difference with bit-identical common prefix reports the
     * first address past the shorter arena.
     */
    struct Difference
    {
        bool differs = false;
        Address address = 0; ///< simulated address of the word
        uint64_t lhsWord = 0;
        uint64_t rhsWord = 0;
        bool sizeOnly = false; ///< arenas differ only in extent
    };
    Difference firstDifference(const Heap &other) const;

    /** Release everything (arena is reused). */
    void reset();

  private:
    uint8_t *plot(Address addr) { return base_ + addr; }
    const uint8_t *plot(Address addr) const { return base_ + addr; }

    uint8_t *base_ = nullptr; ///< host address of simulated address 0
    size_t mapBytes_ = 0;     ///< total mapping size (guard + arena)
    Address next_ = kHeapBase;
    Address limit_;
};

} // namespace trapjit

#endif // TRAPJIT_RUNTIME_HEAP_H_
