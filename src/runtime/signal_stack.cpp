#include "runtime/signal_stack.h"

#include <csignal>
#include <cstdlib>
#include <cstring>

#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

/** Owns one thread's alternate stack; unregisters it on thread exit. */
struct AltStack
{
    void *memory = nullptr;
    bool registered = false;
    bool checked = false;

    void
    install()
    {
        checked = true;
        stack_t current;
        if (sigaltstack(nullptr, &current) == 0 &&
            !(current.ss_flags & SS_DISABLE) && current.ss_sp != nullptr)
            return; // the thread already has one

        size_t size = SIGSTKSZ < 64 * 1024 ? 64 * 1024 : size_t(SIGSTKSZ);
        memory = std::malloc(size);
        if (memory == nullptr)
            TRAPJIT_FATAL("alternate signal stack allocation failed");
        stack_t ss;
        std::memset(&ss, 0, sizeof(ss));
        ss.ss_sp = memory;
        ss.ss_size = size;
        ss.ss_flags = 0;
        if (sigaltstack(&ss, nullptr) != 0)
            TRAPJIT_FATAL("sigaltstack registration failed");
        registered = true;
    }

    ~AltStack()
    {
        if (registered) {
            stack_t ss;
            std::memset(&ss, 0, sizeof(ss));
            ss.ss_flags = SS_DISABLE;
            sigaltstack(&ss, nullptr);
        }
        std::free(memory);
    }
};

} // namespace

void
ensureAltSignalStack()
{
    thread_local AltStack stack;
    if (!stack.checked)
        stack.install();
}

} // namespace trapjit
