#ifndef TRAPJIT_RUNTIME_SIGNAL_STACK_H_
#define TRAPJIT_RUNTIME_SIGNAL_STACK_H_

/**
 * @file
 * Per-thread alternate signal stack.
 *
 * SIGSEGV handlers that must run reliably — the trap-runtime demo and the
 * native tier's implicit-null-check recovery — are installed SA_ONSTACK
 * so a fault with a nearly exhausted thread stack still reaches the
 * handler.  That only works if the faulting thread registered an
 * alternate stack first; ensureAltSignalStack() does so idempotently for
 * the calling thread and keeps the memory alive until thread exit.
 */

namespace trapjit
{

/**
 * Register a SIGALTSTACK for the calling thread if it does not already
 * have one (ours or anyone else's).  Safe to call repeatedly and from
 * any number of threads concurrently.
 */
void ensureAltSignalStack();

} // namespace trapjit

#endif // TRAPJIT_RUNTIME_SIGNAL_STACK_H_
