#include "runtime/trap_runtime.h"

#include <atomic>
#include <csetjmp>
#include <csignal>
#include <cstring>

#include <sys/mman.h>
#include <unistd.h>

#include "runtime/signal_stack.h"
#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

// Per-thread trap state: each thread that enters a guarded accessor arms
// its own jump buffer, so concurrent traps on different threads unwind
// independently.  The guard range is instance state but stored in
// atomics so the handler (which may run on any thread) reads it without
// a data race.  SA_NODEFER lets the handler siglongjmp out with SIGSEGV
// still deliverable, which is what makes sigsetjmp(buf, 0) — no
// sigprocmask syscall on the hot path — sufficient.
thread_local sigjmp_buf t_trapJmp;
thread_local volatile sig_atomic_t t_trapArmed = 0;
std::atomic<uintptr_t> g_guardLo{0};
std::atomic<uintptr_t> g_guardHi{0};
struct sigaction g_prevAction;

void
segvHandler(int signo, siginfo_t *info, void *context)
{
    uintptr_t fault = reinterpret_cast<uintptr_t>(info->si_addr);
    if (t_trapArmed &&
        fault >= g_guardLo.load(std::memory_order_relaxed) &&
        fault < g_guardHi.load(std::memory_order_relaxed)) {
        // A null-reference access inside the protected page: unwind back
        // to this thread's guarded accessor, which reports "NPE".
        t_trapArmed = 0;
        siglongjmp(t_trapJmp, 1);
    }
    // Not ours: chain to the previous handler (or die by default).
    if (g_prevAction.sa_flags & SA_SIGINFO) {
        if (g_prevAction.sa_sigaction)
            g_prevAction.sa_sigaction(signo, info, context);
        return;
    }
    if (g_prevAction.sa_handler == SIG_IGN)
        return;
    if (g_prevAction.sa_handler != SIG_DFL) {
        g_prevAction.sa_handler(signo);
        return;
    }
    signal(signo, SIG_DFL);
    raise(signo);
}

} // namespace

TrapRuntime::TrapRuntime()
{
    ensureAltSignalStack();
    pageSize_ = static_cast<size_t>(sysconf(_SC_PAGESIZE));
    void *page = mmap(nullptr, pageSize_, PROT_NONE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (page == MAP_FAILED)
        TRAPJIT_FATAL("mmap of the protected page failed");
    pageBase_ = reinterpret_cast<uintptr_t>(page);
    g_guardLo.store(pageBase_, std::memory_order_relaxed);
    g_guardHi.store(pageBase_ + pageSize_, std::memory_order_relaxed);

    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = segvHandler;
    action.sa_flags = SA_SIGINFO | SA_NODEFER | SA_ONSTACK;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGSEGV, &action, &g_prevAction) != 0)
        TRAPJIT_FATAL("sigaction(SIGSEGV) failed");
    handlerInstalled_ = true;
}

TrapRuntime::~TrapRuntime()
{
    if (handlerInstalled_)
        sigaction(SIGSEGV, &g_prevAction, nullptr);
    if (pageBase_ != 0)
        munmap(reinterpret_cast<void *>(pageBase_), pageSize_);
    g_guardLo.store(0, std::memory_order_relaxed);
    g_guardHi.store(0, std::memory_order_relaxed);
}

std::optional<int32_t>
TrapRuntime::guardedReadI32(uintptr_t addr)
{
    ensureAltSignalStack();
    if (sigsetjmp(t_trapJmp, 0) != 0) {
        // We arrive here from the handler: the access trapped.
        trapsTaken_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    t_trapArmed = 1;
    int32_t value = *reinterpret_cast<volatile int32_t *>(addr);
    t_trapArmed = 0;
    return value;
}

bool
TrapRuntime::guardedWriteI32(uintptr_t addr, int32_t value)
{
    ensureAltSignalStack();
    if (sigsetjmp(t_trapJmp, 0) != 0) {
        trapsTaken_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    t_trapArmed = 1;
    *reinterpret_cast<volatile int32_t *>(addr) = value;
    t_trapArmed = 0;
    return true;
}

bool
TrapRuntime::trapCoversAddress(uintptr_t addr) const
{
    return addr >= pageBase_ && addr < pageBase_ + pageSize_;
}

} // namespace trapjit
