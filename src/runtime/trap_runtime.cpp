#include "runtime/trap_runtime.h"

#include <csetjmp>
#include <csignal>
#include <cstring>

#include <sys/mman.h>
#include <unistd.h>

#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

// Single-threaded trap state.  `volatile sig_atomic_t` flags what the
// handler may touch; the jump buffer carries control out of the handler.
sigjmp_buf g_trapJmp;
volatile sig_atomic_t g_trapArmed = 0;
uintptr_t g_guardLo = 0;
uintptr_t g_guardHi = 0;
struct sigaction g_prevAction;

void
segvHandler(int signo, siginfo_t *info, void *context)
{
    uintptr_t fault = reinterpret_cast<uintptr_t>(info->si_addr);
    if (g_trapArmed && fault >= g_guardLo && fault < g_guardHi) {
        // A null-reference access inside the protected page: unwind back
        // to the guarded accessor, which reports "NPE".
        g_trapArmed = 0;
        siglongjmp(g_trapJmp, 1);
    }
    // Not ours: chain to the previous handler (or die by default).
    if (g_prevAction.sa_flags & SA_SIGINFO) {
        if (g_prevAction.sa_sigaction)
            g_prevAction.sa_sigaction(signo, info, context);
        return;
    }
    if (g_prevAction.sa_handler == SIG_IGN)
        return;
    if (g_prevAction.sa_handler != SIG_DFL) {
        g_prevAction.sa_handler(signo);
        return;
    }
    signal(signo, SIG_DFL);
    raise(signo);
}

} // namespace

TrapRuntime::TrapRuntime()
{
    pageSize_ = static_cast<size_t>(sysconf(_SC_PAGESIZE));
    void *page = mmap(nullptr, pageSize_, PROT_NONE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (page == MAP_FAILED)
        TRAPJIT_FATAL("mmap of the protected page failed");
    pageBase_ = reinterpret_cast<uintptr_t>(page);
    g_guardLo = pageBase_;
    g_guardHi = pageBase_ + pageSize_;

    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = segvHandler;
    action.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGSEGV, &action, &g_prevAction) != 0)
        TRAPJIT_FATAL("sigaction(SIGSEGV) failed");
    handlerInstalled_ = true;
}

TrapRuntime::~TrapRuntime()
{
    if (handlerInstalled_)
        sigaction(SIGSEGV, &g_prevAction, nullptr);
    if (pageBase_ != 0)
        munmap(reinterpret_cast<void *>(pageBase_), pageSize_);
    g_guardLo = g_guardHi = 0;
}

std::optional<int32_t>
TrapRuntime::guardedReadI32(uintptr_t addr)
{
    if (sigsetjmp(g_trapJmp, 1) != 0) {
        // We arrive here from the handler: the access trapped.
        ++trapsTaken_;
        return std::nullopt;
    }
    g_trapArmed = 1;
    int32_t value = *reinterpret_cast<volatile int32_t *>(addr);
    g_trapArmed = 0;
    return value;
}

bool
TrapRuntime::guardedWriteI32(uintptr_t addr, int32_t value)
{
    if (sigsetjmp(g_trapJmp, 1) != 0) {
        ++trapsTaken_;
        return false;
    }
    g_trapArmed = 1;
    *reinterpret_cast<volatile int32_t *>(addr) = value;
    g_trapArmed = 0;
    return true;
}

bool
TrapRuntime::trapCoversAddress(uintptr_t addr) const
{
    return addr >= pageBase_ && addr < pageBase_ + pageSize_;
}

} // namespace trapjit
