#ifndef TRAPJIT_RUNTIME_TRAP_RUNTIME_H_
#define TRAPJIT_RUNTIME_TRAP_RUNTIME_H_

/**
 * @file
 * Real hardware-trap null checking on the host.
 *
 * The simulation used by the experiments models OS page protection inside
 * the interpreter.  This component demonstrates the actual mechanism the
 * paper's JIT uses on a real machine: a page is mapped PROT_NONE, a
 * SIGSEGV handler is installed, and a memory access through a "null"
 * reference faults into the handler, which unwinds back to the runtime
 * (via siglongjmp) where a NullPointerException is raised — no explicit
 * compare-and-branch ever executes on the hot path.
 *
 * Because Linux forbids mapping the real page 0 (vm.mmap_min_addr), the
 * runtime allocates a protected page and hands out its address as the
 * *simulated null*: guardedRead(simNull() + offset) faults exactly like a
 * JVM's null-object access would.  Offsets beyond the page are refused up
 * front, mirroring the "BigOffset requires an explicit check" rule
 * (Figure 5).
 *
 * Thread-safety: any number of threads may call the guarded accessors of
 * one TrapRuntime concurrently.  Each thread arms its own thread-local
 * jump buffer, the handler runs on a per-thread alternate stack
 * (SA_ONSTACK, runtime/signal_stack.h), and only consults the faulting
 * thread's own state — so concurrent traps on different threads recover
 * independently.  Construction and destruction remain single-owner: keep
 * exactly one live TrapRuntime instance at a time.
 */

#include <atomic>
#include <cstdint>
#include <optional>

namespace trapjit
{

/** RAII owner of the protected page and the SIGSEGV handler. */
class TrapRuntime
{
  public:
    /** Maps the protected page and installs the handler. */
    TrapRuntime();

    /** Restores the previous handler and unmaps the page. */
    ~TrapRuntime();

    TrapRuntime(const TrapRuntime &) = delete;
    TrapRuntime &operator=(const TrapRuntime &) = delete;

    /** The simulated null reference (base of the protected page). */
    uintptr_t simNull() const { return pageBase_; }

    /** Size of the protected ("trap") area in bytes. */
    size_t trapAreaBytes() const { return pageSize_; }

    /**
     * Read a 32-bit value at @p addr with implicit null checking:
     * returns the value, or std::nullopt if the access hardware-trapped
     * (i.e. addr pointed into the protected page — a null dereference).
     * Safe to call from any number of threads concurrently.
     */
    std::optional<int32_t> guardedReadI32(uintptr_t addr);

    /** Write counterpart of guardedReadI32. */
    bool guardedWriteI32(uintptr_t addr, int32_t value);

    /**
     * True if @p addr (a possibly-"null" reference plus offset) lands in
     * the protected page, i.e. a trap is guaranteed.  Accesses for which
     * this is false must use an explicit check.
     */
    bool trapCoversAddress(uintptr_t addr) const;

    /** Number of traps taken since construction (statistics). */
    uint64_t
    trapsTaken() const
    {
        return trapsTaken_.load(std::memory_order_relaxed);
    }

  private:
    uintptr_t pageBase_ = 0;
    size_t pageSize_ = 0;
    std::atomic<uint64_t> trapsTaken_{0};
    bool handlerInstalled_ = false;
};

} // namespace trapjit

#endif // TRAPJIT_RUNTIME_TRAP_RUNTIME_H_
