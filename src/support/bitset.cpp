#include "support/bitset.h"

#include <sstream>

namespace trapjit
{

void
BitSet::resize(size_t size)
{
    numBits_ = size;
    words_.resize((size + kWordBits - 1) / kWordBits, 0);
    trimTail();
}

void
BitSet::setAll()
{
    for (auto &w : words_)
        w = ~Word(0);
    trimTail();
}

void
BitSet::clearAll()
{
    for (auto &w : words_)
        w = 0;
}

bool
BitSet::empty() const
{
    for (auto w : words_)
        if (w)
            return false;
    return true;
}

size_t
BitSet::count() const
{
    size_t n = 0;
    for (auto w : words_)
        n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
}

bool
BitSet::unionWith(const BitSet &other)
{
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        Word next = words_[i] | other.words_[i];
        changed |= (next != words_[i]);
        words_[i] = next;
    }
    return changed;
}

bool
BitSet::intersectWith(const BitSet &other)
{
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        Word next = words_[i] & other.words_[i];
        changed |= (next != words_[i]);
        words_[i] = next;
    }
    return changed;
}

bool
BitSet::subtract(const BitSet &other)
{
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        Word next = words_[i] & ~other.words_[i];
        changed |= (next != words_[i]);
        words_[i] = next;
    }
    return changed;
}

void
BitSet::assign(const BitSet &other)
{
    numBits_ = other.numBits_;
    words_ = other.words_;
}

bool
BitSet::assignAndReport(const BitSet &other)
{
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        changed |= (words_[i] != other.words_[i]);
        words_[i] = other.words_[i];
    }
    return changed;
}

void
BitSet::assignAndSubtract(const BitSet &a, const BitSet &b)
{
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] = a.words_[i] & ~b.words_[i];
}

bool
BitSet::unionWithAndReport(const BitSet &a, const BitSet &b)
{
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        Word next = a.words_[i] | b.words_[i];
        changed |= (next != words_[i]);
        words_[i] = next;
    }
    return changed;
}

bool
BitSet::meetInto(const BitSet &other, bool intersect)
{
    bool changed = false;
    if (intersect) {
        for (size_t i = 0; i < words_.size(); ++i) {
            Word next = words_[i] & other.words_[i];
            changed |= (next != words_[i]);
            words_[i] = next;
        }
    } else {
        for (size_t i = 0; i < words_.size(); ++i) {
            Word next = words_[i] | other.words_[i];
            changed |= (next != words_[i]);
            words_[i] = next;
        }
    }
    return changed;
}

bool
BitSet::assignTransferAndReport(const BitSet &meet, const BitSet &kill,
                                const BitSet &gen)
{
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
        Word next = (meet.words_[i] & ~kill.words_[i]) | gen.words_[i];
        changed |= (next != words_[i]);
        words_[i] = next;
    }
    return changed;
}

bool
BitSet::isSubsetOf(const BitSet &other) const
{
    for (size_t i = 0; i < words_.size(); ++i)
        if (words_[i] & ~other.words_[i])
            return false;
    return true;
}

bool
BitSet::intersects(const BitSet &other) const
{
    for (size_t i = 0; i < words_.size(); ++i)
        if (words_[i] & other.words_[i])
            return true;
    return false;
}

bool
BitSet::operator==(const BitSet &other) const
{
    return numBits_ == other.numBits_ && words_ == other.words_;
}

std::string
BitSet::toString() const
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    forEach([&](size_t idx) {
        if (!first)
            os << ", ";
        os << idx;
        first = false;
    });
    os << "}";
    return os.str();
}

void
BitSet::trimTail()
{
    size_t used = numBits_ % kWordBits;
    if (used != 0 && !words_.empty())
        words_.back() &= (Word(1) << used) - 1;
}

} // namespace trapjit
