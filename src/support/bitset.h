#ifndef TRAPJIT_SUPPORT_BITSET_H_
#define TRAPJIT_SUPPORT_BITSET_H_

/**
 * @file
 * Dense fixed-universe bit set used by every dataflow analysis.
 *
 * All null-check and bounds-check analyses in this library operate on a
 * small dense universe of facts (one bit per tracked variable or per
 * tracked check expression), so a flat word-array bit set with whole-set
 * algebra (union / intersection / subtraction) is the natural
 * representation.  The solver iterates these operations to a fixed point,
 * so they are kept allocation-free.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace trapjit
{

/**
 * A dense bit set over a fixed universe [0, size).
 *
 * Unlike std::vector<bool>, this type exposes the whole-set operations
 * (unionWith, intersectWith, subtract) that dataflow equations are written
 * in, reports whether an operation changed the set (the fixed-point
 * termination test), and can iterate set members cheaply.
 */
class BitSet
{
  public:
    BitSet() = default;

    /** Construct an empty set over a universe of @p size bits. */
    explicit BitSet(size_t size)
        : numBits_(size), words_((size + kWordBits - 1) / kWordBits, 0)
    {}

    /** Number of bits in the universe (not the population count). */
    size_t size() const { return numBits_; }

    /** Grow or shrink the universe; new bits start cleared. */
    void resize(size_t size);

    /** Set bit @p idx. */
    void
    set(size_t idx)
    {
        words_[idx / kWordBits] |= (Word(1) << (idx % kWordBits));
    }

    /** Clear bit @p idx. */
    void
    reset(size_t idx)
    {
        words_[idx / kWordBits] &= ~(Word(1) << (idx % kWordBits));
    }

    /** Test bit @p idx. */
    bool
    test(size_t idx) const
    {
        return (words_[idx / kWordBits] >> (idx % kWordBits)) & 1;
    }

    /** Set every bit in the universe. */
    void setAll();

    /** Clear every bit. */
    void clearAll();

    /** True if no bit is set. */
    bool empty() const;

    /** Number of set bits. */
    size_t count() const;

    /** this |= other.  @return true if this changed. */
    bool unionWith(const BitSet &other);

    /** this &= other.  @return true if this changed. */
    bool intersectWith(const BitSet &other);

    /** this -= other (clear bits set in other).  @return true if changed. */
    bool subtract(const BitSet &other);

    /** this = other, sizes must match (or this is empty). */
    void assign(const BitSet &other);

    /**
     * this = other, reporting whether this changed; sizes must match.
     * One word pass (compare and overwrite together), used by the solver
     * to detect entry-side movement without a separate operator!= scan.
     */
    bool assignAndReport(const BitSet &other);

    /**
     * this = a - b in a single fused word pass (no temporary for the
     * complement).  All three universes must have equal size.
     */
    void assignAndSubtract(const BitSet &a, const BitSet &b);

    /**
     * this = a | b, reporting whether this changed from its previous
     * contents.  All three universes must have equal size.
     */
    bool unionWithAndReport(const BitSet &a, const BitSet &b);

    /**
     * Word-level confluence: this &= other (@p intersect) or this |= other
     * (union) in one pass.  @return true if this changed.  The branch on
     * @p intersect is per call, not per word, so the solver's inner loop
     * stays straight word arithmetic.
     */
    bool meetInto(const BitSet &other, bool intersect);

    /**
     * The fused dataflow transfer kernel: this = (meet - kill) | gen in a
     * single word pass, reporting whether this changed.  This is the
     * entire inner-loop arithmetic of the worklist solver.
     */
    bool assignTransferAndReport(const BitSet &meet, const BitSet &kill,
                                 const BitSet &gen);

    /** True if every bit of this is also set in other. */
    bool isSubsetOf(const BitSet &other) const;

    /** True if this and other share at least one set bit. */
    bool intersects(const BitSet &other) const;

    bool operator==(const BitSet &other) const;
    bool operator!=(const BitSet &other) const { return !(*this == other); }

    /**
     * Invoke @p fn for every set bit, in increasing index order.
     * @p fn receives the bit index as size_t.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            Word word = words_[w];
            while (word) {
                size_t bit = static_cast<size_t>(__builtin_ctzll(word));
                fn(w * kWordBits + bit);
                word &= word - 1;
            }
        }
    }

    /** Debug rendering, e.g. "{1, 5, 9}". */
    std::string toString() const;

  private:
    using Word = uint64_t;
    static constexpr size_t kWordBits = 64;

    /** Clear any garbage bits above numBits_ in the last word. */
    void trimTail();

    size_t numBits_ = 0;
    std::vector<Word> words_;
};

} // namespace trapjit

#endif // TRAPJIT_SUPPORT_BITSET_H_
