#include "support/diagnostics.h"

#include <sstream>

namespace trapjit
{

namespace
{

std::string
decorate(const char *kind, const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << kind << " at " << file << ":" << line << ": " << msg;
    return os.str();
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    throw InternalError(decorate("panic", file, line, msg));
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw UsageError(decorate("fatal", file, line, msg));
}

} // namespace trapjit
