#ifndef TRAPJIT_SUPPORT_DIAGNOSTICS_H_
#define TRAPJIT_SUPPORT_DIAGNOSTICS_H_

/**
 * @file
 * Error reporting helpers shared across the library.
 *
 * Two failure classes, following the gem5 convention:
 *  - panic():  an internal invariant was violated (a trapjit bug).
 *  - fatal():  the caller handed us something unusable (a usage error).
 *
 * Both throw C++ exceptions rather than aborting so that unit tests can
 * assert on failure paths.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace trapjit
{

/** Thrown by panic(): an internal trapjit invariant was violated. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what)
        : std::logic_error(what)
    {}
};

/** Thrown by fatal(): the library was used incorrectly. */
class UsageError : public std::runtime_error
{
  public:
    explicit UsageError(const std::string &what)
        : std::runtime_error(what)
    {}
};

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

namespace detail
{

/** Build a message from a stream expression. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace trapjit

/** Report an internal bug (throws trapjit::InternalError). */
#define TRAPJIT_PANIC(...)                                                   \
    ::trapjit::panicImpl(__FILE__, __LINE__,                                 \
                         ::trapjit::detail::formatMessage(__VA_ARGS__))

/** Report a usage error (throws trapjit::UsageError). */
#define TRAPJIT_FATAL(...)                                                   \
    ::trapjit::fatalImpl(__FILE__, __LINE__,                                 \
                         ::trapjit::detail::formatMessage(__VA_ARGS__))

/** Cheap always-on invariant check; panics with the condition text. */
#define TRAPJIT_ASSERT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            TRAPJIT_PANIC("assertion failed: " #cond " ",                    \
                          ::trapjit::detail::formatMessage(__VA_ARGS__));    \
        }                                                                    \
    } while (0)

#endif // TRAPJIT_SUPPORT_DIAGNOSTICS_H_
