#include "support/hash.h"

#include <cstdio>

namespace trapjit
{

namespace
{

// FNV-1a 128-bit parameters (offset basis and prime), per the FNV spec.
constexpr uint64_t kOffsetHi = 0x6c62272e07bb0142ULL;
constexpr uint64_t kOffsetLo = 0x62b821756295c58dULL;
// prime = 2^88 + 2^8 + 0x3b; as 64-bit halves: hi = 2^24, lo = 0x13b.
constexpr uint64_t kPrimeHi = 1ULL << 24;
constexpr uint64_t kPrimeLo = 0x13bULL;

/** 128 x 128 -> low 128 bits multiply on two 64-bit halves. */
inline void
mul128(uint64_t &hi, uint64_t &lo)
{
    using u128 = unsigned __int128;
    u128 state = (static_cast<u128>(hi) << 64) | lo;
    u128 prime = (static_cast<u128>(kPrimeHi) << 64) | kPrimeLo;
    u128 product = state * prime;
    hi = static_cast<uint64_t>(product >> 64);
    lo = static_cast<uint64_t>(product);
}

} // namespace

Hasher::Hasher() : hi_(kOffsetHi), lo_(kOffsetLo) {}

Hasher &
Hasher::update(const void *data, size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i) {
        lo_ ^= bytes[i];
        mul128(hi_, lo_);
    }
    return *this;
}

Hasher &
Hasher::update(uint64_t value)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    return update(bytes, sizeof(bytes));
}

Hash128
hashBytes(std::string_view text)
{
    return Hasher().update(text).digest();
}

std::string
Hash128::toHex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

} // namespace trapjit
