#ifndef TRAPJIT_SUPPORT_HASH_H_
#define TRAPJIT_SUPPORT_HASH_H_

/**
 * @file
 * Stable 128-bit content hashing (FNV-1a) for the compile cache.
 *
 * The compile cache (jit/compile_cache.h) keys entries by a digest of
 * serialized IR plus configuration and target fingerprints.  The digest
 * must be stable across processes and runs — it is a content address,
 * not a bucket index — so std::hash (implementation-defined, often
 * randomized) is unusable.  FNV-1a with a 128-bit state keeps accidental
 * collisions out of reach of any realistic corpus while staying a few
 * lines of dependency-free code.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace trapjit
{

/** A 128-bit digest, comparable and usable as an unordered_map key. */
struct Hash128
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator==(const Hash128 &other) const = default;

    /** 32 hex digits, for logs and diagnostics. */
    std::string toHex() const;
};

/** Hash functor so Hash128 can key an unordered_map directly. */
struct Hash128Hasher
{
    size_t
    operator()(const Hash128 &h) const
    {
        // The digest is already uniformly mixed; fold the halves.
        return static_cast<size_t>(h.hi ^ h.lo);
    }
};

/**
 * Incremental FNV-1a/128 hasher.
 *
 * Feed it byte strings and integers; the digest depends on the exact
 * byte sequence fed, so callers composing multi-field keys must
 * delimit fields (update() of a length, or a separator byte) when the
 * fields themselves are variable-length.
 */
class Hasher
{
  public:
    Hasher();

    /** Absorb raw bytes. */
    Hasher &update(const void *data, size_t size);

    Hasher &
    update(std::string_view text)
    {
        return update(text.data(), text.size());
    }

    /** Absorb a little-endian 64-bit integer (fixed width: no delimiter
     *  needed). */
    Hasher &update(uint64_t value);

    /** Current digest (the hasher can keep absorbing afterwards). */
    Hash128 digest() const { return Hash128{hi_, lo_}; }

  private:
    uint64_t hi_;
    uint64_t lo_;
};

/** One-shot convenience. */
Hash128 hashBytes(std::string_view text);

} // namespace trapjit

#endif // TRAPJIT_SUPPORT_HASH_H_
