#include "support/job_queue.h"

#include "support/diagnostics.h"

namespace trapjit
{

WorkerPool::WorkerPool(size_t num_workers)
{
    TRAPJIT_ASSERT(num_workers > 0, "worker pool needs >= 1 worker");
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
        workers_.emplace_back([this] {
            std::function<void()> job;
            while (queue_.pop(job))
                job();
        });
    }
}

WorkerPool::~WorkerPool()
{
    queue_.close();
    for (std::thread &worker : workers_)
        worker.join();
}

void
WorkerPool::submit(std::function<void()> job)
{
    queue_.push(std::move(job));
}

} // namespace trapjit
