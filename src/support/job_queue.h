#ifndef TRAPJIT_SUPPORT_JOB_QUEUE_H_
#define TRAPJIT_SUPPORT_JOB_QUEUE_H_

/**
 * @file
 * A blocking multi-producer / multi-consumer job queue and the fixed
 * worker pool built on it.
 *
 * The compile service (jit/compile_service.h) submits one closure per
 * (function, config) job; a fixed set of worker threads drains the
 * queue.  The pool makes no ordering or affinity promises — anything
 * submitted through it must be order-independent, which the compile
 * service guarantees by compiling every function against an immutable
 * snapshot of its module.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trapjit
{

/** Unbounded blocking FIFO; pop() blocks until an item or close(). */
template <typename T>
class JobQueue
{
  public:
    /** Enqueue one item and wake one waiter. */
    void
    push(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
    }

    /**
     * Dequeue into @p out, blocking while the queue is open and empty.
     * @return false once the queue is closed and drained.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /** No more pushes; waiters drain the backlog, then pop() returns
     *  false. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

  private:
    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> items_;
    bool closed_ = false;
};

/**
 * Fixed-size pool of worker threads draining a JobQueue of closures.
 * Destruction closes the queue and joins after the backlog drains.
 */
class WorkerPool
{
  public:
    explicit WorkerPool(size_t num_workers);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue @p job; it runs on some worker, some time later. */
    void submit(std::function<void()> job);

    size_t numWorkers() const { return workers_.size(); }

  private:
    JobQueue<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
};

/**
 * Countdown latch: wait() blocks until countDown() has been called
 * @p count times.  Completion signal for one batch of pool jobs.
 */
class CompletionLatch
{
  public:
    explicit CompletionLatch(size_t count) : remaining_(count) {}

    void
    countDown()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (remaining_ > 0 && --remaining_ == 0)
            done_.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return remaining_ == 0; });
    }

  private:
    std::mutex mutex_;
    std::condition_variable done_;
    size_t remaining_;
};

} // namespace trapjit

#endif // TRAPJIT_SUPPORT_JOB_QUEUE_H_
