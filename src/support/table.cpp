#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/diagnostics.h"

namespace trapjit
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
TextTable::addRow(std::vector<std::string> cells)
{
    TRAPJIT_ASSERT(cells.size() == headers_.size(),
                   "row arity ", cells.size(), " != header arity ",
                   headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << std::setw(static_cast<int>(widths[c]))
               << (c == 0 ? std::left : std::right) << row[c]
               << std::right;
        }
        os << " |\n";
    };

    auto emitRule = [&]() {
        for (size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "|-" : "-|-");
            os << std::string(widths[c], '-');
        }
        os << "-|\n";
    };

    emitRow(headers_);
    emitRule();
    for (const auto &row : rows_)
        emitRow(row);
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::pct(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value << "%";
    return os.str();
}

} // namespace trapjit
