#ifndef TRAPJIT_SUPPORT_TABLE_H_
#define TRAPJIT_SUPPORT_TABLE_H_

/**
 * @file
 * Minimal aligned-column table printer used by the benchmark harnesses to
 * render the paper's tables (Table 1 .. Table 7) on stdout.
 */

#include <ostream>
#include <string>
#include <vector>

namespace trapjit
{

/**
 * A simple text table: a header row plus data rows, printed with columns
 * padded to the widest cell.  Cells are free-form strings; helpers format
 * numbers with a fixed precision.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render to @p os with aligned columns and a separator rule. */
    void print(std::ostream &os) const;

    /** Format a double with @p precision fractional digits. */
    static std::string num(double value, int precision = 2);

    /** Format a percentage, e.g. pct(12.3) == "12.3%". */
    static std::string pct(double value, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace trapjit

#endif // TRAPJIT_SUPPORT_TABLE_H_
