#include "testing/equivalence.h"

#include <bit>
#include <sstream>

#include "interp/fast_interpreter.h"
#include "interp/interpreter.h"
#include "ir/verifier.h"
#include "runtime/exceptions.h"
#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

/**
 * Render a digest mismatch down to the first differing heap word —
 * the difference an engine author can act on, instead of "digests
 * differ" with 32 MB of haystack.
 */
std::string
describeHeapDifference(const Heap &lhs, const Heap &rhs,
                       const char *lhs_name, const char *rhs_name)
{
    Heap::Difference diff = lhs.firstDifference(rhs);
    std::ostringstream os;
    os << "final heap digest differs";
    if (!diff.differs)
        return os.str(); // digest collision-free in practice; be safe
    if (diff.sizeOnly) {
        os << ": arenas diverge in extent at address 0x" << std::hex
           << diff.address << " (allocation count/order differs)";
        return os.str();
    }
    os << ": first differing word at address 0x" << std::hex
       << diff.address << " (" << lhs_name << " 0x" << diff.lhsWord
       << ", " << rhs_name << " 0x" << diff.rhsWord << ")";
    return os.str();
}

struct Observation
{
    bool hardFault = false;
    std::string fault;
    ExecResult result;
    std::vector<Event> events;
    uint64_t heapDigest = 0;
};

Observation
observe(Interpreter &interp, FunctionId entry)
{
    Observation obs;
    try {
        obs.result = interp.run(entry, {});
    } catch (const HardFault &fault) {
        obs.hardFault = true;
        obs.fault = fault.what();
        return obs;
    }
    obs.events = interp.trace().events();
    obs.heapDigest = interp.heap().digest();
    return obs;
}

} // namespace

EquivalenceReport
compareWithReference(
    const std::function<std::unique_ptr<Module>()> &build,
    const Compiler &compiler, const Target &runtime_target)
{
    return compareWithReference(
        build, [&compiler](Module &mod) { compiler.compile(mod); },
        runtime_target);
}

EquivalenceReport
compareWithReference(
    const std::function<std::unique_ptr<Module>()> &build,
    const std::function<void(Module &)> &compile,
    const Target &runtime_target)
{
    EquivalenceReport report;
    InterpOptions options;
    options.recordTrace = true;

    std::unique_ptr<Module> reference = build();
    FunctionId refEntry = reference->findFunction("main");
    TRAPJIT_ASSERT(refEntry != kNoFunction, "module has no main");
    Interpreter refInterp(*reference, runtime_target, options);
    Observation ref = observe(refInterp, refEntry);
    if (ref.hardFault) {
        report.message = "reference run hard-faulted: " + ref.fault;
        return report;
    }

    std::unique_ptr<Module> optimized = build();
    compile(*optimized);
    VerifyResult verify = verifyModule(*optimized);
    if (!verify.ok()) {
        report.message = "optimized module fails verification:\n" +
                         verify.message();
        return report;
    }
    FunctionId optEntry = optimized->findFunction("main");
    TRAPJIT_ASSERT(optEntry != kNoFunction, "module has no main");
    Interpreter optInterp(*optimized, runtime_target, options);
    Observation opt = observe(optInterp, optEntry);
    if (opt.hardFault) {
        report.message = "optimized run hard-faulted (miscompile): " +
                         opt.fault;
        return report;
    }

    std::ostringstream os;
    if (ref.result.outcome != opt.result.outcome) {
        os << "outcome differs: reference "
           << (ref.result.outcome == ExecResult::Outcome::Returned
                   ? "returned"
                   : "threw")
           << ", optimized "
           << (opt.result.outcome == ExecResult::Outcome::Returned
                   ? "returned"
                   : "threw");
        report.message = os.str();
        return report;
    }
    if (ref.result.exception != opt.result.exception) {
        os << "exception differs: reference "
           << excName(ref.result.exception) << ", optimized "
           << excName(opt.result.exception);
        report.message = os.str();
        return report;
    }
    if (ref.result.outcome == ExecResult::Outcome::Returned &&
        ref.result.value.i != opt.result.value.i) {
        os << "return value differs: reference " << ref.result.value.i
           << ", optimized " << opt.result.value.i;
        report.message = os.str();
        return report;
    }

    size_t n = std::min(ref.events.size(), opt.events.size());
    for (size_t i = 0; i < n; ++i) {
        if (!(ref.events[i] == opt.events[i])) {
            os << "event " << i << " differs: reference "
               << ref.events[i].toString() << ", optimized "
               << opt.events[i].toString();
            report.message = os.str();
            return report;
        }
    }
    if (ref.events.size() != opt.events.size()) {
        os << "event count differs: reference " << ref.events.size()
           << ", optimized " << opt.events.size();
        report.message = os.str();
        return report;
    }
    if (ref.heapDigest != opt.heapDigest) {
        report.message = describeHeapDifference(
            refInterp.heap(), optInterp.heap(), "reference", "optimized");
        return report;
    }

    report.equivalent = true;
    report.trapsTaken = opt.result.stats.trapsTaken;
    report.instructionsExecuted = opt.result.stats.instructions;
    return report;
}

EquivalenceReport
compareEngines(Module &mod, const Target &runtime_target,
               DecodeOptions decode_options)
{
    EquivalenceReport report;
    FunctionId entry = mod.findFunction("main");
    TRAPJIT_ASSERT(entry != kNoFunction, "module has no main");
    const Type returnType = mod.function(entry).returnType();

    InterpOptions options;
    options.recordTrace = true;

    Observation ref;
    Interpreter refInterp(mod, runtime_target, options);
    try {
        ref.result = refInterp.run(entry, {});
        ref.events = refInterp.trace().events();
        ref.heapDigest = refInterp.heap().digest();
    } catch (const HardFault &fault) {
        ref.hardFault = true;
        ref.fault = fault.what();
    }

    Observation fast;
    FastInterpreter fastInterp(mod, runtime_target, options, nullptr,
                               decode_options);
    try {
        fast.result = fastInterp.run(entry, {});
        fast.events = fastInterp.trace().events();
        fast.heapDigest = fastInterp.heap().digest();
    } catch (const HardFault &fault) {
        fast.hardFault = true;
        fast.fault = fault.what();
    }

    std::ostringstream os;
    if (ref.hardFault != fast.hardFault) {
        os << "HardFault parity differs: reference "
           << (ref.hardFault ? "faulted (" + ref.fault + ")"
                             : "completed")
           << ", fast "
           << (fast.hardFault ? "faulted (" + fast.fault + ")"
                              : "completed");
        report.message = os.str();
        return report;
    }
    if (ref.hardFault) {
        if (ref.fault != fast.fault) {
            os << "HardFault message differs: reference \"" << ref.fault
               << "\", fast \"" << fast.fault << "\"";
            report.message = os.str();
            return report;
        }
        // Both engines detected the same miscompilation; that IS the
        // agreed behavior (partial stats are not comparable past the
        // throw, so stop here).  hardFaulted lets a harness still
        // flag the case: clean pipelines never HardFault.
        report.equivalent = true;
        report.hardFaulted = true;
        return report;
    }

    if (ref.result.outcome != fast.result.outcome) {
        os << "outcome differs: reference "
           << (ref.result.outcome == ExecResult::Outcome::Returned
                   ? "returned"
                   : "threw")
           << ", fast "
           << (fast.result.outcome == ExecResult::Outcome::Returned
                   ? "returned"
                   : "threw");
        report.message = os.str();
        return report;
    }
    if (ref.result.exception != fast.result.exception) {
        os << "exception differs: reference "
           << excName(ref.result.exception) << ", fast "
           << excName(fast.result.exception);
        report.message = os.str();
        return report;
    }
    if (ref.result.outcome == ExecResult::Outcome::Returned) {
        const RuntimeValue &rv = ref.result.value;
        const RuntimeValue &fv = fast.result.value;
        bool same = true;
        switch (returnType) {
          case Type::F64:
            same = std::bit_cast<uint64_t>(rv.f) ==
                   std::bit_cast<uint64_t>(fv.f);
            break;
          case Type::Ref:
            same = rv.ref == fv.ref;
            break;
          case Type::Void:
            break;
          default:
            same = rv.i == fv.i;
            break;
        }
        if (!same) {
            os << "return value differs: reference (i=" << rv.i
               << ", f=" << rv.f << ", ref=" << rv.ref << "), fast (i="
               << fv.i << ", f=" << fv.f << ", ref=" << fv.ref << ")";
            report.message = os.str();
            return report;
        }
    }

    size_t n = std::min(ref.events.size(), fast.events.size());
    for (size_t i = 0; i < n; ++i) {
        if (!(ref.events[i] == fast.events[i])) {
            os << "event " << i << " differs: reference "
               << ref.events[i].toString() << ", fast "
               << fast.events[i].toString();
            report.message = os.str();
            return report;
        }
    }
    if (ref.events.size() != fast.events.size()) {
        os << "event count differs: reference " << ref.events.size()
           << ", fast " << fast.events.size();
        report.message = os.str();
        return report;
    }
    if (ref.heapDigest != fast.heapDigest) {
        report.message = describeHeapDifference(
            refInterp.heap(), fastInterp.heap(), "reference", "fast");
        return report;
    }

    // Bit-exact stats: the decoded engine must charge the same costs in
    // the same order, so even the cycle double is compared bitwise.
    const ExecStats &a = ref.result.stats;
    const ExecStats &b = fast.result.stats;
    auto counter = [&](const char *name, uint64_t x, uint64_t y) {
        if (x != y && report.message.empty()) {
            std::ostringstream cs;
            cs << "stats." << name << " differs: reference " << x
               << ", fast " << y;
            report.message = cs.str();
        }
    };
    counter("instructions", a.instructions, b.instructions);
    counter("explicitNullChecks", a.explicitNullChecks,
            b.explicitNullChecks);
    counter("implicitNullChecks", a.implicitNullChecks,
            b.implicitNullChecks);
    counter("boundChecks", a.boundChecks, b.boundChecks);
    counter("heapReads", a.heapReads, b.heapReads);
    counter("heapWrites", a.heapWrites, b.heapWrites);
    counter("calls", a.calls, b.calls);
    counter("allocations", a.allocations, b.allocations);
    counter("trapsTaken", a.trapsTaken, b.trapsTaken);
    counter("speculativeReadsOfNull", a.speculativeReadsOfNull,
            b.speculativeReadsOfNull);
    if (!report.message.empty())
        return report;
    if (std::bit_cast<uint64_t>(a.cycles) !=
        std::bit_cast<uint64_t>(b.cycles)) {
        os.precision(17);
        os << "cycles differ bitwise: reference " << a.cycles
           << ", fast " << b.cycles;
        report.message = os.str();
        return report;
    }

    report.equivalent = true;
    report.trapsTaken = ref.result.stats.trapsTaken;
    report.instructionsExecuted = ref.result.stats.instructions;
    return report;
}

EquivalenceReport
compareNativeEngine(Module &mod, const Target &runtime_target,
                    DecodeOptions decode_options,
                    NativeEngineOptions engine_options)
{
    EquivalenceReport report;
    FunctionId entry = mod.findFunction("main");
    TRAPJIT_ASSERT(entry != kNoFunction, "module has no main");
    const Type returnType = mod.function(entry).returnType();

    InterpOptions options;
    options.recordTrace = true;

    Observation fast;
    FastInterpreter fastInterp(mod, runtime_target, options, nullptr,
                               decode_options);
    try {
        fast.result = fastInterp.run(entry, {});
        fast.events = fastInterp.trace().events();
        fast.heapDigest = fastInterp.heap().digest();
    } catch (const HardFault &fault) {
        fast.hardFault = true;
        fast.fault = fault.what();
    }

    Observation native;
    NativeEngine engine(mod, runtime_target, options, nullptr,
                        decode_options, nullptr,
                        std::move(engine_options));
    try {
        native.result = engine.run(entry, {});
        native.events = engine.trace().events();
        native.heapDigest = engine.heap().digest();
    } catch (const HardFault &fault) {
        native.hardFault = true;
        native.fault = fault.what();
    }

    std::ostringstream os;
    if (fast.hardFault != native.hardFault) {
        os << "HardFault parity differs: fast "
           << (fast.hardFault ? "faulted (" + fast.fault + ")"
                              : "completed")
           << ", native "
           << (native.hardFault ? "faulted (" + native.fault + ")"
                                : "completed");
        report.message = os.str();
        return report;
    }
    if (fast.hardFault) {
        if (fast.fault != native.fault) {
            os << "HardFault message differs: fast \"" << fast.fault
               << "\", native \"" << native.fault << "\"";
            report.message = os.str();
            return report;
        }
        report.equivalent = true;
        report.hardFaulted = true;
        return report;
    }

    if (fast.result.outcome != native.result.outcome) {
        os << "outcome differs: fast "
           << (fast.result.outcome == ExecResult::Outcome::Returned
                   ? "returned"
                   : "threw")
           << ", native "
           << (native.result.outcome == ExecResult::Outcome::Returned
                   ? "returned"
                   : "threw");
        report.message = os.str();
        return report;
    }
    if (fast.result.exception != native.result.exception) {
        os << "exception differs: fast "
           << excName(fast.result.exception) << ", native "
           << excName(native.result.exception);
        report.message = os.str();
        return report;
    }
    if (fast.result.outcome == ExecResult::Outcome::Returned) {
        const RuntimeValue &fv = fast.result.value;
        const RuntimeValue &nv = native.result.value;
        bool same = true;
        switch (returnType) {
          case Type::F64:
            same = std::bit_cast<uint64_t>(fv.f) ==
                   std::bit_cast<uint64_t>(nv.f);
            break;
          case Type::Ref:
            same = fv.ref == nv.ref;
            break;
          case Type::Void:
            break;
          default:
            same = fv.i == nv.i;
            break;
        }
        if (!same) {
            os << "return value differs: fast (i=" << fv.i
               << ", f=" << fv.f << ", ref=" << fv.ref << "), native (i="
               << nv.i << ", f=" << nv.f << ", ref=" << nv.ref << ")";
            report.message = os.str();
            return report;
        }
    }

    size_t n = std::min(fast.events.size(), native.events.size());
    for (size_t i = 0; i < n; ++i) {
        if (!(fast.events[i] == native.events[i])) {
            os << "event " << i << " differs: fast "
               << fast.events[i].toString() << ", native "
               << native.events[i].toString();
            report.message = os.str();
            return report;
        }
    }
    if (fast.events.size() != native.events.size()) {
        os << "event count differs: fast " << fast.events.size()
           << ", native " << native.events.size();
        report.message = os.str();
        return report;
    }
    if (fast.heapDigest != native.heapDigest) {
        report.message = describeHeapDifference(
            fastInterp.heap(), engine.heap(), "fast", "native");
        return report;
    }

    // The counters both engines maintain must agree exactly; the purely
    // engine-side ones (dispatches, per-check counts, heap access
    // counts) and the simulated cycle double are native-exempt.
    const ExecStats &a = fast.result.stats;
    const ExecStats &b = native.result.stats;
    auto counter = [&](const char *name, uint64_t x, uint64_t y) {
        if (x != y && report.message.empty()) {
            std::ostringstream cs;
            cs << "stats." << name << " differs: fast " << x
               << ", native " << y;
            report.message = cs.str();
        }
    };
    counter("instructions", a.instructions, b.instructions);
    counter("calls", a.calls, b.calls);
    counter("allocations", a.allocations, b.allocations);
    counter("trapsTaken", a.trapsTaken, b.trapsTaken);
    counter("speculativeReadsOfNull", a.speculativeReadsOfNull,
            b.speculativeReadsOfNull);
    if (!report.message.empty())
        return report;

    report.equivalent = true;
    report.trapsTaken = fast.result.stats.trapsTaken;
    report.instructionsExecuted = fast.result.stats.instructions;
    return report;
}

EquivalenceReport
compareTieredEngine(Module &mod, const Target &runtime_target,
                    DecodeOptions decode_options,
                    TieredOptions tiered_options)
{
    EquivalenceReport report;
    FunctionId entry = mod.findFunction("main");
    TRAPJIT_ASSERT(entry != kNoFunction, "module has no main");
    const Type returnType = mod.function(entry).returnType();

    InterpOptions options;
    options.recordTrace = true;

    Observation fast;
    FastInterpreter fastInterp(mod, runtime_target, options, nullptr,
                               decode_options);
    try {
        fast.result = fastInterp.run(entry, {});
        fast.events = fastInterp.trace().events();
        fast.heapDigest = fastInterp.heap().digest();
    } catch (const HardFault &fault) {
        fast.hardFault = true;
        fast.fault = fault.what();
    }

    Observation tiered;
    TieredEngine engine(mod, runtime_target, options, nullptr,
                        decode_options, tiered_options);
    try {
        tiered.result = engine.run(entry, {});
        tiered.events = engine.trace().events();
        tiered.heapDigest = engine.heap().digest();
    } catch (const HardFault &fault) {
        tiered.hardFault = true;
        tiered.fault = fault.what();
    }

    std::ostringstream os;
    if (fast.hardFault != tiered.hardFault) {
        os << "HardFault parity differs: fast "
           << (fast.hardFault ? "faulted (" + fast.fault + ")"
                              : "completed")
           << ", tiered "
           << (tiered.hardFault ? "faulted (" + tiered.fault + ")"
                                : "completed");
        report.message = os.str();
        return report;
    }
    if (fast.hardFault) {
        if (fast.fault != tiered.fault) {
            os << "HardFault message differs: fast \"" << fast.fault
               << "\", tiered \"" << tiered.fault << "\"";
            report.message = os.str();
            return report;
        }
        report.equivalent = true;
        report.hardFaulted = true;
        return report;
    }

    if (fast.result.outcome != tiered.result.outcome) {
        os << "outcome differs: fast "
           << (fast.result.outcome == ExecResult::Outcome::Returned
                   ? "returned"
                   : "threw")
           << ", tiered "
           << (tiered.result.outcome == ExecResult::Outcome::Returned
                   ? "returned"
                   : "threw");
        report.message = os.str();
        return report;
    }
    if (fast.result.exception != tiered.result.exception) {
        os << "exception differs: fast "
           << excName(fast.result.exception) << ", tiered "
           << excName(tiered.result.exception);
        report.message = os.str();
        return report;
    }
    if (fast.result.outcome == ExecResult::Outcome::Returned) {
        const RuntimeValue &fv = fast.result.value;
        const RuntimeValue &tv = tiered.result.value;
        bool same = true;
        switch (returnType) {
          case Type::F64:
            same = std::bit_cast<uint64_t>(fv.f) ==
                   std::bit_cast<uint64_t>(tv.f);
            break;
          case Type::Ref:
            same = fv.ref == tv.ref;
            break;
          case Type::Void:
            break;
          default:
            same = fv.i == tv.i;
            break;
        }
        if (!same) {
            os << "return value differs: fast (i=" << fv.i
               << ", f=" << fv.f << ", ref=" << fv.ref
               << "), tiered (i=" << tv.i << ", f=" << tv.f
               << ", ref=" << tv.ref << ")";
            report.message = os.str();
            return report;
        }
    }

    size_t n = std::min(fast.events.size(), tiered.events.size());
    for (size_t i = 0; i < n; ++i) {
        if (!(fast.events[i] == tiered.events[i])) {
            os << "event " << i << " differs: fast "
               << fast.events[i].toString() << ", tiered "
               << tiered.events[i].toString();
            report.message = os.str();
            return report;
        }
    }
    if (fast.events.size() != tiered.events.size()) {
        os << "event count differs: fast " << fast.events.size()
           << ", tiered " << tiered.events.size();
        report.message = os.str();
        return report;
    }
    if (fast.heapDigest != tiered.heapDigest) {
        report.message = describeHeapDifference(
            fastInterp.heap(), engine.heap(), "fast", "tiered");
        return report;
    }

    // Same exemptions as the classic native tier: engine-side dynamic
    // counters and the simulated cycle model are out of scope for
    // frames that ran as machine code.
    const ExecStats &a = fast.result.stats;
    const ExecStats &b = tiered.result.stats;
    auto counter = [&](const char *name, uint64_t x, uint64_t y) {
        if (x != y && report.message.empty()) {
            std::ostringstream cs;
            cs << "stats." << name << " differs: fast " << x
               << ", tiered " << y;
            report.message = cs.str();
        }
    };
    counter("instructions", a.instructions, b.instructions);
    counter("calls", a.calls, b.calls);
    counter("allocations", a.allocations, b.allocations);
    counter("trapsTaken", a.trapsTaken, b.trapsTaken);
    counter("speculativeReadsOfNull", a.speculativeReadsOfNull,
            b.speculativeReadsOfNull);
    if (!report.message.empty())
        return report;

    report.equivalent = true;
    report.trapsTaken = fast.result.stats.trapsTaken;
    report.instructionsExecuted = fast.result.stats.instructions;
    return report;
}

} // namespace trapjit
