#include "testing/equivalence.h"

#include <sstream>

#include "interp/interpreter.h"
#include "ir/verifier.h"
#include "runtime/exceptions.h"
#include "support/diagnostics.h"

namespace trapjit
{

namespace
{

struct Observation
{
    bool hardFault = false;
    std::string fault;
    ExecResult result;
    std::vector<Event> events;
    uint64_t heapDigest = 0;
};

Observation
observe(Module &mod, const Target &runtime_target)
{
    Observation obs;
    FunctionId entry = mod.findFunction("main");
    TRAPJIT_ASSERT(entry != kNoFunction, "module has no main");
    InterpOptions options;
    options.recordTrace = true;
    Interpreter interp(mod, runtime_target, options);
    try {
        obs.result = interp.run(entry, {});
    } catch (const HardFault &fault) {
        obs.hardFault = true;
        obs.fault = fault.what();
        return obs;
    }
    obs.events = interp.trace().events();
    obs.heapDigest = interp.heap().digest();
    return obs;
}

} // namespace

EquivalenceReport
compareWithReference(
    const std::function<std::unique_ptr<Module>()> &build,
    const Compiler &compiler, const Target &runtime_target)
{
    return compareWithReference(
        build, [&compiler](Module &mod) { compiler.compile(mod); },
        runtime_target);
}

EquivalenceReport
compareWithReference(
    const std::function<std::unique_ptr<Module>()> &build,
    const std::function<void(Module &)> &compile,
    const Target &runtime_target)
{
    EquivalenceReport report;

    std::unique_ptr<Module> reference = build();
    Observation ref = observe(*reference, runtime_target);
    if (ref.hardFault) {
        report.message = "reference run hard-faulted: " + ref.fault;
        return report;
    }

    std::unique_ptr<Module> optimized = build();
    compile(*optimized);
    VerifyResult verify = verifyModule(*optimized);
    if (!verify.ok()) {
        report.message = "optimized module fails verification:\n" +
                         verify.message();
        return report;
    }
    Observation opt = observe(*optimized, runtime_target);
    if (opt.hardFault) {
        report.message = "optimized run hard-faulted (miscompile): " +
                         opt.fault;
        return report;
    }

    std::ostringstream os;
    if (ref.result.outcome != opt.result.outcome) {
        os << "outcome differs: reference "
           << (ref.result.outcome == ExecResult::Outcome::Returned
                   ? "returned"
                   : "threw")
           << ", optimized "
           << (opt.result.outcome == ExecResult::Outcome::Returned
                   ? "returned"
                   : "threw");
        report.message = os.str();
        return report;
    }
    if (ref.result.exception != opt.result.exception) {
        os << "exception differs: reference "
           << excName(ref.result.exception) << ", optimized "
           << excName(opt.result.exception);
        report.message = os.str();
        return report;
    }
    if (ref.result.outcome == ExecResult::Outcome::Returned &&
        ref.result.value.i != opt.result.value.i) {
        os << "return value differs: reference " << ref.result.value.i
           << ", optimized " << opt.result.value.i;
        report.message = os.str();
        return report;
    }

    size_t n = std::min(ref.events.size(), opt.events.size());
    for (size_t i = 0; i < n; ++i) {
        if (!(ref.events[i] == opt.events[i])) {
            os << "event " << i << " differs: reference "
               << ref.events[i].toString() << ", optimized "
               << opt.events[i].toString();
            report.message = os.str();
            return report;
        }
    }
    if (ref.events.size() != opt.events.size()) {
        os << "event count differs: reference " << ref.events.size()
           << ", optimized " << opt.events.size();
        report.message = os.str();
        return report;
    }
    if (ref.heapDigest != opt.heapDigest) {
        os << "final heap digest differs";
        report.message = os.str();
        return report;
    }

    report.equivalent = true;
    return report;
}

} // namespace trapjit
