#ifndef TRAPJIT_TESTING_EQUIVALENCE_H_
#define TRAPJIT_TESTING_EQUIVALENCE_H_

/**
 * @file
 * Observable-equivalence oracle.
 *
 * Runs a module twice — once exactly as built (the *reference*: every
 * check explicit, nothing optimized) and once compiled under a pipeline
 * configuration — and compares everything Java semantics makes
 * observable: outcome (return vs exception), the exception class, the
 * returned value, the ordered heap-write/allocation event trace, and a
 * final heap digest.  Reads are free to differ (speculation).  A
 * HardFault in the optimized run (wild access, missing check) is
 * reported as a miscompilation.
 */

#include <functional>
#include <memory>
#include <string>

#include "arch/target.h"
#include "codegen/native/native_engine.h"
#include "codegen/native/tiered_engine.h"
#include "interp/decoded_program.h"
#include "ir/module.h"
#include "jit/compiler.h"

namespace trapjit
{

/** Result of an equivalence comparison. */
struct EquivalenceReport
{
    bool equivalent = false;
    std::string message; ///< first difference / fault, for diagnostics

    /**
     * Both runs hard-faulted with the identical message.  The engines
     * agree, so `equivalent` is true — but a clean pipeline never
     * HardFaults, so a fuzz harness must treat this as a finding in its
     * own right, not bury it as a pass.
     */
    bool hardFaulted = false;

    // Workload telemetry from the comparison runs (equal across engines
    // whenever equivalent && !hardFaulted): lets a harness aggregate
    // traps/sec and instructions/sec without re-running anything.
    uint64_t trapsTaken = 0;
    uint64_t instructionsExecuted = 0;
};

/**
 * Compare the reference execution of a freshly built module against the
 * execution of a copy compiled by @p compiler, both run on
 * @p runtime_target.
 *
 * @param build  builds a fresh identical module on each call (the
 *               generator with a fixed seed, or a workload builder)
 */
EquivalenceReport compareWithReference(
    const std::function<std::unique_ptr<Module>()> &build,
    const Compiler &compiler, const Target &runtime_target);

/**
 * Same oracle with an arbitrary compilation step: @p compile receives
 * the freshly built module and optimizes it in place.  Lets the
 * config-matrix suite drive the parallel CompileService (or any other
 * entry point) through the identical observable-equivalence check.
 */
EquivalenceReport compareWithReference(
    const std::function<std::unique_ptr<Module>()> &build,
    const std::function<void(Module &)> &compile,
    const Target &runtime_target);

/**
 * Cross-engine differential oracle: run @p mod's `main` once under the
 * reference switch interpreter and once under the pre-decoded fast
 * engine (interp/fast_interpreter.h) and compare *everything*, bit for
 * bit — HardFault parity (including the fault message), outcome,
 * exception kind, the typed return value, the full ordered EventTrace,
 * the final heap digest, the accumulated cycle double, and every
 * semantic ExecStats counter.  This is strictly stronger than the
 * Java-observability check above: the fast engine is required to be an
 * exact reimplementation, not merely an equivalent one.
 *
 * @param decode_options  decode knobs for the fast engine (run once
 *                        with fusion on and once off to cover both
 *                        dispatch shapes)
 */
EquivalenceReport compareEngines(Module &mod, const Target &runtime_target,
                                 DecodeOptions decode_options = {});

/**
 * Native-tier differential oracle: run @p mod's `main` once under the
 * fast interpreter and once under the native x86-64 engine
 * (codegen/native/native_engine.h) and compare HardFault parity
 * (including the message), outcome, exception kind, the typed return
 * value (F64 bitwise), the full ordered EventTrace, the final heap
 * digest, and the semantic counters the native tier maintains
 * (instructions, calls, allocations, trapsTaken,
 * speculativeReadsOfNull).  The cycle cost model and the engine-side
 * dynamic counters are excluded: the native tier runs on real time.
 *
 * @param engine_options  e.g. a nativeFilter forcing some functions
 *                        onto the interpreter fallback, to exercise
 *                        mixed native/interpreted call stacks
 */
EquivalenceReport compareNativeEngine(
    Module &mod, const Target &runtime_target,
    DecodeOptions decode_options = {},
    NativeEngineOptions engine_options = {});

/**
 * Tiered-tier differential oracle: same comparison set as
 * compareNativeEngine, but the second engine is the profile-guided
 * TieredEngine (codegen/native/tiered_engine.h).  The default options
 * force synchronous promotion at a threshold of 2 so functions tier up
 * *mid-case* and the run crosses interpreter -> native -> interpreter
 * frames in both directions; pass different TieredOptions to cover
 * other policies (background workers, linking off, high threshold).
 */
EquivalenceReport compareTieredEngine(Module &mod,
                                      const Target &runtime_target,
                                      DecodeOptions decode_options = {},
                                      TieredOptions tiered_options = {
                                          .threshold = 2,
                                          .synchronous = true,
                                      });

} // namespace trapjit

#endif // TRAPJIT_TESTING_EQUIVALENCE_H_
