#include "testing/fuzz/fuzz_farm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "codegen/native/native_compiler.h"
#include "ir/serializer.h"
#include "jit/compile_service.h"
#include "jit/compiler.h"
#include "jit/persistent_cache.h"
#include "testing/equivalence.h"
#include "testing/random_program.h"

namespace trapjit
{

const std::vector<FuzzArm> &
fuzzArms()
{
    // The same 11 legal (target, pipeline) pairs the config-matrix
    // suite sweeps; the labels are the stable repro-tuple vocabulary.
    static const std::vector<FuzzArm> arms = {
        {"ia32_noopt_notrap", "ia32", makeIA32WindowsTarget,
         makeNoOptNoTrapConfig},
        {"ia32_noopt_trap", "ia32", makeIA32WindowsTarget,
         makeNoOptTrapConfig},
        {"ia32_old", "ia32", makeIA32WindowsTarget,
         makeOldNullCheckConfig},
        {"ia32_phase1", "ia32", makeIA32WindowsTarget,
         makeNewPhase1OnlyConfig},
        {"ia32_full", "ia32", makeIA32WindowsTarget, makeNewFullConfig},
        {"ia32_altvm", "ia32", makeIA32WindowsTarget, makeAltVMConfig},
        {"aix_noopt", "aix", makePPCAIXTarget, makeAIXNoOptConfig},
        {"aix_nospec", "aix", makePPCAIXTarget,
         makeAIXNoSpeculationConfig},
        {"aix_spec", "aix", makePPCAIXTarget, makeAIXSpeculationConfig},
        {"sparc_full", "sparc", makeSPARCTarget, makeNewFullConfig},
        {"s390_full", "s390", makeS390Target, makeNewFullConfig},
    };
    return arms;
}

int
findFuzzArm(std::string_view label)
{
    const std::vector<FuzzArm> &arms = fuzzArms();
    for (size_t i = 0; i < arms.size(); ++i)
        if (label == arms[i].label)
            return static_cast<int>(i);
    return -1;
}

std::string
fuzzArmLabels()
{
    std::string labels;
    for (const FuzzArm &arm : fuzzArms()) {
        if (!labels.empty())
            labels += ",";
        labels += arm.label;
    }
    return labels;
}

std::string
FuzzDivergence::reproLine() const
{
    std::ostringstream os;
    os << "--repro seed=" << seed << ",profile=" << profile
       << ",arm=" << arm << "  [" << oracle << "]";
    return os.str();
}

bool
fuzzNativeTierUsable()
{
    // ASan's shadow memory is incompatible with recovering from the
    // guard-page SIGSEGV the implicit checks rely on.
#if defined(__SANITIZE_ADDRESS__)
    return false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    return false;
#endif
#endif
    return nativeTierSupported();
}

NullCheckMutation
mutationFromName(std::string_view name)
{
    static const std::pair<const char *, NullCheckMutation> table[] = {
        {"P1DropRedefKillBwd", NullCheckMutation::P1DropRedefKillBwd},
        {"P1DropBarrierKillBwd",
         NullCheckMutation::P1DropBarrierKillBwd},
        {"P1DropTryBoundaryKills",
         NullCheckMutation::P1DropTryBoundaryKills},
        {"P1SkipEliminatedPrune",
         NullCheckMutation::P1SkipEliminatedPrune},
        {"P2DropBarrierMaterialize",
         NullCheckMutation::P2DropBarrierMaterialize},
        {"P2DropTryEdgeKills", NullCheckMutation::P2DropTryEdgeKills},
        {"P2SkipOwnConsume", NullCheckMutation::P2SkipOwnConsume},
        {"P2SkipExceptionSiteMark",
         NullCheckMutation::P2SkipExceptionSiteMark},
        {"P2MarkWithoutTrapCover",
         NullCheckMutation::P2MarkWithoutTrapCover},
        {"P2SubstIgnoresConsume",
         NullCheckMutation::P2SubstIgnoresConsume},
    };
    for (const auto &[n, m] : table)
        if (name == n)
            return m;
    return NullCheckMutation::None;
}

std::string
mutationNames()
{
    return "P1DropRedefKillBwd,P1DropBarrierKillBwd,"
           "P1DropTryBoundaryKills,P1SkipEliminatedPrune,"
           "P2DropBarrierMaterialize,P2DropTryEdgeKills,"
           "P2SkipOwnConsume,P2SkipExceptionSiteMark,"
           "P2MarkWithoutTrapCover,P2SubstIgnoresConsume";
}

namespace
{

std::unique_ptr<Module>
buildCaseModule(std::string_view profile, uint64_t seed)
{
    if (profile == kRandomProgramProfile) {
        GeneratorOptions opts;
        opts.seed = seed;
        return generateRandomModule(opts);
    }
    const WorkloadProfile *preset = findWorkloadProfile(profile);
    WorkloadProfile p = preset ? *preset : WorkloadProfile{};
    p.seed = seed;
    return generateWorkloadModule(p);
}

/** What one (seed, profile, arm) case contributed. */
struct CaseDelta
{
    uint64_t functionsCompiled = 0;
    uint64_t traps = 0;
    uint64_t instructions = 0;
    uint64_t auditErrors = 0;
    bool nativeRan = false;
    bool optimizedRan = false;
    bool tieredRan = false;
    bool persistentRan = false;
    std::vector<FuzzDivergence> divergences;
};

void
record(CaseDelta &delta, uint64_t seed, const std::string &profile,
       const FuzzArm &arm, const char *oracle, std::string message)
{
    FuzzDivergence d;
    d.seed = seed;
    d.profile = profile;
    d.arm = arm.label;
    d.oracle = oracle;
    d.message = std::move(message);
    delta.divergences.push_back(std::move(d));
}

void
recordAuditErrors(CaseDelta &delta, uint64_t seed,
                  const std::string &profile, const FuzzArm &arm,
                  const AuditReport &audit)
{
    size_t errors = audit.errorCount();
    if (errors == 0)
        return;
    delta.auditErrors += errors;
    std::ostringstream os;
    os << errors << " audit error(s); first: ";
    for (const AuditFinding &f : audit.findings) {
        if (f.severity == AuditSeverity::Error) {
            os << f.format();
            break;
        }
    }
    record(delta, seed, profile, arm, "audit", os.str());
}

/**
 * The persistent-cache soundness oracle: replay the case through a
 * throwaway single-worker service whose *only* source of compiled IR
 * besides the pipeline is @p persistent (its in-memory cache starts
 * empty).  Every key of this case was persisted by the cold compile —
 * all of the farm's services share the handle — so a clean cache must
 * serve the whole module: any pipeline compile, and any byte of IR
 * that differs from the cold result, is a divergence.
 */
void
runPersistentOracle(CaseDelta &delta, uint64_t seed,
                    const std::string &profile, const FuzzArm &arm,
                    const Module &coldMod, const Target &target,
                    const PipelineConfig &config,
                    const std::shared_ptr<PersistentCache> &persistent)
{
    std::unique_ptr<Module> warmMod = buildCaseModule(profile, seed);
    CompileServiceOptions so;
    so.numWorkers = 1;
    so.predecode = false;
    so.precompileNative = false;
    so.persistent = persistent;
    CompileService warm(target, so);
    ServiceReport rep = warm.compileModule(*warmMod, config);
    delta.persistentRan = true;
    if (rep.counters.functionsCompiled != 0) {
        std::ostringstream os;
        os << "warm replay ran the pipeline on "
           << rep.counters.functionsCompiled << " of "
           << rep.counters.functionsRequested
           << " functions (expected pure persistent hits)";
        record(delta, seed, profile, arm, "persistent-cache", os.str());
        return;
    }
    for (FunctionId f = 0; f < coldMod.numFunctions(); ++f) {
        std::string coldText =
            serializeFunctionToString(coldMod.function(f));
        std::string warmText =
            serializeFunctionToString(warmMod->function(f));
        if (coldText != warmText) {
            std::ostringstream os;
            os << "function " << f
               << ": IR served from the persistent cache differs "
                  "from the cold compile";
            record(delta, seed, profile, arm, "persistent-cache",
                   os.str());
            return;
        }
    }
}

CaseDelta
runOneCase(uint64_t seed, const std::string &profile, const FuzzArm &arm,
           const FuzzOptions &opts, CompileService *service,
           const std::shared_ptr<PersistentCache> &persistent)
{
    CaseDelta delta;
    std::unique_ptr<Module> mod = buildCaseModule(profile, seed);
    Target target = arm.makeTarget();
    PipelineConfig config = arm.makeConfig();
    // Collect findings instead of dying: a finding is this harness's
    // whole point, and Collect also survives the ctest TRAPJIT_AUDIT
    // environment (which only force-promotes AuditMode::Off).
    config.audit = AuditMode::Collect;

    if (service != nullptr) {
        ServiceReport rep = service->compileModule(*mod, config);
        delta.functionsCompiled = rep.counters.functionsCompiled;
        if (rep.counters.auditFindings > 0) {
            // The service only propagates a count, warnings included;
            // recompile sequentially for the error/warning split and
            // the detailed finding text.
            std::unique_ptr<Module> fresh = buildCaseModule(profile, seed);
            Compiler compiler(target, config);
            CompileReport crep = compiler.compile(*fresh);
            recordAuditErrors(delta, seed, profile, arm, crep.audit);
        }
    } else {
        std::optional<ScopedNullCheckMutation> armMutation;
        if (opts.mutation != NullCheckMutation::None)
            armMutation.emplace(opts.mutation);
        Compiler compiler(target, config);
        CompileReport rep = compiler.compile(*mod);
        delta.functionsCompiled = rep.functionsCompiled;
        recordAuditErrors(delta, seed, profile, arm, rep.audit);
    }

    if (service != nullptr && persistent != nullptr)
        runPersistentOracle(delta, seed, profile, arm, *mod, target,
                            config, persistent);

    EquivalenceReport engines = compareEngines(*mod, target);
    if (!engines.equivalent) {
        record(delta, seed, profile, arm, "ref-vs-fast",
               engines.message);
    } else if (engines.hardFaulted) {
        // Both interpreters agreed to die.  Agreement is not innocence:
        // a clean pipeline never HardFaults.
        record(delta, seed, profile, arm, "hardfault",
               "both interpreters hard-faulted identically");
    }
    delta.traps += engines.trapsTaken;
    delta.instructions += engines.instructionsExecuted;

    if (opts.useNativeEngine && fuzzNativeTierUsable()) {
        EquivalenceReport native = compareNativeEngine(*mod, target);
        if (!native.equivalent) {
            record(delta, seed, profile, arm, "fast-vs-native",
                   native.message);
        }
        delta.nativeRan = true;
        delta.traps += native.trapsTaken;
        delta.instructions += native.instructionsExecuted;
    }

    if (opts.useOptimizedEngine && fuzzNativeTierUsable()) {
        // The optimized backend: linear-scan register allocation plus
        // speculated loads whose guard-page traps deopt into the fast
        // interpreter — the oracle covers regalloc homes, batched
        // budget refunds and mid-run replay all at once.
        NativeEngineOptions eopts;
        eopts.backend = NativeBackend::Optimized;
        EquivalenceReport optimized =
            compareNativeEngine(*mod, target, {}, eopts);
        if (!optimized.equivalent) {
            record(delta, seed, profile, arm, "fast-vs-optimized",
                   optimized.message);
        }
        delta.optimizedRan = true;
        delta.traps += optimized.trapsTaken;
        delta.instructions += optimized.instructionsExecuted;
    }

    if (opts.useTieredEngine && fuzzNativeTierUsable()) {
        // Threshold 2 (the compareTieredEngine default): functions
        // cross the hotness threshold mid-case, so blocks publish,
        // call slots patch and frames switch tiers while this very
        // worker — and its siblings — take guard-page traps.
        EquivalenceReport tiered = compareTieredEngine(*mod, target);
        if (!tiered.equivalent) {
            record(delta, seed, profile, arm, "fast-vs-tiered",
                   tiered.message);
        }
        delta.tieredRan = true;
        delta.traps += tiered.trapsTaken;
        delta.instructions += tiered.instructionsExecuted;
    }
    return delta;
}

} // namespace

FuzzResult
runFuzzFarm(const FuzzOptions &options)
{
    using Clock = std::chrono::steady_clock;

    FuzzOptions opts = options;
    if (opts.profiles.empty()) {
        for (const WorkloadProfile &p : workloadProfiles())
            opts.profiles.push_back(p.name);
        opts.profiles.push_back(kRandomProgramProfile);
    }
    if (opts.arms.empty()) {
        for (size_t i = 0; i < fuzzArms().size(); ++i)
            opts.arms.push_back(static_cast<int>(i));
    }
    // The mutation hook is thread-local: the compile must stay on the
    // thread that armed it, which the service's worker pool breaks.
    if (opts.mutation != NullCheckMutation::None)
        opts.useService = false;

    const int threads = std::max(1, opts.threads);
    const uint64_t numCases =
        static_cast<uint64_t>(std::max(0, opts.cases));
    const uint64_t numArms = opts.arms.size();
    const uint64_t totalItems = numCases * numArms;

    FuzzResult result;
    std::mutex mu; // guards result
    std::atomic<uint64_t> nextItem{0};
    std::atomic<bool> stopRequested{false};
    const Clock::time_point start = Clock::now();

    // One compile cache shared by every worker's services: keys cover
    // the (function, config, target) content, so cross-target sharing
    // is safe and identical helper functions compile exactly once
    // across the whole sweep — the serving-throughput configuration.
    std::shared_ptr<CompileCache> sharedCache;
    if (opts.useService)
        sharedCache = std::make_shared<CompileCache>();

    // Persistent-cache oracle mode: one on-disk cache handle shared by
    // every service (cold compiles persist through it, warm replays
    // read through it).  Sharing the handle is what makes the oracle's
    // invariant hold: any key the in-memory cache can serve was also
    // persisted.
    std::shared_ptr<PersistentCache> sharedPersistent;
    if (opts.useService && !opts.cacheDir.empty()) {
        sharedPersistent = PersistentCache::open(opts.cacheDir);
        if (!sharedPersistent && opts.log)
            opts.log("fuzz: could not open cache dir '" +
                     opts.cacheDir + "'; persistent oracle disabled");
    }

    auto elapsed = [&start] {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    auto worker = [&]() {
        // Services are per (worker, target): single-threaded pools so
        // the farm's own threads stay the unit of parallelism.
        std::map<std::string, std::unique_ptr<CompileService>> services;
        while (!stopRequested.load(std::memory_order_relaxed)) {
            const uint64_t item =
                nextItem.fetch_add(1, std::memory_order_relaxed);
            if (item >= totalItems)
                break;
            if (opts.timeBudgetSeconds > 0.0 &&
                elapsed() > opts.timeBudgetSeconds)
                break;

            const uint64_t caseIdx = item / numArms;
            const FuzzArm &arm =
                fuzzArms()[static_cast<size_t>(
                    opts.arms[item % numArms])];
            const uint64_t seed = opts.firstSeed + caseIdx;
            const std::string &profile =
                opts.profiles[caseIdx % opts.profiles.size()];

            CompileService *service = nullptr;
            if (opts.useService) {
                std::unique_ptr<CompileService> &slot =
                    services[arm.targetName];
                if (!slot) {
                    CompileServiceOptions so;
                    so.numWorkers = 1;
                    so.predecode = false;
                    so.precompileNative = false;
                    so.cache = sharedCache;
                    so.enablePersistent = sharedPersistent != nullptr;
                    so.persistent = sharedPersistent;
                    slot = std::make_unique<CompileService>(
                        arm.makeTarget(), so);
                }
                service = slot.get();
            }

            CaseDelta delta = runOneCase(seed, profile, arm, opts,
                                         service, sharedPersistent);

            std::lock_guard<std::mutex> lock(mu);
            result.stats.casesRun += 1;
            result.stats.modulesBuilt += 1;
            result.stats.functionsCompiled += delta.functionsCompiled;
            result.stats.trapsTaken += delta.traps;
            result.stats.instructionsExecuted += delta.instructions;
            result.stats.auditFindings += delta.auditErrors;
            if (delta.nativeRan)
                result.stats.nativeComparisons += 1;
            if (delta.optimizedRan)
                result.stats.optimizedComparisons += 1;
            if (delta.tieredRan)
                result.stats.tieredComparisons += 1;
            if (delta.persistentRan)
                result.stats.persistentComparisons += 1;
            for (FuzzDivergence &d : delta.divergences) {
                if (opts.log)
                    opts.log("DIVERGENCE " + d.reproLine() + " " +
                             d.message);
                result.divergences.push_back(std::move(d));
            }
            if (opts.maxDivergences > 0 &&
                result.divergences.size() >=
                    static_cast<size_t>(opts.maxDivergences))
                stopRequested.store(true, std::memory_order_relaxed);
            if (opts.log && result.stats.casesRun % 500 == 0) {
                std::ostringstream os;
                os << "fuzz: " << result.stats.casesRun << "/"
                   << totalItems << " cases, "
                   << result.stats.trapsTaken << " traps, "
                   << result.divergences.size() << " divergences";
                opts.log(os.str());
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    result.stats.elapsedSeconds = elapsed();
    return result;
}

FuzzResult
rerunFuzzCase(uint64_t seed, std::string_view profile,
              std::string_view arm_label, const FuzzOptions &options)
{
    FuzzOptions opts = options;
    opts.cases = 1;
    opts.firstSeed = seed;
    opts.threads = 1;
    opts.useService = false;
    opts.profiles = {std::string(profile)};
    int arm = findFuzzArm(arm_label);
    opts.arms = {arm < 0 ? 0 : arm};
    return runFuzzFarm(opts);
}

} // namespace trapjit
