#ifndef TRAPJIT_TESTING_FUZZ_FUZZ_FARM_H_
#define TRAPJIT_TESTING_FUZZ_FUZZ_FARM_H_

/**
 * @file
 * Multi-threaded differential fuzz farm.
 *
 * A farm run sweeps a case matrix of (seed x profile x arm), where an
 * arm is one legal (target, pipeline) pair from the same 11-arm table
 * the config-matrix suite covers.  Each case builds a fresh workload
 * module (testing/workload_gen/), compiles it under the arm with the
 * soundness auditor collecting, and then runs the differential oracles:
 * reference vs fast interpreter (bit-exact, cycles included) and — on
 * hosts with the native tier — fast vs native x86-64, fast vs the
 * optimized backend (linear-scan regalloc + speculated loads, so real
 * deopt side-exits replay mid-case) and fast vs the profile-guided
 * tiered engine (threshold 2, so functions promote in the middle of
 * the case and publish/patch runs under live traps).
 * Any audit finding, any engine disagreement, and any agreed-upon
 * HardFault is a divergence, reported with the exact (seed, profile,
 * arm) tuple that regenerates it on any machine (the generator is
 * platform-portable by construction, see workload_gen/rng.h).
 *
 * Worker threads claim cases from a shared counter, so many mutators
 * trap concurrently: every worker owns heaps whose guard pages fault at
 * the same time, exercising the thread-safety of the SIGSEGV recovery
 * path the same way a multi-threaded JVM would.
 *
 * The farm doubles as the auditor's own regression harness: arming a
 * NullCheckMutation injects a deliberate optimizer bug into every
 * compile, and a clean sweep over a mutated compiler is itself a
 * failure (tools/trapjit-fuzz --mutate).
 */

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "arch/target.h"
#include "jit/pipeline.h"
#include "opt/nullcheck/mutation_hooks.h"
#include "testing/workload_gen/workload_gen.h"

namespace trapjit
{

/** One (target, pipeline) pair of the differential matrix. */
struct FuzzArm
{
    /** Stable short label, the `arm=` key of a repro tuple. */
    const char *label;
    const char *targetName;
    Target (*makeTarget)();
    PipelineConfig (*makeConfig)();
};

/** The full legal arm table (same 11 arms as the config-matrix test). */
const std::vector<FuzzArm> &fuzzArms();

/** Arm index by label; -1 when unknown. */
int findFuzzArm(std::string_view label);

/** Comma-separated arm labels, for --help texts. */
std::string fuzzArmLabels();

/**
 * Name of the pseudo-profile that draws cases from the legacy
 * random_program generator instead of the workload generator, so the
 * farm also sweeps the corpus every recorded suite seed comes from.
 */
inline constexpr const char *kRandomProgramProfile = "random";

/** One divergence: everything needed to reproduce it anywhere. */
struct FuzzDivergence
{
    uint64_t seed = 0;
    std::string profile;
    std::string arm;
    /** Which oracle disagreed: "audit", "ref-vs-fast", "fast-vs-native",
     *  "fast-vs-optimized", "fast-vs-tiered", "persistent-cache" (a
     *  warm replay from the on-disk cache compiled something or
     *  produced different IR), or "hardfault" (both engines died
     *  identically — still a bug). */
    std::string oracle;
    std::string message;

    /** The exact rerun tuple, in --repro syntax. */
    std::string reproLine() const;
};

/** Aggregate throughput/coverage counters of one farm run. */
struct FuzzStats
{
    uint64_t casesRun = 0;      ///< (seed, profile, arm) cases executed
    uint64_t modulesBuilt = 0;
    uint64_t functionsCompiled = 0;
    uint64_t trapsTaken = 0;    ///< hardware-trap NPEs across all runs
    uint64_t instructionsExecuted = 0;
    uint64_t nativeComparisons = 0;
    uint64_t optimizedComparisons = 0;
    uint64_t tieredComparisons = 0;
    uint64_t persistentComparisons = 0;
    uint64_t auditFindings = 0;
    double elapsedSeconds = 0.0;

    double perSecond(uint64_t n) const
    {
        return elapsedSeconds > 0.0 ? static_cast<double>(n) /
                                          elapsedSeconds
                                    : 0.0;
    }
    double casesPerSecond() const { return perSecond(casesRun); }
    double trapsPerSecond() const { return perSecond(trapsTaken); }
    double compilesPerSecond() const
    {
        return perSecond(functionsCompiled);
    }
};

/** Farm configuration. */
struct FuzzOptions
{
    /**
     * Number of (seed, profile) cases; each is crossed with every
     * selected arm.  Case i uses profile profiles[i % |profiles|] with
     * seed firstSeed + i.
     */
    int cases = 500;
    uint64_t firstSeed = 1;

    /**
     * Profile names to draw from (presets plus kRandomProgramProfile);
     * empty means every preset plus "random".
     */
    std::vector<std::string> profiles;

    /** Arm indices into fuzzArms() to sweep; empty means all 11. */
    std::vector<int> arms;

    /** Concurrent mutator threads. */
    int threads = 4;

    /**
     * Also run the fast-vs-native oracle.  Automatically skipped (per
     * run, not per case) on hosts without the native tier or under
     * AddressSanitizer, whose shadow memory is incompatible with
     * guard-page SIGSEGV recovery.
     */
    bool useNativeEngine = true;

    /**
     * Also run the fast-vs-optimized oracle: the regalloc+speculation
     * backend (NativeBackend::Optimized) against the fast interpreter,
     * so speculated loads that actually trap deopt and replay mid-case.
     * Skipped on the same hosts as the native oracle.
     */
    bool useOptimizedEngine = true;

    /**
     * Also run the fast-vs-tiered oracle with a promotion threshold of
     * 2, so hot functions tier up *mid-case* — publish, direct-link
     * patching and interp<->native frame crossings all happen while
     * the worker's heap is taking real guard-page traps.  Skipped on
     * the same hosts as the native oracle.
     */
    bool useTieredEngine = true;

    /**
     * Compile through a per-worker CompileService sharing one compile
     * cache across all workers (cross-seed dedup of identical helper
     * functions — the serving-throughput configuration) instead of a
     * sequential Compiler.  Forced off in mutation mode: the mutation
     * hook is thread-local and must stay on the arming thread.
     */
    bool useService = true;

    /**
     * Persistent-cache soundness oracle: when non-empty, every compile
     * goes through a PersistentCache opened on this directory, and
     * every case is replayed *warm* through a throwaway service with a
     * fresh in-memory cache — the replay must perform zero pipeline
     * compiles and reproduce bit-identical IR, else the case diverges
     * (oracle "persistent-cache").  Requires useService; inert in
     * mutation mode (which forces the sequential compiler).
     */
    std::string cacheDir;

    /** Deliberate optimizer bug to inject into every compile. */
    NullCheckMutation mutation = NullCheckMutation::None;

    /** Stop claiming new cases after this many seconds (0 = no limit). */
    double timeBudgetSeconds = 0.0;

    /** Stop after this many divergences (0 = collect them all). */
    int maxDivergences = 20;

    /** Progress sink (nullptr = silent). */
    std::function<void(const std::string &)> log;
};

/** Everything a farm run produced. */
struct FuzzResult
{
    FuzzStats stats;
    std::vector<FuzzDivergence> divergences;

    /** True when the sweep completed with zero divergences. */
    bool clean() const { return divergences.empty(); }
};

/** Run the farm.  Blocks until the case matrix (or budget) is spent. */
FuzzResult runFuzzFarm(const FuzzOptions &options);

/**
 * Rerun one exact case sequentially with full diagnostics — the
 * consumer of a FuzzDivergence::reproLine().  @p arm_label must name an
 * arm; unknown profiles fall back to "mixed".
 */
FuzzResult rerunFuzzCase(uint64_t seed, std::string_view profile,
                         std::string_view arm_label,
                         const FuzzOptions &options = {});

/** Mutation name <-> enum mapping, for --mutate. */
NullCheckMutation mutationFromName(std::string_view name);
std::string mutationNames();

/** True when this build+host can run the native x86-64 tier. */
bool fuzzNativeTierUsable();

} // namespace trapjit

#endif // TRAPJIT_TESTING_FUZZ_FUZZ_FARM_H_
