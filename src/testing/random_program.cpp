#include "testing/random_program.h"

#include <vector>

#include "ir/builder.h"
#include "ir/layout.h"
#include "testing/workload_gen/rng.h"
#include "workloads/kernel_util.h"

namespace trapjit
{

namespace
{

// The portable generator this file has always used; the seeding and
// output sequence are pinned by test_workload_gen's seed-to-hash
// regression, because every recorded seed in every differential suite
// depends on them.
using Rng = SplitMix64;

/** Shared layout of the generated world. */
struct World
{
    ClassId objCls = kUnknownClass;
    ClassId subCls = kUnknownClass;
    int64_t offIval = 0;
    int64_t offFval = 0;
    int64_t offNext = 0;
    int64_t offBig = 0; ///< beyond the protected page (Figure 5)
    int64_t objSize = 0;
    uint32_t slotMono = 0; ///< devirtualizable accessor (Figure 1)
    uint32_t slotPoly = 0; ///< genuinely polymorphic method
    std::vector<FunctionId> funcs; ///< generated callees, acyclic order
};

/** Generates one function body. */
class FuncGen
{
  public:
    FuncGen(Module &mod, Function &fn, World &world, Rng &rng,
            const GeneratorOptions &opts, size_t func_index)
        : mod_(mod), fn_(fn), world_(world), rng_(rng), opts_(opts),
          funcIndex_(func_index), b_(fn)
    {}

    void
    generate()
    {
        // Parameters: (Obj o, i32[] arr, int x).
        ValueId o = fn_.addParam(Type::Ref, "o", world_.objCls);
        arr_ = fn_.addParam(Type::Ref, "arr");
        ValueId x = fn_.addParam(Type::I32, "x");

        b_.startBlock();
        // A small pool of locals, pre-initialized.
        for (int i = 0; i < 3; ++i) {
            ValueId v = fn_.addLocal(Type::I32);
            ValueId c = b_.constInt(static_cast<int64_t>(rng_.range(40)));
            b_.move(v, c);
            intLocals_.push_back(v);
        }
        intLocals_.push_back(x);
        for (int i = 0; i < 2; ++i) {
            ValueId v = fn_.addLocal(Type::F64);
            ValueId c = b_.constFloat(rng_.range(16) * 0.25);
            b_.move(v, c);
            floatLocals_.push_back(v);
        }
        refLocals_.push_back(o);
        {
            ValueId fresh = fn_.addLocal(Type::Ref, "", world_.objCls);
            ValueId obj = b_.newObject(world_.objCls, world_.objSize);
            b_.move(fresh, obj);
            refLocals_.push_back(fresh);
        }
        {
            ValueId nil = fn_.addLocal(Type::Ref, "", world_.objCls);
            ValueId c = b_.constNull(world_.objCls);
            b_.move(nil, c);
            refLocals_.push_back(nil);
        }

        genStatements(opts_.statementsPerFunction, 0);

        ValueId r = b_.binop(Opcode::IXor, intLocals_[0], intLocals_[1]);
        ValueId r2 = b_.binop(Opcode::IAdd, r, intLocals_[2]);
        b_.ret(r2);
    }

  private:
    ValueId pickInt() { return intLocals_[rng_.range(intLocals_.size())]; }
    ValueId pickRef() { return refLocals_[rng_.range(refLocals_.size())]; }
    ValueId
    pickFloat()
    {
        return floatLocals_[rng_.range(floatLocals_.size())];
    }

    /** An int expression from locals and constants. */
    ValueId
    intExpr()
    {
        ValueId a = pickInt();
        if (rng_.chance(30))
            return a;
        ValueId c = rng_.chance(50)
                        ? b_.constInt(static_cast<int64_t>(rng_.range(32)))
                        : pickInt();
        static const Opcode ops[] = {Opcode::IAdd, Opcode::ISub,
                                     Opcode::IMul, Opcode::IAnd,
                                     Opcode::IOr, Opcode::IXor};
        return b_.binop(ops[rng_.range(6)], a, c);
    }

    void
    genStatements(int count, int depth)
    {
        for (int i = 0; i < count; ++i)
            genStatement(depth);
    }

    void
    genStatement(int depth)
    {
        const bool canNest = depth < opts_.maxDepth;
        switch (rng_.range(canNest ? 14 : 9)) {
          case 0: { // int arithmetic
            ValueId v = intLocals_[rng_.range(3)];
            ValueId e = intExpr();
            b_.move(v, e);
            break;
          }
          case 1: { // field read
            ValueId r = pickRef();
            if (rng_.chance(10)) {
                ValueId t = b_.getField(r, world_.offBig, Type::I32);
                b_.move(intLocals_[rng_.range(3)], t);
            } else if (rng_.chance(70)) {
                ValueId t = b_.getField(r, world_.offIval, Type::I32);
                b_.move(intLocals_[rng_.range(3)], t);
            } else {
                ValueId t = b_.getField(r, world_.offFval, Type::F64);
                b_.move(floatLocals_[rng_.range(2)], t);
            }
            break;
          }
          case 2: { // field write
            ValueId r = pickRef();
            if (rng_.chance(15)) {
                b_.putField(r, world_.offBig, intExpr());
            } else if (rng_.chance(70)) {
                b_.putField(r, world_.offIval, intExpr());
            } else {
                ValueId f = b_.binop(Opcode::FAdd, pickFloat(),
                                     pickFloat());
                b_.putField(r, world_.offFval, f);
            }
            break;
          }
          case 3: { // ref assignment
            ValueId dst = refLocals_[rng_.range(refLocals_.size())];
            switch (rng_.range(4)) {
              case 0:
                b_.move(dst, pickRef());
                break;
              case 1: {
                ClassId cls = rng_.chance(50) ? world_.objCls
                                              : world_.subCls;
                ValueId obj = b_.newObject(cls, world_.objSize);
                b_.move(dst, obj);
                break;
              }
              case 2: {
                ValueId c = b_.constNull(world_.objCls);
                b_.move(dst, c);
                break;
              }
              default: {
                ValueId src = pickRef();
                ValueId nxt = b_.getField(src, world_.offNext,
                                          Type::Ref);
                b_.move(dst, nxt);
                break;
              }
            }
            break;
          }
          case 4: { // array read (index may be out of range -> AIOOBE)
            ValueId idxRaw = intExpr();
            ValueId mask = b_.constInt(15);
            ValueId idx = b_.binop(Opcode::IAnd, idxRaw, mask);
            ValueId t = b_.arrayLoad(arr_, idx, Type::I32);
            b_.move(intLocals_[rng_.range(3)], t);
            break;
          }
          case 5: { // array write
            ValueId idxRaw = intExpr();
            ValueId mask = b_.constInt(15);
            ValueId idx = b_.binop(Opcode::IAnd, idxRaw, mask);
            b_.arrayStore(arr_, idx, intExpr(), Type::I32);
            break;
          }
          case 6: { // division (ArithmeticException source)
            ValueId v = intLocals_[rng_.range(3)];
            ValueId d = b_.binop(rng_.chance(50) ? Opcode::IDiv
                                                 : Opcode::IRem,
                                 intExpr(), pickInt());
            b_.move(v, d);
            break;
          }
          case 7: { // float arithmetic
            ValueId v = floatLocals_[rng_.range(2)];
            static const Opcode ops[] = {Opcode::FAdd, Opcode::FSub,
                                         Opcode::FMul};
            ValueId e = b_.binop(ops[rng_.range(3)], pickFloat(),
                                 pickFloat());
            b_.move(v, e);
            break;
          }
          case 8: { // virtual call through a possibly-null receiver
            if (opts_.useVirtualCalls) {
                uint32_t slot = rng_.chance(50) ? world_.slotMono
                                                : world_.slotPoly;
                ValueId got =
                    b_.callVirtual(slot, {pickRef()}, Type::I32);
                b_.move(intLocals_[rng_.range(3)], got);
                break;
            }
            [[fallthrough]];
          }
          case 13: { // call a later generated function (acyclic)
            if (funcIndex_ + 1 < world_.funcs.size()) {
                size_t callee = funcIndex_ + 1 +
                                rng_.range(static_cast<uint32_t>(
                                    world_.funcs.size() - funcIndex_ -
                                    1));
                ValueId got = b_.callStatic(
                    world_.funcs[callee], {pickRef(), arr_, intExpr()},
                    Type::I32);
                b_.move(intLocals_[rng_.range(3)], got);
            } else {
                ValueId v = intLocals_[rng_.range(3)];
                b_.move(v, intExpr());
            }
            break;
          }
          case 9: { // if/else on an int comparison
            ValueId cond = b_.cmp(Opcode::ICmp,
                                  rng_.chance(50) ? CmpPred::LT
                                                  : CmpPred::EQ,
                                  pickInt(), intExpr());
            TryRegionId region = b_.currentBlock().tryRegion();
            BasicBlock &thenB = fn_.newBlock(region);
            BasicBlock &elseB = fn_.newBlock(region);
            BasicBlock &join = fn_.newBlock(region);
            b_.branch(cond, thenB, elseB);
            b_.atEnd(thenB);
            genStatements(1 + rng_.range(2), depth + 1);
            b_.jump(join);
            b_.atEnd(elseB);
            genStatements(1 + rng_.range(2), depth + 1);
            b_.jump(join);
            b_.atEnd(join);
            break;
          }
          case 10: { // ifnull branch
            ValueId r = pickRef();
            TryRegionId region = b_.currentBlock().tryRegion();
            BasicBlock &nullB = fn_.newBlock(region);
            BasicBlock &okB = fn_.newBlock(region);
            BasicBlock &join = fn_.newBlock(region);
            b_.ifNull(r, nullB, okB);
            b_.atEnd(nullB);
            genStatements(1, depth + 1);
            b_.jump(join);
            b_.atEnd(okB);
            // On the non-null edge a dereference is safe: exercise the
            // Edge(m, n) fact of Section 4.1.2.
            ValueId t = b_.getField(r, world_.offIval, Type::I32);
            b_.move(intLocals_[rng_.range(3)], t);
            genStatements(1, depth + 1);
            b_.jump(join);
            b_.atEnd(join);
            break;
          }
          case 11: { // counted do-while loop
            ValueId counter = fn_.addLocal(Type::I32);
            ValueId start = b_.constInt(0);
            ValueId limit =
                b_.constInt(static_cast<int64_t>(2 + rng_.range(4)));
            CountedLoop loop(b_, counter, start, limit);
            genStatements(1 + rng_.range(3), depth + 1);
            loop.close();
            break;
          }
          default: { // try/catch, possibly nested in the current region
            if (!opts_.useTryRegions) {
                genStatement(depth); // pick something else
                break;
            }
            static const ExcKind kinds[] = {
                ExcKind::NullPointer, ExcKind::ArrayIndexOutOfBounds,
                ExcKind::Arithmetic, ExcKind::CatchAll};
            ExcKind caught = kinds[rng_.range(4)];
            TryRegionId enclosing = b_.currentBlock().tryRegion();
            // Handler and join live in the enclosing region: an
            // exception thrown inside the handler propagates outward.
            BasicBlock &handler = fn_.newBlock(enclosing);
            TryRegionId region =
                fn_.addTryRegion(handler.id(), caught, enclosing);
            BasicBlock &body = fn_.newBlock(region);
            BasicBlock &join = fn_.newBlock(enclosing);
            b_.jump(body);
            b_.atEnd(body);
            genStatements(1 + rng_.range(3), depth + 1);
            b_.jump(join);
            b_.atEnd(handler);
            ValueId mark =
                b_.constInt(static_cast<int64_t>(1000 + rng_.range(9)));
            b_.move(intLocals_[rng_.range(3)], mark);
            b_.jump(join);
            b_.atEnd(join);
            break;
          }
        }
    }

    Module &mod_;
    Function &fn_;
    World &world_;
    Rng &rng_;
    const GeneratorOptions &opts_;
    size_t funcIndex_;
    IRBuilder b_;
    ValueId arr_ = kNoValue;
    std::vector<ValueId> intLocals_;
    std::vector<ValueId> refLocals_;
    std::vector<ValueId> floatLocals_;
};

} // namespace

std::unique_ptr<Module>
generateRandomModule(const GeneratorOptions &opts)
{
    auto mod = std::make_unique<Module>();
    Rng rng(opts.seed);

    World world;
    world.objCls = mod->addClass("Obj");
    world.offIval = mod->addField(world.objCls, "ival", Type::I32);
    world.offFval = mod->addField(world.objCls, "fval", Type::F64);
    world.offNext = mod->addField(world.objCls, "next", Type::Ref);
    // Beyond the 4 KiB protected page: the Figure 5 "BigOffset" field.
    world.offBig =
        mod->addFieldAt(world.objCls, "big", Type::I32, 8192);
    world.objSize = mod->cls(world.objCls).instanceSize;

    // Virtual methods.  `describe` is monomorphic with an early-out
    // branch before any slot access — after devirtualization + inlining
    // this is exactly the Figure 1 shape.  `combine` is polymorphic and
    // stays a true dispatch (a header read that traps on null).
    {
        Function &describe =
            mod->addFunction("Obj.describe", Type::I32, true);
        ValueId self = describe.addParam(Type::Ref, "this", world.objCls);
        IRBuilder b(describe);
        BasicBlock &entry = b.startBlock();
        BasicBlock &neg = describe.newBlock();
        BasicBlock &pos = describe.newBlock();
        b.atEnd(entry);
        ValueId v = b.getField(self, world.offIval, Type::I32);
        ValueId zero = b.constInt(0);
        ValueId isNeg = b.cmp(Opcode::ICmp, CmpPred::LT, v, zero);
        b.branch(isNeg, neg, pos);
        b.atEnd(neg);
        ValueId minusOne = b.constInt(-1);
        b.ret(minusOne);
        b.atEnd(pos);
        ValueId three = b.constInt(3);
        ValueId scaled = b.binop(Opcode::IMul, v, three);
        b.ret(scaled);
        world.slotMono = mod->addVirtualMethod(world.objCls,
                                               describe.id());
    }
    {
        Function &combineA =
            mod->addFunction("Obj.combine", Type::I32, true);
        ValueId self = combineA.addParam(Type::Ref, "this", world.objCls);
        IRBuilder b(combineA);
        b.startBlock();
        ValueId v = b.getField(self, world.offIval, Type::I32);
        ValueId one = b.constInt(1);
        ValueId r = b.binop(Opcode::IAdd, v, one);
        b.ret(r);
        world.slotPoly = mod->addVirtualMethod(world.objCls,
                                               combineA.id());
    }
    world.subCls = mod->addClass("SubObj", world.objCls);
    {
        Function &combineB =
            mod->addFunction("SubObj.combine", Type::I32, true);
        ValueId self = combineB.addParam(Type::Ref, "this", world.subCls);
        IRBuilder b(combineB);
        b.startBlock();
        ValueId v = b.getField(self, world.offIval, Type::I32);
        ValueId five = b.constInt(5);
        ValueId r = b.binop(Opcode::IXor, v, five);
        b.ret(r);
        mod->overrideMethod(world.subCls, world.slotPoly, combineB.id());
    }

    // Reserve ids for the callees so calls can reference later ones.
    std::vector<Function *> callees;
    for (int i = 0; i < opts.numFunctions; ++i) {
        Function &fn = mod->addFunction("gen" + std::to_string(i),
                                        Type::I32);
        world.funcs.push_back(fn.id());
        callees.push_back(&fn);
    }
    for (int i = 0; i < opts.numFunctions; ++i) {
        FuncGen gen(*mod, *callees[i], world, rng, opts,
                    static_cast<size_t>(i));
        gen.generate();
    }

    // main: build an object chain and an array, call gen0 a few times.
    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();

    ValueId o1 = fn.addLocal(Type::Ref, "o1", world.objCls);
    ValueId o2 = fn.addLocal(Type::Ref, "o2", world.objCls);
    {
        ValueId a = b.newObject(world.objCls, world.objSize);
        b.move(o1, a);
        ValueId c = b.newObject(world.subCls, world.objSize);
        b.move(o2, c);
        b.putField(o1, world.offNext, o2);
        ValueId seven = b.constInt(7);
        b.putField(o2, world.offIval, seven);
        // o2.next stays null.
    }
    ValueId len = b.constInt(10);
    ValueId arr = fn.addLocal(Type::Ref, "arr");
    {
        ValueId a = b.newArray(len, Type::I32);
        b.move(arr, a);
        ValueId i = fn.addLocal(Type::I32);
        ValueId zero = b.constInt(0);
        CountedLoop fill(b, i, zero, len);
        ValueId v = b.binop(Opcode::IMul, i, b.constInt(3));
        b.arrayStore(arr, i, v, Type::I32);
        fill.close();
    }

    ValueId nullObj = fn.addLocal(Type::Ref, "nil", world.objCls);
    {
        ValueId c = b.constNull(world.objCls);
        b.move(nullObj, c);
    }

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(0));
    const int calls = 3;
    for (int c = 0; c < calls; ++c) {
        ValueId refArg = o1;
        if (opts.allowNullArguments && rng.chance(25))
            refArg = nullObj;
        else if (rng.chance(40))
            refArg = o2;
        ValueId arrArg = arr;
        if (opts.allowNullArguments && rng.chance(10))
            arrArg = nullObj;
        ValueId x = b.constInt(static_cast<int64_t>(rng.range(64)));

        if (opts.useTryRegions && rng.chance(60)) {
            BasicBlock &handler = fn.newBlock(0);
            TryRegionId region =
                fn.addTryRegion(handler.id(), ExcKind::CatchAll);
            BasicBlock &body = fn.newBlock(region);
            BasicBlock &join = fn.newBlock(0);
            b.jump(body);
            b.atEnd(body);
            ValueId got = b.callStatic(world.funcs[0],
                                       {refArg, arrArg, x}, Type::I32);
            ValueId merged = b.binop(Opcode::IXor, chk, got);
            b.move(chk, merged);
            b.jump(join);
            b.atEnd(handler);
            ValueId mark = b.constInt(0x5ca1ab1e);
            ValueId merged2 = b.binop(Opcode::IAdd, chk, mark);
            b.move(chk, merged2);
            b.jump(join);
            b.atEnd(join);
        } else {
            ValueId got = b.callStatic(world.funcs[0],
                                       {refArg, arrArg, x}, Type::I32);
            ValueId merged = b.binop(Opcode::IXor, chk, got);
            b.move(chk, merged);
        }
    }
    b.ret(chk);
    return mod;
}

} // namespace trapjit
