#ifndef TRAPJIT_TESTING_RANDOM_PROGRAM_H_
#define TRAPJIT_TESTING_RANDOM_PROGRAM_H_

/**
 * @file
 * Seeded random structured-program generator for property testing.
 *
 * Generated modules exercise everything the optimizer reasons about:
 * possibly-null references (parameters, `next` chains, explicit nulls),
 * field reads/writes including a "big offset" field beyond the protected
 * page, array accesses with in- and out-of-range indices, division (a
 * non-NPE exception source), bounded loops, branches including ifnull,
 * try/catch regions, and calls between generated functions.
 *
 * Programs terminate by construction (loops are counted with dedicated
 * counters; the call graph is acyclic), so reference and optimized runs
 * can be compared event-for-event (see equivalence.h).
 */

#include <cstdint>
#include <memory>

#include "ir/module.h"

namespace trapjit
{

/** Generator parameters. */
struct GeneratorOptions
{
    uint64_t seed = 1;

    /** Statements per generated function body. */
    int statementsPerFunction = 12;

    /** Maximum statement nesting (if/loop/try). */
    int maxDepth = 3;

    /** Number of generated callee functions besides main. */
    int numFunctions = 2;

    /** Generate try/catch regions. */
    bool useTryRegions = true;

    /** Pass null for some reference arguments. */
    bool allowNullArguments = true;

    /**
     * Generate virtual calls through possibly-null receivers.  The
     * class table provides one monomorphic slot (devirtualizable and
     * inlinable: the Figure 1 shape appears after the inliner runs) and
     * one polymorphic slot (stays a true virtual dispatch).
     */
    bool useVirtualCalls = true;
};

/**
 * Build a random module with an i32 `main`.  The same options always
 * produce the same module.
 */
std::unique_ptr<Module> generateRandomModule(const GeneratorOptions &opts);

} // namespace trapjit

#endif // TRAPJIT_TESTING_RANDOM_PROGRAM_H_
