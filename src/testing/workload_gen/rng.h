#ifndef TRAPJIT_TESTING_WORKLOAD_GEN_RNG_H_
#define TRAPJIT_TESTING_WORKLOAD_GEN_RNG_H_

/**
 * @file
 * Deterministic, platform-portable random number generators for the
 * test-program generators.
 *
 * Repro tuples (seed, profile, arm) printed by the fuzz farm must
 * reproduce the identical program on any host, compiler and standard
 * library, so nothing here may depend on implementation-defined
 * behavior: no std::uniform_int_distribution (its algorithm is
 * unspecified and differs between libstdc++/libc++/MSVC), no
 * std::mt19937 seeding helpers, only fixed integer arithmetic.
 *
 * SplitMix64 is the generator random_program.cpp has always used (the
 * exact seeding and output sequence is pinned by a regression test:
 * changing either silently invalidates every recorded seed in every
 * differential suite).  Xoshiro256** is the larger-state generator the
 * workload generator uses, seeded through SplitMix64 as its authors
 * recommend.
 */

#include <cstdint>

namespace trapjit
{

/** splitmix64: deterministic, seedable, 64 bits of state. */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed)
        : state_(seed * 2685821657736338717ull + 1)
    {}

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, n).  Modulo reduction: biased but portable. */
    uint32_t range(uint32_t n) { return static_cast<uint32_t>(next() % n); }

    /** True with probability pct/100. */
    bool chance(uint32_t pct) { return range(100) < pct; }

  private:
    uint64_t state_;
};

/**
 * xoshiro256**: 256 bits of state, the recommended all-purpose
 * generator of Blackman & Vigna.  Seeded via SplitMix64 so that nearby
 * integer seeds still land in unrelated parts of the state space.
 */
class Xoshiro256
{
  public:
    explicit Xoshiro256(uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (uint64_t &word : s_)
            word = sm.next();
    }

    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform in [0, n); n == 0 returns 0. */
    uint32_t
    range(uint32_t n)
    {
        return n == 0 ? 0 : static_cast<uint32_t>(next() % n);
    }

    /** Uniform in [lo, hi] (inclusive); lo > hi returns lo. */
    int32_t
    rangeInclusive(int32_t lo, int32_t hi)
    {
        if (lo >= hi)
            return lo;
        return lo + static_cast<int32_t>(
                        range(static_cast<uint32_t>(hi - lo + 1)));
    }

    /** True with probability pct/100. */
    bool chance(uint32_t pct) { return range(100) < pct; }

    /**
     * Index into @p weights (size @p count) with probability
     * proportional to each weight; all-zero weights pick 0.
     */
    size_t
    pickWeighted(const uint32_t *weights, size_t count)
    {
        uint32_t total = 0;
        for (size_t i = 0; i < count; ++i)
            total += weights[i];
        if (total == 0)
            return 0;
        uint32_t roll = range(total);
        for (size_t i = 0; i < count; ++i) {
            if (roll < weights[i])
                return i;
            roll -= weights[i];
        }
        return count - 1;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4] = {};
};

} // namespace trapjit

#endif // TRAPJIT_TESTING_WORKLOAD_GEN_RNG_H_
