#include "testing/workload_gen/workload_gen.h"

#include <algorithm>

#include "ir/builder.h"
#include "ir/layout.h"
#include "ir/serializer.h"
#include "testing/workload_gen/rng.h"
#include "workloads/kernel_util.h"

namespace trapjit
{

namespace
{

/**
 * Field offset past every modeled target's protected area (the largest
 * trap area is S/390's 8 KiB), so an access here can never ride the
 * hardware trap: Figure 5's BigOffset rule must force it explicit.
 */
constexpr int64_t kBeyondGuardOffset = 16384;

/** Shared layout of the generated world. */
struct GenWorld
{
    ClassId nodeCls = kUnknownClass;
    ClassId subCls = kUnknownClass;
    int64_t offIval = 0;
    int64_t offFval = 0;
    int64_t offNext = 0;
    int64_t offAux = 0;
    int64_t offBig = -1;  ///< kBeyondGuardOffset field (when profiled)
    int64_t offHuge = -1; ///< kMaxFieldOffset field (when profiled)
    int64_t nodeSize = 0;
    uint32_t slotMono = 0;
    uint32_t slotPoly = 0;
    std::vector<FunctionId> kernels; ///< acyclic call order
};

/** Emits one kernel function from the profile's distributions. */
class KernelGen
{
  public:
    KernelGen(Function &fn, GenWorld &world, Xoshiro256 &rng,
              const WorkloadProfile &profile, size_t kernel_index)
        : fn_(fn), world_(world), rng_(rng), p_(profile),
          kernelIndex_(kernel_index), b_(fn)
    {}

    void
    generate()
    {
        // Every kernel has the same shape a hand-built one would:
        // (Node o, i32[] arr, i32 x) -> i32 checksum.
        ValueId o = fn_.addParam(Type::Ref, "o", world_.nodeCls);
        arr_ = fn_.addParam(Type::Ref, "arr");
        ValueId x = fn_.addParam(Type::I32, "x");

        b_.startBlock();
        for (int i = 0; i < 3; ++i) {
            ValueId v = fn_.addLocal(Type::I32);
            b_.move(v, b_.constInt(static_cast<int64_t>(rng_.range(64))));
            intLocals_.push_back(v);
        }
        intLocals_.push_back(x);
        {
            ValueId v = fn_.addLocal(Type::F64);
            b_.move(v, b_.constFloat(rng_.range(16) * 0.5));
            floatLocals_.push_back(v);
        }

        refLocals_.push_back(o);
        {
            // A reference local whose nullness follows the profile's
            // density: the optimizer cannot prove it either way.
            ValueId v = fn_.addLocal(Type::Ref, "", world_.nodeCls);
            if (rng_.chance(p_.nullDensityPct)) {
                b_.move(v, b_.constNull(world_.nodeCls));
            } else if (allowAllocation()) {
                b_.move(v, b_.newObject(world_.nodeCls, world_.nodeSize));
            } else {
                b_.move(v, o);
            }
            refLocals_.push_back(v);
        }
        {
            ValueId nil = fn_.addLocal(Type::Ref, "", world_.nodeCls);
            b_.move(nil, b_.constNull(world_.nodeCls));
            refLocals_.push_back(nil);
        }

        for (int i = 0; i < p_.statementsPerKernel; ++i)
            genStatement(0);

        ValueId r = b_.binop(Opcode::IXor, intLocals_[0], intLocals_[1]);
        ValueId r2 = b_.binop(Opcode::IAdd, r, intLocals_[2]);
        b_.ret(r2);
    }

  private:
    /**
     * Jumbo-field profiles make every Node ~512 KB, so kernels must not
     * allocate inside loops (a few thousand iterations would exhaust
     * the 32 MB arena and turn every program into an OutOfMemory test).
     */
    bool allowAllocation() const { return world_.offHuge < 0; }

    ValueId pickInt() { return intLocals_[rng_.range(
        static_cast<uint32_t>(intLocals_.size()))]; }
    ValueId pickRef() { return refLocals_[rng_.range(
        static_cast<uint32_t>(refLocals_.size()))]; }

    ValueId
    intExpr()
    {
        ValueId a = pickInt();
        if (rng_.chance(30))
            return a;
        ValueId c = rng_.chance(50)
                        ? b_.constInt(static_cast<int64_t>(rng_.range(32)))
                        : pickInt();
        static const Opcode ops[] = {Opcode::IAdd, Opcode::ISub,
                                     Opcode::IMul, Opcode::IAnd,
                                     Opcode::IOr, Opcode::IXor};
        return b_.binop(ops[rng_.range(6)], a, c);
    }

    /** Field offset drawn from the profile's offset regime. */
    int64_t
    pickFieldOffset()
    {
        if (world_.offHuge >= 0 && rng_.chance(p_.hugeOffsetPct))
            return world_.offHuge;
        if (world_.offBig >= 0 && rng_.chance(p_.bigOffsetPct))
            return world_.offBig;
        return rng_.chance(50) ? world_.offIval : world_.offAux;
    }

    int
    pickTripCount()
    {
        return rng_.rangeInclusive(p_.loopTripMin, p_.loopTripMax);
    }

    void
    genStatement(int depth)
    {
        const uint32_t weights[] = {
            p_.arithWeight,  p_.fieldWeight, p_.arrayWeight,
            p_.chainWeight,  p_.callWeight,  p_.virtualWeight,
            // Nesting-limited constructs get zero weight at the cap.
            depth < p_.tryDepth ? p_.tryWeight : 0,
        };
        switch (rng_.pickWeighted(weights, std::size(weights))) {
          case 0: genArith(); break;
          case 1: genFieldBurst(depth); break;
          case 2: genArrayStream(depth); break;
          case 3: genChainWalk(); break;
          case 4: genStaticCall(); break;
          case 5: genVirtualCall(); break;
          default: genTryRegion(depth); break;
        }
    }

    void
    genArith()
    {
        if (rng_.chance(25)) {
            static const Opcode ops[] = {Opcode::FAdd, Opcode::FSub,
                                         Opcode::FMul};
            ValueId e = b_.binop(ops[rng_.range(3)], floatLocals_[0],
                                 floatLocals_[0]);
            b_.move(floatLocals_[0], e);
            return;
        }
        if (rng_.chance(20)) { // division: a non-NPE exception source
            ValueId d = b_.binop(rng_.chance(50) ? Opcode::IDiv
                                                 : Opcode::IRem,
                                 intExpr(), pickInt());
            b_.move(intLocals_[rng_.range(3)], d);
            return;
        }
        b_.move(intLocals_[rng_.range(3)], intExpr());
    }

    /**
     * A burst of 2-4 field accesses against one base reference — the
     * shape phase 1 turns into one check + unchecked accesses, and the
     * big/huge-offset draws are where phase 2 must refuse the trap.
     */
    void
    genFieldBurst(int depth)
    {
        ValueId r = pickRef();
        const int ops = 2 + static_cast<int>(rng_.range(3));
        for (int i = 0; i < ops; ++i) {
            int64_t off = pickFieldOffset();
            if (rng_.chance(40)) {
                b_.putField(r, off, intExpr());
            } else if (off == world_.offIval && rng_.chance(25)) {
                // A chained load: r.next.ival through a maybe-null link.
                ValueId nxt = b_.getField(r, world_.offNext, Type::Ref);
                ValueId t = b_.getField(nxt, world_.offIval, Type::I32);
                b_.move(intLocals_[rng_.range(3)], t);
            } else {
                ValueId t = b_.getField(r, off, Type::I32);
                b_.move(intLocals_[rng_.range(3)], t);
            }
        }
        if (rng_.chance(20) && depth < p_.tryDepth)
            genStatement(depth + 1);
    }

    /**
     * A streaming loop over the array parameter: `for (i < n) acc ^=
     * arr[i]` with occasional stores — the bounds-check-elimination
     * friendly kernel shape, and an NPE source when main passed null.
     */
    void
    genArrayStream(int depth)
    {
        const int trips =
            std::min(pickTripCount(),
                     std::max(1, p_.arrayLength));
        ValueId i = fn_.addLocal(Type::I32);
        CountedLoop loop(b_, i, b_.constInt(0),
                         b_.constInt(static_cast<int64_t>(trips)));
        ValueId t = b_.arrayLoad(arr_, i, Type::I32);
        ValueId acc = intLocals_[rng_.range(3)];
        b_.move(acc, b_.binop(Opcode::IXor, acc, t));
        if (rng_.chance(40))
            b_.arrayStore(arr_, i, intExpr(), Type::I32);
        if (rng_.chance(25) && depth < p_.tryDepth)
            genStatement(depth + 1);
        loop.close();

        if (rng_.chance(15)) {
            // A masked random-index access: in range only when the
            // profile's array length is a power of two (the generator
            // rounds it up), so this never turns into a guaranteed
            // AIOOBE — only the loop above can overrun a short array.
            ValueId mask =
                b_.constInt(static_cast<int64_t>(p_.arrayLength - 1));
            ValueId idx = b_.binop(Opcode::IAnd, intExpr(), mask);
            ValueId v = b_.arrayLoad(arr_, idx, Type::I32);
            b_.move(intLocals_[rng_.range(3)], v);
        }
    }

    /**
     * A pointer chase: `cur = cur.next` for a counted number of steps.
     * Guarded walks reset at null (the Edge(m,n) fact of 4.1.2 makes
     * the body's dereference check-free); unguarded walks run off the
     * chain's null tail and take the trap — the trap-heavy regime.
     */
    void
    genChainWalk()
    {
        ValueId cur = fn_.addLocal(Type::Ref, "", world_.nodeCls);
        b_.move(cur, pickRef());
        const bool guarded = rng_.chance(p_.guardedChasePct);
        ValueId i = fn_.addLocal(Type::I32);
        CountedLoop loop(b_, i, b_.constInt(0),
                         b_.constInt(static_cast<int64_t>(pickTripCount())));
        if (guarded) {
            TryRegionId region = b_.currentBlock().tryRegion();
            BasicBlock &nullB = fn_.newBlock(region);
            BasicBlock &okB = fn_.newBlock(region);
            BasicBlock &join = fn_.newBlock(region);
            b_.ifNull(cur, nullB, okB);
            b_.atEnd(nullB);
            // Restart the walk at a root so the loop keeps chasing.
            b_.move(cur, refLocals_[0]);
            b_.jump(join);
            b_.atEnd(okB);
            ValueId t = b_.getField(cur, world_.offIval, Type::I32);
            ValueId acc = intLocals_[rng_.range(3)];
            b_.move(acc, b_.binop(Opcode::IAdd, acc, t));
            b_.move(cur, b_.getField(cur, world_.offNext, Type::Ref));
            b_.jump(join);
            b_.atEnd(join);
        } else {
            ValueId t = b_.getField(cur, world_.offIval, Type::I32);
            ValueId acc = intLocals_[rng_.range(3)];
            b_.move(acc, b_.binop(Opcode::IXor, acc, t));
            b_.move(cur, b_.getField(cur, world_.offNext, Type::Ref));
        }
        loop.close();
    }

    void
    genStaticCall()
    {
        const size_t next = kernelIndex_ + 1;
        if (next >= world_.kernels.size()) {
            genArith();
            return;
        }
        const size_t span = std::min<size_t>(
            static_cast<size_t>(std::max(1, p_.callFanout)),
            world_.kernels.size() - next);
        const size_t callee = next + rng_.range(
            static_cast<uint32_t>(span));
        ValueId arrArg =
            rng_.chance(p_.nullDensityPct / 2) ? refLocals_.back() : arr_;
        ValueId got = b_.callStatic(world_.kernels[callee],
                                    {pickRef(), arrArg, intExpr()},
                                    Type::I32);
        b_.move(intLocals_[rng_.range(3)], got);
    }

    void
    genVirtualCall()
    {
        uint32_t slot =
            rng_.chance(50) ? world_.slotMono : world_.slotPoly;
        ValueId got = b_.callVirtual(slot, {pickRef()}, Type::I32);
        b_.move(intLocals_[rng_.range(3)], got);
    }

    void
    genTryRegion(int depth)
    {
        static const ExcKind kinds[] = {
            ExcKind::NullPointer, ExcKind::ArrayIndexOutOfBounds,
            ExcKind::Arithmetic, ExcKind::CatchAll};
        ExcKind caught = kinds[rng_.range(4)];
        TryRegionId enclosing = b_.currentBlock().tryRegion();
        BasicBlock &handler = fn_.newBlock(enclosing);
        TryRegionId region =
            fn_.addTryRegion(handler.id(), caught, enclosing);
        BasicBlock &body = fn_.newBlock(region);
        BasicBlock &join = fn_.newBlock(enclosing);
        b_.jump(body);
        b_.atEnd(body);
        const int stmts = 1 + static_cast<int>(rng_.range(2));
        for (int i = 0; i < stmts; ++i)
            genStatement(depth + 1);
        b_.jump(join);
        b_.atEnd(handler);
        ValueId mark =
            b_.constInt(static_cast<int64_t>(2000 + rng_.range(9)));
        b_.move(intLocals_[rng_.range(3)], mark);
        b_.jump(join);
        b_.atEnd(join);
    }

    Function &fn_;
    GenWorld &world_;
    Xoshiro256 &rng_;
    const WorkloadProfile &p_;
    size_t kernelIndex_;
    IRBuilder b_;
    ValueId arr_ = kNoValue;
    std::vector<ValueId> intLocals_;
    std::vector<ValueId> refLocals_;
    std::vector<ValueId> floatLocals_;
};

/** Round @p n up to a power of two (mask-index portability). */
int
roundUpPow2(int n)
{
    int p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

const std::vector<WorkloadProfile> &
workloadProfiles()
{
    static const std::vector<WorkloadProfile> presets = [] {
        std::vector<WorkloadProfile> all;

        WorkloadProfile mixed; // the defaults
        all.push_back(mixed);

        WorkloadProfile chase;
        chase.name = "pointer_chase";
        chase.chainWeight = 8;
        chase.fieldWeight = 2;
        chase.arrayWeight = 1;
        chase.nullDensityPct = 30;
        chase.guardedChasePct = 50;
        chase.chainLength = 12;
        chase.loopTripMax = 16;
        all.push_back(chase);

        WorkloadProfile stream;
        stream.name = "array_stream";
        stream.arrayWeight = 10;
        stream.fieldWeight = 1;
        stream.chainWeight = 0;
        stream.tryWeight = 1;
        stream.nullDensityPct = 5;
        stream.loopTripMin = 8;
        stream.loopTripMax = 32;
        stream.arrayLength = 64;
        all.push_back(stream);

        WorkloadProfile big;
        big.name = "big_offset";
        big.fieldWeight = 8;
        big.arrayWeight = 1;
        big.bigOffsetPct = 70;
        big.hugeOffsetPct = 30;
        big.nullDensityPct = 25;
        big.chainLength = 3;
        all.push_back(big);

        WorkloadProfile storm;
        storm.name = "try_storm";
        storm.tryWeight = 8;
        storm.tryDepth = 4;
        storm.nullDensityPct = 35;
        storm.guardedChasePct = 30;
        all.push_back(storm);

        WorkloadProfile web;
        web.name = "call_web";
        web.callWeight = 6;
        web.virtualWeight = 3;
        web.numKernels = 6;
        web.callFanout = 4;
        web.statementsPerKernel = 7;
        all.push_back(web);

        WorkloadProfile nulls;
        nulls.name = "null_storm";
        nulls.nullDensityPct = 70;
        nulls.fieldWeight = 6;
        nulls.chainWeight = 4;
        nulls.guardedChasePct = 20;
        nulls.tryWeight = 4;
        nulls.tryDepth = 3;
        all.push_back(nulls);

        return all;
    }();
    return presets;
}

const WorkloadProfile *
findWorkloadProfile(std::string_view name)
{
    for (const WorkloadProfile &p : workloadProfiles())
        if (p.name == name)
            return &p;
    return nullptr;
}

std::string
workloadProfileNames()
{
    std::string names;
    for (const WorkloadProfile &p : workloadProfiles()) {
        if (!names.empty())
            names += ",";
        names += p.name;
    }
    return names;
}

std::unique_ptr<Module>
generateWorkloadModule(const WorkloadProfile &profile)
{
    auto mod = std::make_unique<Module>();
    Xoshiro256 rng(profile.seed);

    WorkloadProfile p = profile;
    p.arrayLength = roundUpPow2(std::max(1, p.arrayLength));
    p.numKernels = std::max(1, p.numKernels);
    p.chainLength = std::max(1, p.chainLength);
    if (p.hugeOffsetPct > 0)
        p.chainLength = std::min(p.chainLength, 4);

    GenWorld world;
    world.nodeCls = mod->addClass("Node");
    world.offIval = mod->addField(world.nodeCls, "ival", Type::I32);
    world.offFval = mod->addField(world.nodeCls, "fval", Type::F64);
    world.offNext = mod->addField(world.nodeCls, "next", Type::Ref);
    world.offAux = mod->addField(world.nodeCls, "aux", Type::I32);
    if (p.bigOffsetPct > 0)
        world.offBig = mod->addFieldAt(world.nodeCls, "big", Type::I32,
                                       kBeyondGuardOffset);
    if (p.hugeOffsetPct > 0)
        world.offHuge = mod->addFieldAt(world.nodeCls, "huge", Type::I32,
                                        kMaxFieldOffset);
    world.nodeSize = mod->cls(world.nodeCls).instanceSize;

    // Virtual slots mirroring the Figure 1 situation: `weigh` is
    // monomorphic (devirtualizable + inlinable), `mix` polymorphic.
    {
        Function &weigh = mod->addFunction("Node.weigh", Type::I32, true);
        ValueId self = weigh.addParam(Type::Ref, "this", world.nodeCls);
        IRBuilder b(weigh);
        BasicBlock &entry = b.startBlock();
        BasicBlock &neg = weigh.newBlock();
        BasicBlock &pos = weigh.newBlock();
        b.atEnd(entry);
        ValueId v = b.getField(self, world.offIval, Type::I32);
        ValueId isNeg =
            b.cmp(Opcode::ICmp, CmpPred::LT, v, b.constInt(0));
        b.branch(isNeg, neg, pos);
        b.atEnd(neg);
        b.ret(b.constInt(-7));
        b.atEnd(pos);
        b.ret(b.binop(Opcode::IMul, v, b.constInt(5)));
        world.slotMono = mod->addVirtualMethod(world.nodeCls, weigh.id());
    }
    {
        Function &mixA = mod->addFunction("Node.mix", Type::I32, true);
        ValueId self = mixA.addParam(Type::Ref, "this", world.nodeCls);
        IRBuilder b(mixA);
        b.startBlock();
        ValueId v = b.getField(self, world.offAux, Type::I32);
        b.ret(b.binop(Opcode::IAdd, v, b.constInt(3)));
        world.slotPoly = mod->addVirtualMethod(world.nodeCls, mixA.id());
    }
    world.subCls = mod->addClass("SubNode", world.nodeCls);
    {
        Function &mixB = mod->addFunction("SubNode.mix", Type::I32, true);
        ValueId self = mixB.addParam(Type::Ref, "this", world.subCls);
        IRBuilder b(mixB);
        b.startBlock();
        ValueId v = b.getField(self, world.offIval, Type::I32);
        b.ret(b.binop(Opcode::IXor, v, b.constInt(9)));
        mod->overrideMethod(world.subCls, world.slotPoly, mixB.id());
    }

    // Reserve kernel ids so calls can reference later kernels.
    std::vector<Function *> kernels;
    for (int i = 0; i < p.numKernels; ++i) {
        Function &fn =
            mod->addFunction("kern" + std::to_string(i), Type::I32);
        world.kernels.push_back(fn.id());
        kernels.push_back(&fn);
    }
    for (int i = 0; i < p.numKernels; ++i) {
        KernelGen gen(*kernels[i], world, rng, p,
                      static_cast<size_t>(i));
        gen.generate();
    }

    // main: build the chain + array world, then drive kern0.
    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();

    ValueId head = fn.addLocal(Type::Ref, "head", world.nodeCls);
    ValueId mid = fn.addLocal(Type::Ref, "mid", world.nodeCls);
    {
        b.move(head, b.newObject(world.nodeCls, world.nodeSize));
        b.putField(head, world.offIval, b.constInt(11));
        b.move(mid, head);
        ValueId prev = fn.addLocal(Type::Ref, "", world.nodeCls);
        b.move(prev, head);
        for (int i = 1; i < p.chainLength; ++i) {
            // The chain ends early with the profile's null density:
            // walks past the break take the NPE/trap path.
            if (rng.chance(p.nullDensityPct))
                break;
            ClassId cls = rng.chance(30) ? world.subCls : world.nodeCls;
            ValueId node = fn.addLocal(Type::Ref, "", world.nodeCls);
            b.move(node, b.newObject(cls, world.nodeSize));
            b.putField(node, world.offIval,
                       b.constInt(static_cast<int64_t>(i * 3 + 1)));
            b.putField(prev, world.offNext, node);
            b.move(prev, node);
            if (i == p.chainLength / 2)
                b.move(mid, node);
        }
    }

    ValueId arr = fn.addLocal(Type::Ref, "arr");
    {
        ValueId len = b.constInt(static_cast<int64_t>(p.arrayLength));
        b.move(arr, b.newArray(len, Type::I32));
        ValueId i = fn.addLocal(Type::I32);
        CountedLoop fill(b, i, b.constInt(0), len);
        ValueId v = b.binop(Opcode::IMul, i, b.constInt(5));
        b.arrayStore(arr, i, v, Type::I32);
        fill.close();
    }

    ValueId nil = fn.addLocal(Type::Ref, "nil", world.nodeCls);
    b.move(nil, b.constNull(world.nodeCls));

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(0));
    for (int c = 0; c < std::max(1, p.mainCalls); ++c) {
        ValueId refArg = head;
        if (rng.chance(p.nullDensityPct))
            refArg = nil;
        else if (rng.chance(40))
            refArg = mid;
        ValueId arrArg = rng.chance(p.nullDensityPct / 2) ? nil : arr;
        ValueId x = b.constInt(static_cast<int64_t>(rng.range(64)));

        if (p.tryWeight > 0 && rng.chance(60)) {
            BasicBlock &handler = fn.newBlock(0);
            TryRegionId region =
                fn.addTryRegion(handler.id(), ExcKind::CatchAll);
            BasicBlock &body = fn.newBlock(region);
            BasicBlock &join = fn.newBlock(0);
            b.jump(body);
            b.atEnd(body);
            ValueId got = b.callStatic(world.kernels[0],
                                       {refArg, arrArg, x}, Type::I32);
            b.move(chk, b.binop(Opcode::IXor, chk, got));
            b.jump(join);
            b.atEnd(handler);
            b.move(chk, b.binop(Opcode::IAdd, chk,
                                b.constInt(0x0ddba11)));
            b.jump(join);
            b.atEnd(join);
        } else {
            ValueId got = b.callStatic(world.kernels[0],
                                       {refArg, arrArg, x}, Type::I32);
            b.move(chk, b.binop(Opcode::IXor, chk, got));
        }
    }
    b.ret(chk);
    return mod;
}

Hash128
moduleFingerprint(const Module &mod)
{
    return hashBytes(serializeModuleToString(mod));
}

} // namespace trapjit
