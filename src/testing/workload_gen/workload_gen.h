#ifndef TRAPJIT_TESTING_WORKLOAD_GEN_WORKLOAD_GEN_H_
#define TRAPJIT_TESTING_WORKLOAD_GEN_WORKLOAD_GEN_H_

/**
 * @file
 * Parameterized workload generator: seeded random programs shaped like
 * real kernels instead of uniform instruction soup.
 *
 * Where random_program.h draws every statement from one flat
 * distribution, this generator exposes the distributions themselves as
 * a WorkloadProfile: the access-shape mix (field loads, array streams,
 * chained `next` loads), the null density of the reference population,
 * try-region nesting depth, the field-offset regime — including the
 * beyond-the-guard-page offsets (Figure 5 "BigOffset") up to the
 * >512 KB JVM maximum that force explicit checks on every target —
 * loop trip counts and call-graph fan-out.  A profile pins a workload
 * *regime*; the seed then picks one program from it.  The fuzz farm
 * (testing/fuzz/fuzz_farm.h) sweeps (profile x seed x arm) so every
 * engine and pipeline arm is exercised across regimes a fixed
 * hand-built suite never reaches.
 *
 * Generated programs terminate by construction (counted loops, acyclic
 * call graph) and are bit-deterministic across platforms: the only
 * randomness source is the explicit xoshiro256** in rng.h, never a
 * std::uniform_* distribution, so a repro tuple from any machine
 * regenerates the identical module anywhere.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ir/module.h"
#include "support/hash.h"

namespace trapjit
{

/**
 * One workload regime: every distribution the generator draws from.
 * The defaults are the "mixed" profile; presets (workloadProfiles())
 * push individual knobs to their extremes.
 */
struct WorkloadProfile
{
    std::string name = "mixed";
    uint64_t seed = 1;

    // ---- Access-shape mix (relative weights, need not sum to 100) ----
    uint32_t arithWeight = 3;   ///< scalar int/float arithmetic
    uint32_t fieldWeight = 4;   ///< field read/write bursts
    uint32_t arrayWeight = 4;   ///< streaming array loops
    uint32_t chainWeight = 2;   ///< `cur = cur.next` pointer chases
    uint32_t callWeight = 2;    ///< static calls into later kernels
    uint32_t virtualWeight = 1; ///< virtual dispatch through maybe-null
    uint32_t tryWeight = 2;     ///< try/catch-wrapped sub-statements

    // ---- Null / offset regimes ----------------------------------------
    /** Chance (pct) a reference local starts / a ref argument is null. */
    uint32_t nullDensityPct = 20;
    /** Chance (pct) a field access targets the beyond-guard-page field
     *  (offset 16 KiB: past every target's trap area). */
    uint32_t bigOffsetPct = 10;
    /** Chance (pct) a field access targets the kMaxFieldOffset field
     *  (the >512 KB JVM-limit regime; costs ~512 KB per object). */
    uint32_t hugeOffsetPct = 0;
    /** Chance (pct) a pointer chase guards each step with ifnull. */
    uint32_t guardedChasePct = 70;

    // ---- Structure ----------------------------------------------------
    int tryDepth = 2;             ///< maximum try-region nesting
    int numKernels = 3;           ///< generated kernel functions
    int callFanout = 2;           ///< callees reachable per kernel
    int statementsPerKernel = 10; ///< top-level constructs per kernel
    int loopTripMin = 2;          ///< counted-loop trip count range
    int loopTripMax = 8;
    int chainLength = 6;   ///< objects in main's next-chain
    int arrayLength = 16;  ///< length of main's i32 array
    int mainCalls = 3;     ///< kernel invocations from main
};

/** The built-in profile presets (first entry is "mixed"). */
const std::vector<WorkloadProfile> &workloadProfiles();

/** Preset by name; nullptr when unknown.  Seed is the preset's. */
const WorkloadProfile *findWorkloadProfile(std::string_view name);

/** Comma-separated names of every preset, for --help texts. */
std::string workloadProfileNames();

/**
 * Build the module @p profile describes.  Same profile (seed included)
 * always produces the bit-identical module, on any platform.  Entry
 * point is an i32 `main`.
 */
std::unique_ptr<Module> generateWorkloadModule(
    const WorkloadProfile &profile);

/**
 * Content fingerprint of @p mod: FNV-1a/128 over the round-trip
 * serialization.  Two modules with equal fingerprints are identical;
 * the determinism regression tests pin (generator, seed) -> fingerprint.
 */
Hash128 moduleFingerprint(const Module &mod);

} // namespace trapjit

#endif // TRAPJIT_TESTING_WORKLOAD_GEN_WORKLOAD_GEN_H_
