/**
 * @file
 * The ten jBYTEmark v0.9-like kernels (Table 1 / Figures 8, 10, 14).
 *
 * Structure matters as much as instruction mix: each kernel's hot code
 * lives in its own *method* that receives its data as parameters, the
 * way real benchmark methods do.  Inside such a method nothing is known
 * about the parameters, so the front end's per-access null checks are
 * genuinely live at the loop headers — which is exactly the situation
 * the paper's optimizations differ on:
 *
 *  - forward-only elimination (Whaley) removes the second and later
 *    checks of an iteration but must keep one per variable per
 *    iteration, and those in-loop checks block scalar replacement and
 *    bounds hoisting (Section 2.2);
 *  - phase 1 hoists the checks in front of the loop, unlocking the
 *    iterated bounds + scalar replacement pipeline (Figures 2 and 4);
 *  - phase 2 / the lowering peephole decide how the remaining checks
 *    are implemented (Section 3.3).
 *
 * The hot methods are marked never-inline: they stand in for real
 * benchmark methods far beyond any inline budget.
 */

#include "workloads/workload.h"

#include "workloads/kernel_util.h"

namespace trapjit
{

namespace
{

/** for i in [0, n): arr[i] = lcg(seed); seed must be an I32 local. */
void
emitFillI32(IRBuilder &b, Function &fn, ValueId arr, ValueId n,
            ValueId seed)
{
    ValueId i = fn.addLocal(Type::I32);
    ValueId zero = b.constInt(0);
    CountedLoop loop(b, i, zero, n);
    ValueId next = emitLcgStep(b, seed);
    b.move(seed, next);
    b.arrayStore(arr, i, seed, Type::I32);
    loop.close();
}

/** for i in [0, n): arr[i] = (f64)lcg(seed) * scale. */
void
emitFillF64(IRBuilder &b, Function &fn, ValueId arr, ValueId n,
            ValueId seed, double scale)
{
    ValueId i = fn.addLocal(Type::I32);
    ValueId zero = b.constInt(0);
    ValueId scaleC = b.constFloat(scale);
    CountedLoop loop(b, i, zero, n);
    ValueId next = emitLcgStep(b, seed);
    b.move(seed, next);
    ValueId f = b.unop(Opcode::I2F, seed, Type::F64);
    ValueId v = b.binop(Opcode::FMul, f, scaleC);
    b.arrayStore(arr, i, v, Type::F64);
    loop.close();
}

/** chk = (chk * 31 + v) & 0x7fffffff, chk an I32 local. */
void
emitMix(IRBuilder &b, ValueId chk, ValueId v)
{
    ValueId c31 = b.constInt(31);
    ValueId mask = b.constInt(0x7fffffff);
    ValueId t1 = b.binop(Opcode::IMul, chk, c31);
    ValueId t2 = b.binop(Opcode::IAdd, t1, v);
    ValueId t3 = b.binop(Opcode::IAnd, t2, mask);
    b.move(chk, t3);
}

/** Probe checksum: mix arr[k] for k = 0, step, 2*step, ... < n. */
void
emitProbeI32(IRBuilder &b, Function &fn, ValueId chk, ValueId arr,
             ValueId n, int64_t step)
{
    ValueId k = fn.addLocal(Type::I32);
    ValueId zero = b.constInt(0);
    CountedLoop probe(b, k, zero, n, step);
    ValueId v = b.arrayLoad(arr, k, Type::I32);
    emitMix(b, chk, v);
    probe.close();
}

// ---------------------------------------------------------------------
// Numeric Sort
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildNumericSort()
{
    auto mod = std::make_unique<Module>();
    const int64_t N = 140;

    // void ns_sort(int[] arr): insertion sort.
    Function &sort = mod->addFunction("ns_sort", Type::Void);
    sort.setNeverInline(true);
    {
        ValueId arr = sort.addParam(Type::Ref, "arr");
        ValueId n = sort.addParam(Type::I32, "n");
        IRBuilder b(sort);
        b.startBlock();
        ValueId one = b.constInt(1);
        ValueId i = sort.addLocal(Type::I32, "i");
        CountedLoop outer(b, i, one, n);
        {
            ValueId v = sort.addLocal(Type::I32, "v");
            ValueId j = sort.addLocal(Type::I32, "j");
            ValueId cur = b.arrayLoad(arr, i, Type::I32);
            b.move(v, cur);
            ValueId jInit = b.binop(Opcode::ISub, i, one);
            b.move(j, jInit);

            BasicBlock &test = sort.newBlock();
            BasicBlock &load = sort.newBlock();
            BasicBlock &body = sort.newBlock();
            BasicBlock &done = sort.newBlock();
            b.jump(test);

            b.atEnd(test);
            ValueId zero = b.constInt(0);
            ValueId geZero = b.cmp(Opcode::ICmp, CmpPred::GE, j, zero);
            b.branch(geZero, load, done);

            b.atEnd(load);
            ValueId aj = b.arrayLoad(arr, j, Type::I32);
            ValueId gt = b.cmp(Opcode::ICmp, CmpPred::GT, aj, v);
            b.branch(gt, body, done);

            b.atEnd(body);
            ValueId aj2 = b.arrayLoad(arr, j, Type::I32);
            ValueId j1 = b.binop(Opcode::IAdd, j, b.constInt(1));
            b.arrayStore(arr, j1, aj2, Type::I32);
            ValueId jm = b.binop(Opcode::ISub, j, b.constInt(1));
            b.move(j, jm);
            b.jump(test);

            b.atEnd(done);
            ValueId slot = b.binop(Opcode::IAdd, j, b.constInt(1));
            b.arrayStore(arr, slot, v, Type::I32);
        }
        outer.close();
        b.ret();
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId n = b.constInt(N);
    ValueId arr = b.newArray(n, Type::I32);
    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(12345));
    emitFillI32(b, fn, arr, n, seed);
    b.callStatic(sort.id(), {arr, n}, Type::Void);

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(7));
    emitProbeI32(b, fn, chk, arr, n, 13);
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// String Sort
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildStringSort()
{
    auto mod = std::make_unique<Module>();
    const int64_t N = 40; // strings
    const int64_t W = 8;  // width

    // void ss_sort(int[] offsets, int[] chars): bubble sort of strings.
    Function &sortFn = mod->addFunction("ss_sort", Type::Void);
    sortFn.setNeverInline(true);
    {
        ValueId offsets = sortFn.addParam(Type::Ref, "offsets");
        ValueId chars = sortFn.addParam(Type::Ref, "chars");
        ValueId n = sortFn.addParam(Type::I32, "n");
        IRBuilder b(sortFn);
        b.startBlock();
        ValueId one = b.constInt(1);
        ValueId nm1 = b.binop(Opcode::ISub, n, one);
        ValueId pass = sortFn.addLocal(Type::I32, "pass");
        CountedLoop passes(b, pass, b.constInt(0), nm1);
        {
            ValueId k = sortFn.addLocal(Type::I32, "k");
            CountedLoop inner(b, k, b.constInt(0), nm1);
            {
                ValueId k1 = b.binop(Opcode::IAdd, k, b.constInt(1));
                ValueId o1 = b.arrayLoad(offsets, k, Type::I32);
                ValueId o2 = b.arrayLoad(offsets, k1, Type::I32);

                ValueId diff = sortFn.addLocal(Type::I32, "diff");
                b.move(diff, b.constInt(0));
                ValueId j = sortFn.addLocal(Type::I32, "j");
                CountedLoop cmp(b, j, b.constInt(0), b.constInt(W));
                {
                    ValueId p1 = b.binop(Opcode::IAdd, o1, j);
                    ValueId p2 = b.binop(Opcode::IAdd, o2, j);
                    ValueId c1 = b.arrayLoad(chars, p1, Type::I32);
                    ValueId c2 = b.arrayLoad(chars, p2, Type::I32);
                    ValueId d = b.binop(Opcode::ISub, c1, c2);
                    BasicBlock &setIt = sortFn.newBlock();
                    BasicBlock &skip = sortFn.newBlock();
                    ValueId isZero = b.cmp(Opcode::ICmp, CmpPred::EQ,
                                           diff, b.constInt(0));
                    b.branch(isZero, setIt, skip);
                    b.atEnd(setIt);
                    b.move(diff, d);
                    b.jump(skip);
                    b.atEnd(skip);
                }
                cmp.close();

                BasicBlock &swap = sortFn.newBlock();
                BasicBlock &noswap = sortFn.newBlock();
                ValueId gt = b.cmp(Opcode::ICmp, CmpPred::GT, diff,
                                   b.constInt(0));
                b.branch(gt, swap, noswap);
                b.atEnd(swap);
                b.arrayStore(offsets, k, o2, Type::I32);
                b.arrayStore(offsets, k1, o1, Type::I32);
                b.jump(noswap);
                b.atEnd(noswap);
            }
            inner.close();
        }
        passes.close();
        b.ret();
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId n = b.constInt(N);
    ValueId total = b.constInt(N * W);
    ValueId chars = b.newArray(total, Type::I32);
    ValueId offsets = b.newArray(n, Type::I32);

    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(99));
    {
        ValueId i = fn.addLocal(Type::I32);
        ValueId letters = b.constInt(25);
        CountedLoop loop(b, i, b.constInt(0), total);
        ValueId next = emitLcgStep(b, seed);
        b.move(seed, next);
        ValueId letter = b.binop(Opcode::IRem, seed, letters);
        b.arrayStore(chars, i, letter, Type::I32);
        loop.close();
    }
    {
        ValueId k = fn.addLocal(Type::I32);
        ValueId prime = b.constInt(7919);
        ValueId w = b.constInt(W);
        CountedLoop loop(b, k, b.constInt(0), n);
        ValueId kp = b.binop(Opcode::IMul, k, prime);
        ValueId perm = b.binop(Opcode::IRem, kp, n);
        ValueId off = b.binop(Opcode::IMul, perm, w);
        b.arrayStore(offsets, k, off, Type::I32);
        loop.close();
    }
    b.callStatic(sortFn.id(), {offsets, chars, n}, Type::Void);

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(3));
    emitProbeI32(b, fn, chk, offsets, n, 5);
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// Bitfield
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildBitfield()
{
    auto mod = std::make_unique<Module>();
    const int64_t WORDS = 64;
    const int64_t OPS = 6000;

    // void bf_ops(long[] arr, int ops): random bit toggles.
    Function &opsFn = mod->addFunction("bf_ops", Type::Void);
    opsFn.setNeverInline(true);
    {
        ValueId arr = opsFn.addParam(Type::Ref, "arr");
        ValueId ops = opsFn.addParam(Type::I32, "ops");
        ValueId words = opsFn.addParam(Type::I32, "words");
        IRBuilder b(opsFn);
        b.startBlock();
        ValueId seed = opsFn.addLocal(Type::I32, "seed");
        b.move(seed, b.constInt(4242));
        ValueId six = b.constInt(6);
        ValueId totalBits = b.binop(Opcode::IShl, words, six);
        ValueId bits63 = b.constInt(63);
        ValueId oneL = b.constInt(1, Type::I64);

        ValueId i = opsFn.addLocal(Type::I32, "i");
        CountedLoop loop(b, i, b.constInt(0), ops);
        {
            ValueId next = emitLcgStep(b, seed);
            b.move(seed, next);
            ValueId pos = b.binop(Opcode::IRem, seed, totalBits);
            ValueId word = b.binop(Opcode::IShr, pos, six);
            ValueId bitI = b.binop(Opcode::IAnd, pos, bits63);
            ValueId bitL = b.unop(Opcode::I2L, bitI, Type::I64);
            ValueId mask = b.binop(Opcode::IShl, oneL, bitL);
            ValueId old = b.arrayLoad(arr, word, Type::I64);
            ValueId mixed = b.binop(Opcode::IXor, old, mask);
            b.arrayStore(arr, word, mixed, Type::I64);
        }
        loop.close();
        b.ret();
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId words = b.constInt(WORDS);
    ValueId arr = b.newArray(words, Type::I64);
    ValueId opsC = b.constInt(OPS);
    b.callStatic(opsFn.id(), {arr, opsC, words}, Type::Void);

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(1));
    ValueId k = fn.addLocal(Type::I32);
    CountedLoop probe(b, k, b.constInt(0), words);
    ValueId w = b.arrayLoad(arr, k, Type::I64);
    ValueId lo = b.unop(Opcode::L2I, w, Type::I32);
    emitMix(b, chk, lo);
    probe.close();
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// FP Emulation
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildFPEmulation()
{
    auto mod = std::make_unique<Module>();
    const int64_t N = 120;
    const int64_t ROUNDS = 25;

    // void fp_round(double[] af, double[] bf, int[] mant).
    Function &roundFn = mod->addFunction("fp_round", Type::Void);
    roundFn.setNeverInline(true);
    {
        ValueId af = roundFn.addParam(Type::Ref, "af");
        ValueId bf = roundFn.addParam(Type::Ref, "bf");
        ValueId mant = roundFn.addParam(Type::Ref, "mant");
        ValueId n = roundFn.addParam(Type::I32, "n");
        IRBuilder b(roundFn);
        b.startBlock();
        ValueId scale = b.constFloat(4096.0);
        ValueId i = roundFn.addLocal(Type::I32, "i");
        CountedLoop loop(b, i, b.constInt(0), n);
        {
            ValueId x = b.arrayLoad(af, i, Type::F64);
            ValueId y = b.arrayLoad(bf, i, Type::F64);
            ValueId prod = b.binop(Opcode::FMul, x, y);
            ValueId sum = b.binop(Opcode::FAdd, prod, x);
            b.arrayStore(af, i, sum, Type::F64);
            ValueId scaled = b.binop(Opcode::FMul, sum, scale);
            ValueId m = b.unop(Opcode::F2I, scaled, Type::I32);
            ValueId mOld = b.arrayLoad(mant, i, Type::I32);
            ValueId mNew = b.binop(Opcode::IXor, mOld, m);
            b.arrayStore(mant, i, mNew, Type::I32);
        }
        loop.close();
        b.ret();
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId n = b.constInt(N);
    ValueId af = b.newArray(n, Type::F64);
    ValueId bf = b.newArray(n, Type::F64);
    ValueId mant = b.newArray(n, Type::I32);

    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(777));
    emitFillF64(b, fn, af, n, seed, 1.0 / (1 << 30));
    emitFillF64(b, fn, bf, n, seed, 1.0 / (1 << 28));

    ValueId r = fn.addLocal(Type::I32, "r");
    CountedLoop rounds(b, r, b.constInt(0), b.constInt(ROUNDS));
    b.callStatic(roundFn.id(), {af, bf, mant, n}, Type::Void);
    rounds.close();

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(11));
    emitProbeI32(b, fn, chk, mant, n, 7);
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// Fourier: coefficients by numeric integration — Math.sin/cos bound,
// with enough surrounding arithmetic that the math share matches the
// benchmark's profile.
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildFourier(void)
{
    auto mod = std::make_unique<Module>();
    MathFunctions math = addMathFunctions(*mod);
    const int64_t K = 24;
    const int64_t STEPS = 40;

    // double four_coeff(int k, double[] scratch).
    Function &coeff = mod->addFunction("four_coeff", Type::F64);
    coeff.setNeverInline(true);
    {
        ValueId k = coeff.addParam(Type::I32, "k");
        ValueId scratch = coeff.addParam(Type::Ref, "scratch");
        IRBuilder b(coeff);
        b.startBlock();
        ValueId acc = coeff.addLocal(Type::F64, "acc");
        b.move(acc, b.constFloat(0.0));
        ValueId kf = b.unop(Opcode::I2F, k, Type::F64);
        ValueId step = b.constFloat(2.0 / STEPS);
        ValueId half = b.constFloat(0.5);

        ValueId s = coeff.addLocal(Type::I32, "s");
        CountedLoop inner(b, s, b.constInt(0), b.constInt(STEPS));
        {
            ValueId sf = b.unop(Opcode::I2F, s, Type::F64);
            ValueId x0 = b.binop(Opcode::FMul, sf, step);
            ValueId xm = b.binop(Opcode::FMul, step, half);
            ValueId x = b.binop(Opcode::FAdd, x0, xm);
            ValueId kx = b.binop(Opcode::FMul, kf, x);
            ValueId c = b.callStatic(math.cos, {kx}, Type::F64);
            ValueId sn = b.callStatic(math.sin, {kx}, Type::F64);
            ValueId term = b.binop(Opcode::FMul, c, sn);
            ValueId wide = b.binop(Opcode::FMul, term, step);
            // Extra non-math work per step (trapezoid bookkeeping).
            ValueId prev = b.arrayLoad(scratch, s, Type::F64);
            ValueId mix = b.binop(Opcode::FAdd, prev, wide);
            b.arrayStore(scratch, s, mix, Type::F64);
            ValueId a2 = b.binop(Opcode::FAdd, acc, mix);
            b.move(acc, a2);
        }
        inner.close();
        b.ret(acc);
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId coeffs = b.newArray(b.constInt(K), Type::F64);
    ValueId scratch = b.newArray(b.constInt(STEPS), Type::F64);

    ValueId k = fn.addLocal(Type::I32, "k");
    CountedLoop outer(b, k, b.constInt(1), b.constInt(K));
    ValueId v = b.callStatic(coeff.id(), {k, scratch}, Type::F64);
    b.arrayStore(coeffs, k, v, Type::F64);
    outer.close();

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(5));
    ValueId p = fn.addLocal(Type::I32);
    ValueId thousand = b.constFloat(1000.0);
    CountedLoop probe(b, p, b.constInt(1), b.constInt(K), 3);
    ValueId cv = b.arrayLoad(coeffs, p, Type::F64);
    ValueId scaled = b.binop(Opcode::FMul, cv, thousand);
    ValueId iv = b.unop(Opcode::F2I, scaled, Type::I32);
    emitMix(b, chk, iv);
    probe.close();
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// Assignment: cost-matrix reduction over a 2-D int matrix; row and
// column reductions live in their own methods taking the matrix.
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildAssignment(void)
{
    auto mod = std::make_unique<Module>();
    const int64_t N = 36;
    const int64_t ROUNDS = 3;

    // void as_rows(int[][] matrix): subtract each row's minimum.
    Function &rowsFn = mod->addFunction("as_rows", Type::Void);
    rowsFn.setNeverInline(true);
    {
        ValueId matrix = rowsFn.addParam(Type::Ref, "matrix");
        ValueId n = rowsFn.addParam(Type::I32, "n");
        IRBuilder b(rowsFn);
        b.startBlock();
        ValueId i = rowsFn.addLocal(Type::I32, "i");
        CountedLoop rows(b, i, b.constInt(0), n);
        {
            ValueId row = rowsFn.addLocal(Type::Ref, "row");
            ValueId rv = b.arrayLoad(matrix, i, Type::Ref);
            b.move(row, rv);

            ValueId minv = rowsFn.addLocal(Type::I32, "minv");
            b.move(minv, b.constInt(0x7fffffff));
            ValueId j = rowsFn.addLocal(Type::I32, "j");
            CountedLoop scan(b, j, b.constInt(0), n);
            {
                ValueId v = b.arrayLoad(row, j, Type::I32);
                BasicBlock &lower = rowsFn.newBlock();
                BasicBlock &keep = rowsFn.newBlock();
                ValueId lt = b.cmp(Opcode::ICmp, CmpPred::LT, v, minv);
                b.branch(lt, lower, keep);
                b.atEnd(lower);
                b.move(minv, v);
                b.jump(keep);
                b.atEnd(keep);
            }
            scan.close();

            ValueId j2 = rowsFn.addLocal(Type::I32, "j2");
            CountedLoop sub(b, j2, b.constInt(0), n);
            {
                ValueId v = b.arrayLoad(row, j2, Type::I32);
                ValueId nv = b.binop(Opcode::ISub, v, minv);
                b.arrayStore(row, j2, nv, Type::I32);
            }
            sub.close();
        }
        rows.close();
        b.ret();
    }

    // void as_cols(int[][] matrix): subtract each column's minimum.
    Function &colsFn = mod->addFunction("as_cols", Type::Void);
    colsFn.setNeverInline(true);
    {
        ValueId matrix = colsFn.addParam(Type::Ref, "matrix");
        ValueId n = colsFn.addParam(Type::I32, "n");
        IRBuilder b(colsFn);
        b.startBlock();
        ValueId c = colsFn.addLocal(Type::I32, "c");
        CountedLoop cols(b, c, b.constInt(0), n);
        {
            ValueId minv = colsFn.addLocal(Type::I32, "cmin");
            b.move(minv, b.constInt(0x7fffffff));
            ValueId j = colsFn.addLocal(Type::I32, "j");
            CountedLoop scan(b, j, b.constInt(0), n);
            {
                ValueId row = b.arrayLoad(matrix, j, Type::Ref);
                ValueId v = b.arrayLoad(row, c, Type::I32);
                BasicBlock &lower = colsFn.newBlock();
                BasicBlock &keep = colsFn.newBlock();
                ValueId lt = b.cmp(Opcode::ICmp, CmpPred::LT, v, minv);
                b.branch(lt, lower, keep);
                b.atEnd(lower);
                b.move(minv, v);
                b.jump(keep);
                b.atEnd(keep);
            }
            scan.close();

            ValueId j2 = colsFn.addLocal(Type::I32, "jc");
            CountedLoop sub(b, j2, b.constInt(0), n);
            {
                ValueId row = b.arrayLoad(matrix, j2, Type::Ref);
                ValueId v = b.arrayLoad(row, c, Type::I32);
                ValueId nv = b.binop(Opcode::ISub, v, minv);
                b.arrayStore(row, c, nv, Type::I32);
            }
            sub.close();
        }
        cols.close();
        b.ret();
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId n = b.constInt(N);
    ValueId matrix = b.newArray(n, Type::Ref);
    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(31415));
    {
        ValueId i = fn.addLocal(Type::I32, "i");
        CountedLoop rows(b, i, b.constInt(0), n);
        ValueId row = b.newArray(n, Type::I32);
        b.arrayStore(matrix, i, row, Type::Ref);
        ValueId j = fn.addLocal(Type::I32, "j");
        CountedLoop cols(b, j, b.constInt(0), n);
        ValueId next = emitLcgStep(b, seed);
        b.move(seed, next);
        ValueId cost = b.binop(Opcode::IRem, seed, b.constInt(1000));
        b.arrayStore(row, j, cost, Type::I32);
        cols.close();
        rows.close();
    }

    ValueId r = fn.addLocal(Type::I32, "r");
    CountedLoop rounds(b, r, b.constInt(0), b.constInt(ROUNDS));
    b.callStatic(rowsFn.id(), {matrix, n}, Type::Void);
    b.callStatic(colsFn.id(), {matrix, n}, Type::Void);
    rounds.close();

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(17));
    ValueId k = fn.addLocal(Type::I32);
    CountedLoop probe(b, k, b.constInt(0), n, 5);
    ValueId row = b.arrayLoad(matrix, k, Type::Ref);
    ValueId v = b.arrayLoad(row, k, Type::I32);
    emitMix(b, chk, v);
    probe.close();
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// IDEA encryption: tight arithmetic with constant-index key accesses.
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildIdea(void)
{
    auto mod = std::make_unique<Module>();
    const int64_t KEYS = 16;
    const int64_t N = 512;
    const int64_t ROUNDS = 4;

    // void idea_round(int[] keys, int[] data).
    Function &roundFn = mod->addFunction("idea_round", Type::Void);
    roundFn.setNeverInline(true);
    {
        ValueId keys = roundFn.addParam(Type::Ref, "keys");
        ValueId data = roundFn.addParam(Type::Ref, "data");
        ValueId n = roundFn.addParam(Type::I32, "n");
        IRBuilder b(roundFn);
        b.startBlock();
        ValueId k0 = b.constInt(0);
        ValueId k1 = b.constInt(1);
        ValueId k2 = b.constInt(2);
        ValueId k3 = b.constInt(3);
        ValueId mask16 = b.constInt(0xffff);

        ValueId i = roundFn.addLocal(Type::I32, "i");
        CountedLoop loop(b, i, b.constInt(0), n);
        {
            ValueId x = b.arrayLoad(data, i, Type::I32);
            ValueId ka = b.arrayLoad(keys, k0, Type::I32);
            ValueId kb = b.arrayLoad(keys, k1, Type::I32);
            ValueId kc = b.arrayLoad(keys, k2, Type::I32);
            ValueId kd = b.arrayLoad(keys, k3, Type::I32);
            ValueId t1 = b.binop(Opcode::IMul, x, ka);
            ValueId t2 = b.binop(Opcode::IAdd, t1, kb);
            ValueId t3 = b.binop(Opcode::IXor, t2, kc);
            ValueId t4 = b.binop(Opcode::IAdd, t3, kd);
            ValueId t5 = b.binop(Opcode::IAnd, t4, mask16);
            b.arrayStore(data, i, t5, Type::I32);
        }
        loop.close();
        b.ret();
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId keys = b.newArray(b.constInt(KEYS), Type::I32);
    ValueId data = b.newArray(b.constInt(N), Type::I32);

    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(1001));
    emitFillI32(b, fn, keys, b.constInt(KEYS), seed);
    emitFillI32(b, fn, data, b.constInt(N), seed);

    ValueId r = fn.addLocal(Type::I32, "r");
    CountedLoop rounds(b, r, b.constInt(0), b.constInt(ROUNDS));
    ValueId nData = b.constInt(N);
    b.callStatic(roundFn.id(), {keys, data, nData}, Type::Void);
    rounds.close();

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(23));
    emitProbeI32(b, fn, chk, data, b.constInt(N), 37);
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// Huffman: pointer-chasing through a binary tree of nodes.
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildHuffman(void)
{
    auto mod = std::make_unique<Module>();
    ClassId nodeCls = mod->addClass("Node");
    int64_t offLeft = mod->addField(nodeCls, "left", Type::Ref);
    int64_t offRight = mod->addField(nodeCls, "right", Type::Ref);
    int64_t offSym = mod->addField(nodeCls, "sym", Type::I32);
    int64_t nodeSize = mod->cls(nodeCls).instanceSize;
    const int64_t DEPTH = 6;
    const int64_t LEAVES = 1 << DEPTH;
    const int64_t WALKS = 1200;

    // int huff_walks(Node root, int walks): decode random bit strings.
    Function &walkFn = mod->addFunction("huff_walks", Type::I32);
    walkFn.setNeverInline(true);
    {
        ValueId root = walkFn.addParam(Type::Ref, "root", nodeCls);
        ValueId walks = walkFn.addParam(Type::I32, "walks");
        IRBuilder b(walkFn);
        b.startBlock();
        ValueId seed = walkFn.addLocal(Type::I32, "seed");
        b.move(seed, b.constInt(555));
        ValueId chk = walkFn.addLocal(Type::I32, "chk");
        b.move(chk, b.constInt(29));

        ValueId w = walkFn.addLocal(Type::I32, "w");
        CountedLoop loop(b, w, b.constInt(0), walks);
        {
            ValueId node = walkFn.addLocal(Type::Ref, "node", nodeCls);
            b.move(node, root);
            ValueId next = emitLcgStep(b, seed);
            b.move(seed, next);

            ValueId step = walkFn.addLocal(Type::I32, "step");
            CountedLoop descend(b, step, b.constInt(0),
                                b.constInt(DEPTH));
            {
                ValueId bit = b.binop(Opcode::IShr, seed, step);
                ValueId one = b.binop(Opcode::IAnd, bit, b.constInt(1));
                BasicBlock &goLeft = walkFn.newBlock();
                BasicBlock &goRight = walkFn.newBlock();
                BasicBlock &merge = walkFn.newBlock();
                ValueId isOne = b.cmp(Opcode::ICmp, CmpPred::NE, one,
                                      b.constInt(0));
                b.branch(isOne, goRight, goLeft);
                b.atEnd(goLeft);
                ValueId l = b.getField(node, offLeft, Type::Ref);
                b.move(node, l);
                b.jump(merge);
                b.atEnd(goRight);
                ValueId rr = b.getField(node, offRight, Type::Ref);
                b.move(node, rr);
                b.jump(merge);
                b.atEnd(merge);
            }
            descend.close();
            ValueId sym = b.getField(node, offSym, Type::I32);
            emitMix(b, chk, sym);
        }
        loop.close();
        b.ret(chk);
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId level = b.newArray(b.constInt(LEAVES), Type::Ref);
    ValueId root = fn.addLocal(Type::Ref, "root", nodeCls);
    {
        ValueId i = fn.addLocal(Type::I32, "i");
        CountedLoop leaves(b, i, b.constInt(0), b.constInt(LEAVES));
        ValueId leaf = b.newObject(nodeCls, nodeSize);
        b.putField(leaf, offSym, i);
        b.arrayStore(level, i, leaf, Type::Ref);
        leaves.close();

        ValueId width = fn.addLocal(Type::I32, "width");
        b.move(width, b.constInt(LEAVES));
        ValueId d = fn.addLocal(Type::I32, "d");
        CountedLoop depth(b, d, b.constInt(0), b.constInt(DEPTH));
        {
            ValueId half = b.binop(Opcode::IShr, width, b.constInt(1));
            ValueId j = fn.addLocal(Type::I32, "j");
            CountedLoop pair(b, j, b.constInt(0), half);
            {
                ValueId j2 = b.binop(Opcode::IMul, j, b.constInt(2));
                ValueId j21 = b.binop(Opcode::IAdd, j2, b.constInt(1));
                ValueId l = b.arrayLoad(level, j2, Type::Ref);
                ValueId rr = b.arrayLoad(level, j21, Type::Ref);
                ValueId parent = b.newObject(nodeCls, nodeSize);
                b.putField(parent, offLeft, l);
                b.putField(parent, offRight, rr);
                ValueId negOne = b.constInt(-1);
                b.putField(parent, offSym, negOne);
                b.arrayStore(level, j, parent, Type::Ref);
            }
            pair.close();
            b.move(width, half);
        }
        depth.close();
        ValueId top = b.arrayLoad(level, b.constInt(0), Type::Ref);
        b.move(root, top);
    }

    ValueId walks = b.constInt(WALKS);
    ValueId chk = b.callStatic(walkFn.id(), {root, walks}, Type::I32);
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// Neural Net: 2-D weights, sigmoid via Math.exp, and a Figure 6-shaped
// accumulation loop (a store first, then array reads).
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildNeuralNet(void)
{
    auto mod = std::make_unique<Module>();
    MathFunctions math = addMathFunctions(*mod);
    const int64_t IN = 16;
    const int64_t HID = 12;
    const int64_t EPOCHS = 10;

    // void nn_epoch(double[][] w, double[] in, double[] hid).
    Function &epochFn = mod->addFunction("nn_epoch", Type::Void);
    epochFn.setNeverInline(true);
    {
        ValueId weights = epochFn.addParam(Type::Ref, "w");
        ValueId input = epochFn.addParam(Type::Ref, "in");
        ValueId hidden = epochFn.addParam(Type::Ref, "hid");
        ValueId nHid = epochFn.addParam(Type::I32, "nHid");
        ValueId nIn = epochFn.addParam(Type::I32, "nIn");
        IRBuilder b(epochFn);
        b.startBlock();

        // Forward pass; the store to hidden[] comes FIRST in the inner
        // body (Figure 6): on a write-only-trap target the checks for
        // `row`/`input` are stuck in the loop and only speculation can
        // hoist the loads above them.
        ValueId h = epochFn.addLocal(Type::I32, "h");
        CountedLoop rows(b, h, b.constInt(0), nHid);
        {
            ValueId acc = epochFn.addLocal(Type::F64, "acc");
            b.move(acc, b.constFloat(0.0));
            ValueId row = epochFn.addLocal(Type::Ref, "row");
            ValueId rv = b.arrayLoad(weights, h, Type::Ref);
            b.move(row, rv);

            ValueId i = epochFn.addLocal(Type::I32, "i");
            CountedLoop sum(b, i, b.constInt(0), nIn);
            {
                b.arrayStore(hidden, h, acc, Type::F64);
                ValueId wv = b.arrayLoad(row, i, Type::F64);
                ValueId xv = b.arrayLoad(input, i, Type::F64);
                ValueId prod = b.binop(Opcode::FMul, wv, xv);
                ValueId a2 = b.binop(Opcode::FAdd, acc, prod);
                b.move(acc, a2);
            }
            sum.close();

            ValueId neg = b.unop(Opcode::FNeg, acc, Type::F64);
            ValueId ex = b.callStatic(math.exp, {neg}, Type::F64);
            ValueId one = b.constFloat(1.0);
            ValueId denom = b.binop(Opcode::FAdd, one, ex);
            ValueId sig = b.binop(Opcode::FDiv, one, denom);
            b.arrayStore(hidden, h, sig, Type::F64);
        }
        rows.close();

        // Weight update: w[h][i] += 0.01 * hidden[h] * input[i].
        ValueId h2 = epochFn.addLocal(Type::I32, "h2");
        CountedLoop upd(b, h2, b.constInt(0), nHid);
        {
            ValueId row = epochFn.addLocal(Type::Ref, "urow");
            ValueId rv = b.arrayLoad(weights, h2, Type::Ref);
            b.move(row, rv);
            ValueId hv = b.arrayLoad(hidden, h2, Type::F64);
            ValueId rate = b.constFloat(0.01);
            ValueId delta = b.binop(Opcode::FMul, hv, rate);
            ValueId i = epochFn.addLocal(Type::I32, "ui");
            CountedLoop cols(b, i, b.constInt(0), nIn);
            {
                ValueId xv = b.arrayLoad(input, i, Type::F64);
                ValueId dw = b.binop(Opcode::FMul, delta, xv);
                ValueId wv = b.arrayLoad(row, i, Type::F64);
                ValueId nw = b.binop(Opcode::FAdd, wv, dw);
                b.arrayStore(row, i, nw, Type::F64);
            }
            cols.close();
        }
        upd.close();
        b.ret();
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId nIn = b.constInt(IN);
    ValueId nHid = b.constInt(HID);
    ValueId weights = b.newArray(nHid, Type::Ref);
    ValueId input = b.newArray(nIn, Type::F64);
    ValueId hidden = b.newArray(nHid, Type::F64);

    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(20000));
    {
        ValueId h = fn.addLocal(Type::I32, "h");
        CountedLoop rows(b, h, b.constInt(0), nHid);
        ValueId row = b.newArray(nIn, Type::F64);
        b.arrayStore(weights, h, row, Type::Ref);
        ValueId i = fn.addLocal(Type::I32, "i");
        ValueId scale = b.constFloat(1.0 / (1 << 30));
        CountedLoop cols(b, i, b.constInt(0), nIn);
        ValueId next = emitLcgStep(b, seed);
        b.move(seed, next);
        ValueId f = b.unop(Opcode::I2F, seed, Type::F64);
        ValueId v = b.binop(Opcode::FMul, f, scale);
        b.arrayStore(row, i, v, Type::F64);
        cols.close();
        rows.close();
    }
    emitFillF64(b, fn, input, nIn, seed, 1.0 / (1 << 29));

    ValueId e = fn.addLocal(Type::I32, "e");
    CountedLoop epochs(b, e, b.constInt(0), b.constInt(EPOCHS));
    b.callStatic(epochFn.id(), {weights, input, hidden, nHid, nIn},
                 Type::Void);
    epochs.close();

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(41));
    ValueId k = fn.addLocal(Type::I32);
    ValueId thousand = b.constFloat(1000.0);
    CountedLoop probe(b, k, b.constInt(0), nHid);
    ValueId hv = b.arrayLoad(hidden, k, Type::F64);
    ValueId scaled = b.binop(Opcode::FMul, hv, thousand);
    ValueId iv = b.unop(Opcode::F2I, scaled, Type::I32);
    emitMix(b, chk, iv);
    probe.close();
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// LU Decomposition: in-place factorization, triple loop over row arrays.
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildLU(void)
{
    auto mod = std::make_unique<Module>();
    const int64_t N = 20;

    // void lu_row(double[] row, double[] pivotRow, double f, int k1,
    //             int n): the O(n) inner update of the factorization.
    Function &rowFn = mod->addFunction("lu_row", Type::Void);
    rowFn.setNeverInline(true);
    {
        ValueId row = rowFn.addParam(Type::Ref, "row");
        ValueId pivotRow = rowFn.addParam(Type::Ref, "pivotRow");
        ValueId f = rowFn.addParam(Type::F64, "f");
        ValueId k1 = rowFn.addParam(Type::I32, "k1");
        ValueId n = rowFn.addParam(Type::I32, "n");
        IRBuilder b(rowFn);
        b.startBlock();
        ValueId j = rowFn.addLocal(Type::I32, "j");
        CountedLoop inner(b, j, k1, n);
        {
            ValueId pv = b.arrayLoad(pivotRow, j, Type::F64);
            ValueId term = b.binop(Opcode::FMul, f, pv);
            ValueId cur = b.arrayLoad(row, j, Type::F64);
            ValueId nv = b.binop(Opcode::FSub, cur, term);
            b.arrayStore(row, j, nv, Type::F64);
        }
        inner.close();
        b.ret();
    }

    // void lu_factor(double[][] a).
    Function &factor = mod->addFunction("lu_factor", Type::Void);
    factor.setNeverInline(true);
    {
        ValueId a = factor.addParam(Type::Ref, "a");
        ValueId n = factor.addParam(Type::I32, "n");
        IRBuilder b(factor);
        b.startBlock();
        ValueId one = b.constInt(1);
        ValueId nm1 = b.binop(Opcode::ISub, n, one);
        ValueId k = factor.addLocal(Type::I32, "k");
        CountedLoop outer(b, k, b.constInt(0), nm1);
        {
            ValueId pivotRow = factor.addLocal(Type::Ref, "pivotRow");
            ValueId pr = b.arrayLoad(a, k, Type::Ref);
            b.move(pivotRow, pr);
            ValueId pivot = b.arrayLoad(pivotRow, k, Type::F64);

            ValueId i = factor.addLocal(Type::I32, "li");
            ValueId k1 = b.binop(Opcode::IAdd, k, one);
            CountedLoop middle(b, i, k1, n);
            {
                ValueId row = factor.addLocal(Type::Ref, "lrow");
                ValueId rv = b.arrayLoad(a, i, Type::Ref);
                b.move(row, rv);
                ValueId lead = b.arrayLoad(row, k, Type::F64);
                ValueId f = b.binop(Opcode::FDiv, lead, pivot);
                b.arrayStore(row, k, f, Type::F64);

                b.callStatic(rowFn.id(), {row, pivotRow, f, k1, n},
                             Type::Void);
            }
            middle.close();
        }
        outer.close();
        b.ret();
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId n = b.constInt(N);
    ValueId a = b.newArray(n, Type::Ref);
    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(616));
    {
        ValueId i = fn.addLocal(Type::I32, "i");
        CountedLoop rows(b, i, b.constInt(0), n);
        ValueId row = b.newArray(n, Type::F64);
        b.arrayStore(a, i, row, Type::Ref);
        ValueId j = fn.addLocal(Type::I32, "j");
        ValueId scale = b.constFloat(1.0 / (1 << 22));
        ValueId bump = b.constFloat(64.0);
        CountedLoop cols(b, j, b.constInt(0), n);
        {
            ValueId next = emitLcgStep(b, seed);
            b.move(seed, next);
            ValueId f = b.unop(Opcode::I2F, seed, Type::F64);
            ValueId v = b.binop(Opcode::FMul, f, scale);
            BasicBlock &diag = fn.newBlock();
            BasicBlock &store = fn.newBlock();
            ValueId vd = fn.addLocal(Type::F64, "vd");
            b.move(vd, v);
            ValueId isDiag = b.cmp(Opcode::ICmp, CmpPred::EQ, i, j);
            b.branch(isDiag, diag, store);
            b.atEnd(diag);
            ValueId vBig = b.binop(Opcode::FAdd, v, bump);
            b.move(vd, vBig);
            b.jump(store);
            b.atEnd(store);
            b.arrayStore(row, j, vd, Type::F64);
        }
        cols.close();
        rows.close();
    }
    b.callStatic(factor.id(), {a, n}, Type::Void);

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(47));
    ValueId p = fn.addLocal(Type::I32);
    ValueId thousand = b.constFloat(1000.0);
    CountedLoop probe(b, p, b.constInt(0), n, 3);
    ValueId row = b.arrayLoad(a, p, Type::Ref);
    ValueId v = b.arrayLoad(row, p, Type::F64);
    ValueId scaled = b.binop(Opcode::FMul, v, thousand);
    ValueId iv = b.unop(Opcode::F2I, scaled, Type::I32);
    emitMix(b, chk, iv);
    probe.close();
    b.ret(chk);
    return mod;
}

} // namespace

const std::vector<Workload> &
jbytemarkWorkloads()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> list;
        auto add = [&list](const char *name, auto builder,
                           double scale) {
            Workload w;
            w.name = name;
            w.suite = "jbytemark";
            w.build = builder;
            w.indexScale = scale;
            list.push_back(std::move(w));
        };
        add("Numeric Sort", buildNumericSort, 1.1e9);
        add("String Sort", buildStringSort, 0.35e9);
        add("Bitfield", buildBitfield, 1.3e9);
        add("FP Emulation", buildFPEmulation, 1.2e9);
        add("Fourier", buildFourier, 0.45e9);
        add("Assignment", buildAssignment, 1.2e9);
        add("IDEA encryption", buildIdea, 0.5e9);
        add("Huffman Compression", buildHuffman, 0.8e9);
        add("Neural Net", buildNeuralNet, 1.1e9);
        add("LU Decomposition", buildLU, 1.1e9);
        return list;
    }();
    return workloads;
}

} // namespace trapjit
