#include "workloads/kernel_util.h"

#include "support/diagnostics.h"

namespace trapjit
{

CountedLoop::CountedLoop(IRBuilder &b, ValueId i, ValueId start,
                         ValueId limit, int64_t step)
    : b_(b), i_(i), limit_(limit), step_(step)
{
    TryRegionId region = b.currentBlock().tryRegion();
    b.move(i, start);
    body_ = &b.function().newBlock(region);
    b.jump(*body_);
    b.atEnd(*body_);
}

void
CountedLoop::close()
{
    TRAPJIT_ASSERT(!closed_, "loop closed twice");
    closed_ = true;
    TryRegionId region = b_.currentBlock().tryRegion();
    ValueId stepVal = b_.constInt(step_);
    ValueId next = b_.binop(Opcode::IAdd, i_, stepVal);
    b_.move(i_, next);
    ValueId cond = b_.cmp(Opcode::ICmp, CmpPred::LT, i_, limit_);
    exit_ = &b_.function().newBlock(region);
    b_.branch(cond, *body_, *exit_);
    b_.atEnd(*exit_);
}

namespace
{

/** exp(x) = (taylor(x/16))^16 with a 12-term series. */
FunctionId
buildExp(Module &mod)
{
    Function &fn = mod.addFunction("Math.exp", Type::F64);
    fn.setIntrinsic(Intrinsic::Exp);
    ValueId x = fn.addParam(Type::F64, "x");
    IRBuilder b(fn);
    b.startBlock();

    ValueId sixteenth = b.constFloat(1.0 / 16.0);
    ValueId y = b.binop(Opcode::FMul, x, sixteenth);

    ValueId sum = fn.addLocal(Type::F64, "sum");
    ValueId term = fn.addLocal(Type::F64, "term");
    ValueId one = b.constFloat(1.0);
    b.move(sum, one);
    b.move(term, one);

    ValueId k = fn.addLocal(Type::I32, "k");
    ValueId kStart = b.constInt(1);
    ValueId kLimit = b.constInt(13);
    CountedLoop loop(b, k, kStart, kLimit);
    {
        ValueId kf = b.unop(Opcode::I2F, k, Type::F64);
        ValueId ty = b.binop(Opcode::FMul, term, y);
        ValueId t2 = b.binop(Opcode::FDiv, ty, kf);
        b.move(term, t2);
        ValueId s2 = b.binop(Opcode::FAdd, sum, term);
        b.move(sum, s2);
    }
    loop.close();

    // sum^16 by four squarings.
    for (int i = 0; i < 4; ++i) {
        ValueId sq = b.binop(Opcode::FMul, sum, sum);
        b.move(sum, sq);
    }
    b.ret(sum);
    return fn.id();
}

/** 9-term alternating Taylor series (adequate on the kernels' ranges). */
FunctionId
buildSinCos(Module &mod, bool is_sin)
{
    Function &fn =
        mod.addFunction(is_sin ? "Math.sin" : "Math.cos", Type::F64);
    fn.setIntrinsic(is_sin ? Intrinsic::Sin : Intrinsic::Cos);
    ValueId x = fn.addParam(Type::F64, "x");
    IRBuilder b(fn);
    b.startBlock();

    ValueId x2 = b.binop(Opcode::FMul, x, x);
    ValueId sum = fn.addLocal(Type::F64, "sum");
    ValueId term = fn.addLocal(Type::F64, "term");
    ValueId init = is_sin ? x : b.constFloat(1.0);
    b.move(sum, init);
    b.move(term, init);

    ValueId k = fn.addLocal(Type::I32, "k");
    ValueId kStart = b.constInt(1);
    ValueId kLimit = b.constInt(10);
    CountedLoop loop(b, k, kStart, kLimit);
    {
        // term *= -x^2 / ((2k + c - 1) * (2k + c)), c = 0 for cos, 1 sin.
        ValueId two = b.constInt(2);
        ValueId twoK = b.binop(Opcode::IMul, k, two);
        ValueId cAdj = b.constInt(is_sin ? 1 : 0);
        ValueId hi = b.binop(Opcode::IAdd, twoK, cAdj);
        ValueId oneC = b.constInt(1);
        ValueId lo = b.binop(Opcode::ISub, hi, oneC);
        ValueId denomI = b.binop(Opcode::IMul, hi, lo);
        ValueId denom = b.unop(Opcode::I2F, denomI, Type::F64);
        ValueId tx = b.binop(Opcode::FMul, term, x2);
        ValueId td = b.binop(Opcode::FDiv, tx, denom);
        ValueId tn = b.unop(Opcode::FNeg, td, Type::F64);
        b.move(term, tn);
        ValueId s2 = b.binop(Opcode::FAdd, sum, term);
        b.move(sum, s2);
    }
    loop.close();
    b.ret(sum);
    return fn.id();
}

/** log(x) via atanh series: log(x) = 2 * sum t^(2k+1)/(2k+1). */
FunctionId
buildLog(Module &mod)
{
    Function &fn = mod.addFunction("Math.log", Type::F64);
    fn.setIntrinsic(Intrinsic::Log);
    ValueId x = fn.addParam(Type::F64, "x");
    IRBuilder b(fn);
    b.startBlock();

    ValueId one = b.constFloat(1.0);
    ValueId num = b.binop(Opcode::FSub, x, one);
    ValueId den = b.binop(Opcode::FAdd, x, one);
    ValueId t = b.binop(Opcode::FDiv, num, den);
    ValueId t2 = b.binop(Opcode::FMul, t, t);

    ValueId sum = fn.addLocal(Type::F64, "sum");
    ValueId pow = fn.addLocal(Type::F64, "pow");
    b.move(sum, t);
    b.move(pow, t);

    ValueId k = fn.addLocal(Type::I32, "k");
    ValueId kStart = b.constInt(1);
    ValueId kLimit = b.constInt(12);
    CountedLoop loop(b, k, kStart, kLimit);
    {
        ValueId p2 = b.binop(Opcode::FMul, pow, t2);
        b.move(pow, p2);
        ValueId two = b.constInt(2);
        ValueId twoK = b.binop(Opcode::IMul, k, two);
        ValueId oneC = b.constInt(1);
        ValueId denomI = b.binop(Opcode::IAdd, twoK, oneC);
        ValueId denomF = b.unop(Opcode::I2F, denomI, Type::F64);
        ValueId frac = b.binop(Opcode::FDiv, pow, denomF);
        ValueId s2 = b.binop(Opcode::FAdd, sum, frac);
        b.move(sum, s2);
    }
    loop.close();

    ValueId twoF = b.constFloat(2.0);
    ValueId result = b.binop(Opcode::FMul, sum, twoF);
    b.ret(result);
    return fn.id();
}

/** sqrt(x) by six Newton iterations (never used: FSqrt is universal). */
FunctionId
buildSqrt(Module &mod)
{
    Function &fn = mod.addFunction("Math.sqrt", Type::F64);
    fn.setIntrinsic(Intrinsic::Sqrt);
    ValueId x = fn.addParam(Type::F64, "x");
    IRBuilder b(fn);
    b.startBlock();

    ValueId g = fn.addLocal(Type::F64, "g");
    ValueId half = b.constFloat(0.5);
    ValueId one = b.constFloat(1.0);
    ValueId init = b.binop(Opcode::FMul,
                           b.binop(Opcode::FAdd, x, one), half);
    b.move(g, init);
    ValueId k = fn.addLocal(Type::I32, "k");
    ValueId kStart = b.constInt(0);
    ValueId kLimit = b.constInt(6);
    CountedLoop loop(b, k, kStart, kLimit);
    {
        ValueId q = b.binop(Opcode::FDiv, x, g);
        ValueId s = b.binop(Opcode::FAdd, g, q);
        ValueId g2 = b.binop(Opcode::FMul, s, half);
        b.move(g, g2);
    }
    loop.close();
    b.ret(g);
    return fn.id();
}

} // namespace

MathFunctions
addMathFunctions(Module &mod)
{
    MathFunctions fns;
    fns.exp = buildExp(mod);
    fns.sin = buildSinCos(mod, true);
    fns.cos = buildSinCos(mod, false);
    fns.log = buildLog(mod);
    fns.sqrt = buildSqrt(mod);
    return fns;
}

ValueId
emitLcgStep(IRBuilder &b, ValueId seed)
{
    ValueId mul = b.constInt(1103515245);
    ValueId add = b.constInt(12345);
    ValueId mask = b.constInt(0x3fffffff);
    ValueId t1 = b.binop(Opcode::IMul, seed, mul);
    ValueId t2 = b.binop(Opcode::IAdd, t1, add);
    return b.binop(Opcode::IAnd, t2, mask);
}

} // namespace trapjit
