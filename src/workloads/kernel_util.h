#ifndef TRAPJIT_WORKLOADS_KERNEL_UTIL_H_
#define TRAPJIT_WORKLOADS_KERNEL_UTIL_H_

/**
 * @file
 * Shared building blocks for the synthetic kernels.
 *
 * CountedLoop emits the do-while shape (`body; i++; if (i<n) goto body`)
 * that hot benchmark loops compile to — the body executes at least once
 * per entry, which is exactly the anticipation property the backward
 * motion analyses need to hoist checks in front of the loop.
 *
 * addMathFunctions defines java.lang.Math-like functions as real IR
 * (argument-reduced Taylor series): on targets with the native
 * instruction the inliner replaces calls with FExp/FSin/...; on others
 * the call stays opaque and acts as an optimization barrier, the
 * Section 5.4 PowerPC situation.
 */

#include "ir/builder.h"
#include "ir/module.h"

namespace trapjit
{

/**
 * A do-while counted loop: `i = start; do { ...body... i += step; }
 * while (i < limit);`.
 *
 * Usage:
 *     CountedLoop loop(b, i, start, limit);   // opens the body block
 *     ... emit the body with b ...
 *     loop.close();                           // b is now at the exit
 */
class CountedLoop
{
  public:
    /**
     * @param b       builder, positioned in the block before the loop
     * @param i       I32 local used as the counter (assigned start)
     * @param start   initial counter value
     * @param limit   loop continues while i < limit
     */
    CountedLoop(IRBuilder &b, ValueId i, ValueId start, ValueId limit,
                int64_t step = 1);

    /** The body block (the loop header). */
    BasicBlock &body() { return *body_; }

    /** Emit the increment and back edge; positions the builder at exit. */
    void close();

  private:
    IRBuilder &b_;
    ValueId i_;
    ValueId limit_;
    int64_t step_;
    BasicBlock *body_ = nullptr;
    BasicBlock *exit_ = nullptr;
    bool closed_ = false;
};

/** Handles to the runtime math functions of a module. */
struct MathFunctions
{
    FunctionId exp = kNoFunction;
    FunctionId sin = kNoFunction;
    FunctionId cos = kNoFunction;
    FunctionId log = kNoFunction;
    FunctionId sqrt = kNoFunction;
};

/**
 * Add Math.exp/sin/cos/log/sqrt as IR functions tagged with their
 * intrinsic identity.
 */
MathFunctions addMathFunctions(Module &mod);

/**
 * Emit `dst = (seed * 1103515245 + 12345) & 0x3fffffff` — the classic
 * LCG step used to fill arrays deterministically.  Returns the new seed
 * temp.
 */
ValueId emitLcgStep(IRBuilder &b, ValueId seed);

} // namespace trapjit

#endif // TRAPJIT_WORKLOADS_KERNEL_UTIL_H_
