/**
 * @file
 * The seven SPECjvm98-like programs (Table 2 / Figures 9, 11, 15).
 *
 * Shapes follow the paper's per-benchmark analysis:
 *  - mtrt: tiny accessor methods with early-out branches, called in the
 *    hot loop; after devirtualization + inlining they leave the
 *    Figure 1 explicit checks that only phase 2 can push onto traps;
 *  - jess/javac: polymorphic object graphs (CHA cannot devirtualize),
 *    many small methods — javac is deliberately the largest module so
 *    it dominates compile time as in Table 3;
 *  - compress: tight hash-loop whose indices change every iteration
 *    (nothing to hoist; the trap conversion is the whole win);
 *  - db: dominated by a polymorphic comparison call per record;
 *  - mpegaudio: windowed FIR filters over f64 arrays;
 *  - jack: token scanning with per-token allocation (allocation is a
 *    side-effect barrier, limiting motion).
 */

#include "workloads/workload.h"

#include "workloads/kernel_util.h"

namespace trapjit
{

namespace
{

void
emitMix(IRBuilder &b, ValueId chk, ValueId v)
{
    ValueId c31 = b.constInt(31);
    ValueId mask = b.constInt(0x7fffffff);
    ValueId t1 = b.binop(Opcode::IMul, chk, c31);
    ValueId t2 = b.binop(Opcode::IAdd, t1, v);
    ValueId t3 = b.binop(Opcode::IAnd, t2, mask);
    b.move(chk, t3);
}

// ---------------------------------------------------------------------
// mtrt: ray/sphere intersection with accessor methods.
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildMtrt()
{
    auto mod = std::make_unique<Module>();

    ClassId sphereCls = mod->addClass("Sphere");
    int64_t offX = mod->addField(sphereCls, "x", Type::F64);
    int64_t offY = mod->addField(sphereCls, "y", Type::F64);
    int64_t offR2 = mod->addField(sphereCls, "r2", Type::F64);
    int64_t offHits = mod->addField(sphereCls, "hits", Type::I32);
    int64_t sphereSize = mod->cls(sphereCls).instanceSize;

    // double Sphere.centerX(): monomorphic accessor.
    Function &getX = mod->addFunction("Sphere.centerX", Type::F64, true);
    {
        ValueId self = getX.addParam(Type::Ref, "this", sphereCls);
        IRBuilder gb(getX);
        gb.startBlock();
        ValueId v = gb.getField(self, offX, Type::F64);
        gb.ret(v);
    }
    Function &getY = mod->addFunction("Sphere.centerY", Type::F64, true);
    {
        ValueId self = getY.addParam(Type::Ref, "this", sphereCls);
        IRBuilder gb(getY);
        gb.startBlock();
        ValueId v = gb.getField(self, offY, Type::F64);
        gb.ret(v);
    }

    // int Sphere.hit(px, py): the Figure 1 shape — a branch before the
    // receiver's slots are touched, so the devirtualized call needs an
    // explicit check that only phase 2 can optimize.
    Function &hit = mod->addFunction("Sphere.hit", Type::I32, true);
    {
        ValueId self = hit.addParam(Type::Ref, "this", sphereCls);
        ValueId px = hit.addParam(Type::F64, "px");
        ValueId py = hit.addParam(Type::F64, "py");
        IRBuilder hb(hit);
        hb.startBlock();
        // Early out on a pure-argument test: no slot of `this` touched.
        BasicBlock &fastOut = hit.newBlock();
        BasicBlock &test = hit.newBlock();
        ValueId zero = hb.constFloat(0.0);
        ValueId neg = hb.cmp(Opcode::FCmp, CmpPred::LT, px, zero);
        hb.branch(neg, fastOut, test);

        hb.atEnd(fastOut);
        ValueId zeroI = hb.constInt(0);
        hb.ret(zeroI);

        hb.atEnd(test);
        ValueId cx = hb.callVirtual(0, {self}, Type::F64); // centerX
        ValueId cy = hb.callVirtual(1, {self}, Type::F64); // centerY
        ValueId dx = hb.binop(Opcode::FSub, px, cx);
        ValueId dy = hb.binop(Opcode::FSub, py, cy);
        ValueId dx2 = hb.binop(Opcode::FMul, dx, dx);
        ValueId dy2 = hb.binop(Opcode::FMul, dy, dy);
        ValueId d2 = hb.binop(Opcode::FAdd, dx2, dy2);
        ValueId r2 = hb.getField(self, offR2, Type::F64);
        BasicBlock &isHit = hit.newBlock();
        BasicBlock &isMiss = hit.newBlock();
        ValueId inside = hb.cmp(Opcode::FCmp, CmpPred::LE, d2, r2);
        hb.branch(inside, isHit, isMiss);
        hb.atEnd(isHit);
        ValueId hits = hb.getField(self, offHits, Type::I32);
        ValueId oneI = hb.constInt(1);
        ValueId hits1 = hb.binop(Opcode::IAdd, hits, oneI);
        hb.putField(self, offHits, hits1);
        hb.ret(oneI);
        hb.atEnd(isMiss);
        ValueId zeroI2 = hb.constInt(0);
        hb.ret(zeroI2);
    }

    uint32_t slotX = mod->addVirtualMethod(sphereCls, getX.id());
    uint32_t slotY = mod->addVirtualMethod(sphereCls, getY.id());
    uint32_t slotHit = mod->addVirtualMethod(sphereCls, hit.id());
    (void)slotX;
    (void)slotY;

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();

    const int64_t SPHERES = 12;
    const int64_t RAYS = 250;
    ValueId nSph = b.constInt(SPHERES);
    ValueId scene = b.newArray(nSph, Type::Ref, sphereCls);

    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(321));
    {
        ValueId i = fn.addLocal(Type::I32, "i");
        ValueId scale = b.constFloat(1.0 / (1 << 26));
        CountedLoop setup(b, i, b.constInt(0), nSph);
        ValueId s = b.newObject(sphereCls, sphereSize);
        ValueId next = emitLcgStep(b, seed);
        b.move(seed, next);
        ValueId f = b.unop(Opcode::I2F, next, Type::F64);
        ValueId x = b.binop(Opcode::FMul, f, scale);
        b.putField(s, offX, x);
        ValueId next2 = emitLcgStep(b, seed);
        b.move(seed, next2);
        ValueId f2 = b.unop(Opcode::I2F, next2, Type::F64);
        ValueId y = b.binop(Opcode::FMul, f2, scale);
        b.putField(s, offY, y);
        ValueId r2c = b.constFloat(36.0);
        b.putField(s, offR2, r2c);
        b.arrayStore(scene, i, s, Type::Ref);
        setup.close();
    }

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(53));
    ValueId ray = fn.addLocal(Type::I32, "ray");
    CountedLoop rays(b, ray, b.constInt(0), b.constInt(RAYS));
    {
        ValueId rf = b.unop(Opcode::I2F, ray, Type::F64);
        ValueId step = b.constFloat(0.05);
        ValueId px = b.binop(Opcode::FMul, rf, step);
        ValueId off = b.constFloat(1.5);
        ValueId py = b.binop(Opcode::FSub, px, off);

        ValueId s = fn.addLocal(Type::I32, "s");
        CountedLoop spheres(b, s, b.constInt(0), nSph);
        {
            ValueId sph = fn.addLocal(Type::Ref, "sph", sphereCls);
            ValueId sv = b.arrayLoad(scene, s, Type::Ref);
            b.move(sph, sv);
            ValueId got = b.callVirtual(slotHit, {sph, px, py}, Type::I32);
            emitMix(b, chk, got);
        }
        spheres.close();
    }
    rays.close();
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// jess: polymorphic rule nodes walked as a linked list.
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildJess()
{
    auto mod = std::make_unique<Module>();
    ClassId baseCls = mod->addClass("RuleNode");
    int64_t offVal = mod->addField(baseCls, "val", Type::I32);
    int64_t offNext = mod->addField(baseCls, "next", Type::Ref);
    int64_t baseSize = mod->cls(baseCls).instanceSize;

    // Two overriding eval() implementations -> not devirtualizable.
    Function &evalA = mod->addFunction("AlphaNode.eval", Type::I32, true);
    {
        ValueId self = evalA.addParam(Type::Ref, "this", baseCls);
        ValueId x = evalA.addParam(Type::I32, "x");
        IRBuilder eb(evalA);
        eb.startBlock();
        ValueId v = eb.getField(self, offVal, Type::I32);
        ValueId sum = eb.binop(Opcode::IAdd, v, x);
        ValueId c = eb.constInt(3);
        ValueId r = eb.binop(Opcode::IMul, sum, c);
        eb.ret(r);
    }
    Function &evalB = mod->addFunction("BetaNode.eval", Type::I32, true);
    {
        ValueId self = evalB.addParam(Type::Ref, "this", baseCls);
        ValueId x = evalB.addParam(Type::I32, "x");
        IRBuilder eb(evalB);
        eb.startBlock();
        ValueId v = eb.getField(self, offVal, Type::I32);
        ValueId r = eb.binop(Opcode::IXor, v, x);
        eb.ret(r);
    }

    uint32_t slotEval = mod->addVirtualMethod(baseCls, kNoFunction);
    ClassId alphaCls = mod->addClass("AlphaNode", baseCls);
    ClassId betaCls = mod->addClass("BetaNode", baseCls);
    mod->overrideMethod(alphaCls, slotEval, evalA.id());
    mod->overrideMethod(betaCls, slotEval, evalB.id());

    // int jess_run(RuleNode head, int rounds, int chk): walk the list
    // `rounds` times, dispatching eval() through the vtable.
    Function &runFn = mod->addFunction("jess_run", Type::I32);
    runFn.setNeverInline(true);
    {
        ValueId head = runFn.addParam(Type::Ref, "head", baseCls);
        ValueId rounds = runFn.addParam(Type::I32, "rounds");
        ValueId chk0 = runFn.addParam(Type::I32, "chk0");
        IRBuilder rb(runFn);
        rb.startBlock();
        ValueId chk = runFn.addLocal(Type::I32, "chk");
        rb.move(chk, chk0);
        ValueId r = runFn.addLocal(Type::I32, "r");
        CountedLoop loop(rb, r, rb.constInt(0), rounds);
        {
            ValueId cur = runFn.addLocal(Type::Ref, "cur", baseCls);
            rb.move(cur, head);
            BasicBlock &test = runFn.newBlock();
            BasicBlock &body = runFn.newBlock();
            BasicBlock &done = runFn.newBlock();
            rb.jump(test);
            rb.atEnd(test);
            rb.ifNull(cur, done, body);
            rb.atEnd(body);
            ValueId got = rb.callVirtual(slotEval, {cur, chk}, Type::I32);
            ValueId mask = rb.constInt(0x7fffffff);
            ValueId masked = rb.binop(Opcode::IAnd, got, mask);
            rb.move(chk, masked);
            ValueId nxt = rb.getField(cur, offNext, Type::Ref);
            rb.move(cur, nxt);
            rb.jump(test);
            rb.atEnd(done);
        }
        loop.close();
        rb.ret(chk);
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();

    const int64_t NODES = 48;
    const int64_t ROUNDS = 120;

    // Build the list back to front, alternating classes.
    ValueId head = fn.addLocal(Type::Ref, "head", baseCls);
    ValueId nullRef = b.constNull(baseCls);
    b.move(head, nullRef);
    {
        ValueId i = fn.addLocal(Type::I32, "i");
        CountedLoop setup(b, i, b.constInt(0), b.constInt(NODES));
        ValueId parity = b.binop(Opcode::IAnd, i, b.constInt(1));
        BasicBlock &mkAlpha = fn.newBlock();
        BasicBlock &mkBeta = fn.newBlock();
        BasicBlock &link = fn.newBlock();
        ValueId node = fn.addLocal(Type::Ref, "node", baseCls);
        ValueId isOdd =
            b.cmp(Opcode::ICmp, CmpPred::NE, parity, b.constInt(0));
        b.branch(isOdd, mkBeta, mkAlpha);
        b.atEnd(mkAlpha);
        ValueId na = b.newObject(alphaCls, baseSize);
        b.move(node, na);
        b.jump(link);
        b.atEnd(mkBeta);
        ValueId nb = b.newObject(betaCls, baseSize);
        b.move(node, nb);
        b.jump(link);
        b.atEnd(link);
        b.putField(node, offVal, i);
        b.putField(node, offNext, head);
        b.move(head, node);
        setup.close();
    }

    ValueId rounds = b.constInt(ROUNDS);
    ValueId chk0 = b.constInt(59);
    ValueId chk = b.callStatic(runFn.id(), {head, rounds, chk0},
                               Type::I32);
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// compress: LZW-flavored hash loop; indices change every iteration.
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildCompress()
{
    auto mod = std::make_unique<Module>();
    const int64_t N = 2400;
    const int64_t H = 512;

    // int comp_run(int[] input, int[] table, int[] output, int chk0).
    Function &runFn = mod->addFunction("comp_run", Type::I32);
    runFn.setNeverInline(true);
    {
        ValueId input = runFn.addParam(Type::Ref, "input");
        ValueId table = runFn.addParam(Type::Ref, "table");
        ValueId output = runFn.addParam(Type::Ref, "output");
        ValueId chk0 = runFn.addParam(Type::I32, "chk0");
        ValueId n = runFn.addParam(Type::I32, "n");
        IRBuilder rb(runFn);
        rb.startBlock();
        ValueId chk = runFn.addLocal(Type::I32, "chk");
        rb.move(chk, chk0);
        ValueId prev = runFn.addLocal(Type::I32, "prev");
        rb.move(prev, rb.constInt(0));
        ValueId count = runFn.addLocal(Type::I32, "count");
        rb.move(count, rb.constInt(0));
        ValueId hMask = rb.constInt(H - 1);
        ValueId c31 = rb.constInt(31);

        ValueId i = runFn.addLocal(Type::I32, "i");
        CountedLoop loop(rb, i, rb.constInt(0), n);
        {
            ValueId x = rb.arrayLoad(input, i, Type::I32);
            ValueId t1 = rb.binop(Opcode::IMul, prev, c31);
            ValueId t2 = rb.binop(Opcode::IAdd, t1, x);
            ValueId h = rb.binop(Opcode::IAnd, t2, hMask);
            ValueId entry = rb.arrayLoad(table, h, Type::I32);

            BasicBlock &hitB = runFn.newBlock();
            BasicBlock &missB = runFn.newBlock();
            BasicBlock &join = runFn.newBlock();
            ValueId same = rb.cmp(Opcode::ICmp, CmpPred::EQ, entry, x);
            rb.branch(same, hitB, missB);
            rb.atEnd(hitB);
            emitMix(rb, chk, h);
            rb.jump(join);
            rb.atEnd(missB);
            rb.arrayStore(table, h, x, Type::I32);
            rb.arrayStore(output, count, x, Type::I32);
            ValueId c1 = rb.binop(Opcode::IAdd, count, rb.constInt(1));
            rb.move(count, c1);
            rb.jump(join);
            rb.atEnd(join);
            rb.move(prev, x);
        }
        loop.close();
        emitMix(rb, chk, count);
        rb.ret(chk);
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();

    ValueId n = b.constInt(N);
    ValueId input = b.newArray(n, Type::I32);
    ValueId table = b.newArray(b.constInt(H), Type::I32);
    ValueId output = b.newArray(n, Type::I32);

    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(888));
    {
        ValueId i = fn.addLocal(Type::I32);
        ValueId byteMask = b.constInt(255);
        CountedLoop fill(b, i, b.constInt(0), n);
        ValueId next = emitLcgStep(b, seed);
        b.move(seed, next);
        ValueId byteV = b.binop(Opcode::IAnd, next, byteMask);
        b.arrayStore(input, i, byteV, Type::I32);
        fill.close();
    }

    ValueId chk0 = b.constInt(61);
    ValueId chk = b.callStatic(runFn.id(), {input, table, output, chk0, n},
                               Type::I32);
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// db: record scans dominated by a polymorphic comparison method.
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildDb()
{
    auto mod = std::make_unique<Module>();
    ClassId recCls = mod->addClass("Record");
    int64_t offKey = mod->addField(recCls, "key", Type::I32);
    int64_t offVal = mod->addField(recCls, "val", Type::I32);
    int64_t recSize = mod->cls(recCls).instanceSize;

    // Two comparator classes: polymorphic, never inlined.
    ClassId cmpBase = mod->addClass("Comparator");
    int64_t cmpSize = mod->cls(cmpBase).instanceSize;
    Function &cmpAsc = mod->addFunction("Asc.compare", Type::I32, true);
    {
        ValueId self = cmpAsc.addParam(Type::Ref, "this", cmpBase);
        (void)self;
        ValueId a = cmpAsc.addParam(Type::I32, "a");
        ValueId c = cmpAsc.addParam(Type::I32, "c");
        IRBuilder cb(cmpAsc);
        cb.startBlock();
        ValueId d = cb.binop(Opcode::ISub, a, c);
        cb.ret(d);
    }
    Function &cmpDesc = mod->addFunction("Desc.compare", Type::I32, true);
    {
        ValueId self = cmpDesc.addParam(Type::Ref, "this", cmpBase);
        (void)self;
        ValueId a = cmpDesc.addParam(Type::I32, "a");
        ValueId c = cmpDesc.addParam(Type::I32, "c");
        IRBuilder cb(cmpDesc);
        cb.startBlock();
        ValueId d = cb.binop(Opcode::ISub, c, a);
        cb.ret(d);
    }
    uint32_t slotCmp = mod->addVirtualMethod(cmpBase, kNoFunction);
    ClassId ascCls = mod->addClass("Asc", cmpBase);
    ClassId descCls = mod->addClass("Desc", cmpBase);
    mod->overrideMethod(ascCls, slotCmp, cmpAsc.id());
    mod->overrideMethod(descCls, slotCmp, cmpDesc.id());

    // int db_scan(Record[] recs, Comparator cmp, int target): best val.
    Function &scanFn = mod->addFunction("db_scan", Type::I32);
    scanFn.setNeverInline(true);
    {
        ValueId recs = scanFn.addParam(Type::Ref, "recs");
        ValueId cmp = scanFn.addParam(Type::Ref, "cmp", cmpBase);
        ValueId target = scanFn.addParam(Type::I32, "target");
        ValueId n = scanFn.addParam(Type::I32, "n");
        IRBuilder rb(scanFn);
        rb.startBlock();
        ValueId best = scanFn.addLocal(Type::I32, "best");
        rb.move(best, rb.constInt(-1));
        ValueId i = scanFn.addLocal(Type::I32, "i");
        CountedLoop scan(rb, i, rb.constInt(0), n);
        {
            ValueId rec = rb.arrayLoad(recs, i, Type::Ref);
            ValueId key = rb.getField(rec, offKey, Type::I32);
            ValueId d = rb.callVirtual(slotCmp, {cmp, key, target},
                                       Type::I32);
            BasicBlock &better = scanFn.newBlock();
            BasicBlock &keep = scanFn.newBlock();
            ValueId lt = rb.cmp(Opcode::ICmp, CmpPred::LT, d,
                                rb.constInt(0));
            rb.branch(lt, better, keep);
            rb.atEnd(better);
            ValueId val = rb.getField(rec, offVal, Type::I32);
            rb.move(best, val);
            rb.jump(keep);
            rb.atEnd(keep);
        }
        scan.close();
        rb.ret(best);
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();

    const int64_t RECORDS = 96;
    const int64_t QUERIES = 120;
    ValueId nRec = b.constInt(RECORDS);
    ValueId recs = b.newArray(nRec, Type::Ref, recCls);
    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(2718));
    {
        ValueId i = fn.addLocal(Type::I32);
        CountedLoop setup(b, i, b.constInt(0), nRec);
        ValueId rec = b.newObject(recCls, recSize);
        ValueId next = emitLcgStep(b, seed);
        b.move(seed, next);
        ValueId key = b.binop(Opcode::IRem, next, b.constInt(4096));
        b.putField(rec, offKey, key);
        b.putField(rec, offVal, i);
        b.arrayStore(recs, i, rec, Type::Ref);
        setup.close();
    }
    ValueId asc = b.newObject(ascCls, cmpSize);
    ValueId desc = b.newObject(descCls, cmpSize);

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(67));
    ValueId q = fn.addLocal(Type::I32, "q");
    CountedLoop queries(b, q, b.constInt(0), b.constInt(QUERIES));
    {
        ValueId next = emitLcgStep(b, seed);
        b.move(seed, next);
        ValueId target = b.binop(Opcode::IRem, next, b.constInt(4096));
        ValueId parity = b.binop(Opcode::IAnd, q, b.constInt(1));

        ValueId cmp = fn.addLocal(Type::Ref, "cmp", cmpBase);
        BasicBlock &useAsc = fn.newBlock();
        BasicBlock &useDesc = fn.newBlock();
        BasicBlock &scanB = fn.newBlock();
        ValueId odd =
            b.cmp(Opcode::ICmp, CmpPred::NE, parity, b.constInt(0));
        b.branch(odd, useDesc, useAsc);
        b.atEnd(useAsc);
        b.move(cmp, asc);
        b.jump(scanB);
        b.atEnd(useDesc);
        b.move(cmp, desc);
        b.jump(scanB);
        b.atEnd(scanB);

        ValueId best = b.callStatic(scanFn.id(),
                                    {recs, cmp, target, nRec},
                                    Type::I32);
        emitMix(b, chk, best);
    }
    queries.close();
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// mpegaudio: windowed FIR filters over f64 arrays.
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildMpegaudio()
{
    auto mod = std::make_unique<Module>();
    const int64_t N = 768;
    const int64_t W = 24;

    // void mp_fir(double[] data, double[] window, double[] out).
    Function &firFn = mod->addFunction("mp_fir", Type::Void);
    firFn.setNeverInline(true);
    {
        ValueId data = firFn.addParam(Type::Ref, "data");
        ValueId window = firFn.addParam(Type::Ref, "window");
        ValueId out = firFn.addParam(Type::Ref, "out");
        ValueId n = firFn.addParam(Type::I32, "n");
        ValueId w = firFn.addParam(Type::I32, "w");
        IRBuilder rb(firFn);
        rb.startBlock();
        ValueId limit = rb.binop(Opcode::ISub, n, w);
        ValueId i = firFn.addLocal(Type::I32, "i");
        CountedLoop outer(rb, i, rb.constInt(0), limit);
        {
            ValueId acc = firFn.addLocal(Type::F64, "acc");
            rb.move(acc, rb.constFloat(0.0));
            ValueId j = firFn.addLocal(Type::I32, "j");
            CountedLoop inner(rb, j, rb.constInt(0), w);
            {
                ValueId wj = rb.arrayLoad(window, j, Type::F64);
                ValueId idx = rb.binop(Opcode::IAdd, i, j);
                ValueId dv = rb.arrayLoad(data, idx, Type::F64);
                ValueId prod = rb.binop(Opcode::FMul, wj, dv);
                ValueId a2 = rb.binop(Opcode::FAdd, acc, prod);
                rb.move(acc, a2);
            }
            inner.close();
            rb.arrayStore(out, i, acc, Type::F64);
        }
        outer.close();
        rb.ret();
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();

    ValueId n = b.constInt(N);
    ValueId w = b.constInt(W);
    ValueId data = b.newArray(n, Type::F64);
    ValueId window = b.newArray(w, Type::F64);
    ValueId out = b.newArray(n, Type::F64);

    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(606));
    {
        ValueId i = fn.addLocal(Type::I32);
        ValueId scale = b.constFloat(1.0 / (1 << 30));
        CountedLoop fill(b, i, b.constInt(0), n);
        ValueId next = emitLcgStep(b, seed);
        b.move(seed, next);
        ValueId f = b.unop(Opcode::I2F, next, Type::F64);
        ValueId v = b.binop(Opcode::FMul, f, scale);
        b.arrayStore(data, i, v, Type::F64);
        fill.close();
    }
    {
        ValueId i = fn.addLocal(Type::I32);
        ValueId scale = b.constFloat(1.0 / W);
        CountedLoop fill(b, i, b.constInt(0), w);
        ValueId f = b.unop(Opcode::I2F, i, Type::F64);
        ValueId v = b.binop(Opcode::FMul, f, scale);
        b.arrayStore(window, i, v, Type::F64);
        fill.close();
    }

    ValueId limit = b.binop(Opcode::ISub, n, w);
    b.callStatic(firFn.id(), {data, window, out, n, w}, Type::Void);

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(71));
    ValueId k = fn.addLocal(Type::I32);
    ValueId thousand = b.constFloat(1000.0);
    CountedLoop probe(b, k, b.constInt(0), limit, 41);
    ValueId ov = b.arrayLoad(out, k, Type::F64);
    ValueId scaled = b.binop(Opcode::FMul, ov, thousand);
    ValueId iv = b.unop(Opcode::F2I, scaled, Type::I32);
    emitMix(b, chk, iv);
    probe.close();
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// jack: token scanning with per-token object allocation.
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildJack()
{
    auto mod = std::make_unique<Module>();
    ClassId tokCls = mod->addClass("Token");
    int64_t offKind = mod->addField(tokCls, "kind", Type::I32);
    int64_t offLen = mod->addField(tokCls, "len", Type::I32);
    int64_t tokSize = mod->cls(tokCls).instanceSize;

    const int64_t N = 1600;

    // int jack_tokenize(int[] input, int chk0): scan runs, allocating a
    // Token per run (allocation in the loop = a motion barrier).
    Function &tokFn = mod->addFunction("jack_tokenize", Type::I32);
    tokFn.setNeverInline(true);
    {
        ValueId input = tokFn.addParam(Type::Ref, "input");
        ValueId chk0 = tokFn.addParam(Type::I32, "chk0");
        ValueId n = tokFn.addParam(Type::I32, "n");
        IRBuilder rb(tokFn);
        rb.startBlock();
        ValueId chk = tokFn.addLocal(Type::I32, "chk");
        rb.move(chk, chk0);
        ValueId pos = tokFn.addLocal(Type::I32, "pos");
        rb.move(pos, rb.constInt(0));

        BasicBlock &test = tokFn.newBlock();
        BasicBlock &body = tokFn.newBlock();
        BasicBlock &done = tokFn.newBlock();
        rb.jump(test);
        rb.atEnd(test);
        ValueId more = rb.cmp(Opcode::ICmp, CmpPred::LT, pos, n);
        rb.branch(more, body, done);

        rb.atEnd(body);
        {
            ValueId first = rb.arrayLoad(input, pos, Type::I32);
            ValueId len = tokFn.addLocal(Type::I32, "len");
            rb.move(len, rb.constInt(1));

            BasicBlock &scanTest = tokFn.newBlock();
            BasicBlock &scanMore = tokFn.newBlock();
            BasicBlock &scanBody = tokFn.newBlock();
            BasicBlock &scanDone = tokFn.newBlock();
            rb.jump(scanTest);
            rb.atEnd(scanTest);
            ValueId nxtIdx = rb.binop(Opcode::IAdd, pos, len);
            ValueId inRange = rb.cmp(Opcode::ICmp, CmpPred::LT, nxtIdx, n);
            rb.branch(inRange, scanMore, scanDone);
            rb.atEnd(scanMore);
            ValueId c = rb.arrayLoad(input, nxtIdx, Type::I32);
            ValueId same = rb.cmp(Opcode::ICmp, CmpPred::EQ, c, first);
            rb.branch(same, scanBody, scanDone);
            rb.atEnd(scanBody);
            ValueId l1 = rb.binop(Opcode::IAdd, len, rb.constInt(1));
            rb.move(len, l1);
            rb.jump(scanTest);
            rb.atEnd(scanDone);

            ValueId tok = rb.newObject(tokCls, tokSize);
            rb.putField(tok, offKind, first);
            rb.putField(tok, offLen, len);
            ValueId kind = rb.getField(tok, offKind, Type::I32);
            ValueId tl = rb.getField(tok, offLen, Type::I32);
            emitMix(rb, chk, kind);
            emitMix(rb, chk, tl);
            ValueId p1 = rb.binop(Opcode::IAdd, pos, len);
            rb.move(pos, p1);
            rb.jump(test);
        }
        rb.atEnd(done);
        rb.ret(chk);
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();

    ValueId n = b.constInt(N);
    ValueId input = b.newArray(n, Type::I32);
    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(505));
    {
        ValueId i = fn.addLocal(Type::I32);
        ValueId mask = b.constInt(15);
        CountedLoop fill(b, i, b.constInt(0), n);
        ValueId next = emitLcgStep(b, seed);
        b.move(seed, next);
        ValueId cls = b.binop(Opcode::IAnd, next, mask);
        b.arrayStore(input, i, cls, Type::I32);
        fill.close();
    }

    ValueId chk0 = b.constInt(73);
    ValueId chk = b.callStatic(tokFn.id(), {input, chk0, n}, Type::I32);
    b.ret(chk);
    return mod;
}

// ---------------------------------------------------------------------
// javac: many small methods over a little expression tree — by far the
// biggest module, so it dominates compile time (Table 3).
// ---------------------------------------------------------------------
std::unique_ptr<Module>
buildJavac()
{
    auto mod = std::make_unique<Module>();
    ClassId nodeCls = mod->addClass("AstNode");
    int64_t offOp = mod->addField(nodeCls, "op", Type::I32);
    int64_t offLhs = mod->addField(nodeCls, "lhs", Type::Ref);
    int64_t offRhs = mod->addField(nodeCls, "rhs", Type::Ref);
    int64_t offLit = mod->addField(nodeCls, "lit", Type::I32);
    int64_t nodeSize = mod->cls(nodeCls).instanceSize;

    // A pile of small helper functions, most of them only there to make
    // the compile-time workload realistic; some are hot.
    auto addBinHelper = [&](const char *name, Opcode op) {
        Function &h = mod->addFunction(name, Type::I32);
        ValueId a = h.addParam(Type::I32, "a");
        ValueId c = h.addParam(Type::I32, "c");
        IRBuilder hb(h);
        hb.startBlock();
        ValueId r = hb.binop(op, a, c);
        ValueId mask = hb.constInt(0xffffff);
        ValueId m = hb.binop(Opcode::IAnd, r, mask);
        hb.ret(m);
        return h.id();
    };
    FunctionId foldAdd = addBinHelper("fold.add", Opcode::IAdd);
    FunctionId foldSub = addBinHelper("fold.sub", Opcode::ISub);
    FunctionId foldMul = addBinHelper("fold.mul", Opcode::IMul);
    FunctionId foldXor = addBinHelper("fold.xor", Opcode::IXor);
    FunctionId foldAnd = addBinHelper("fold.and", Opcode::IAnd);
    FunctionId foldOr = addBinHelper("fold.or", Opcode::IOr);

    // int eval(AstNode n): recursive interpreter over the tree.
    Function &eval = mod->addFunction("eval", Type::I32);
    {
        ValueId node = eval.addParam(Type::Ref, "n", nodeCls);
        IRBuilder eb(eval);
        eb.startBlock();
        ValueId op = eb.getField(node, offOp, Type::I32);
        BasicBlock &leaf = eval.newBlock();
        BasicBlock &binop = eval.newBlock();
        ValueId isLeaf =
            eb.cmp(Opcode::ICmp, CmpPred::EQ, op, eb.constInt(0));
        eb.branch(isLeaf, leaf, binop);

        eb.atEnd(leaf);
        ValueId lit = eb.getField(node, offLit, Type::I32);
        eb.ret(lit);

        eb.atEnd(binop);
        ValueId lhs = eb.getField(node, offLhs, Type::Ref);
        ValueId rhs = eb.getField(node, offRhs, Type::Ref);
        ValueId lv = eb.callStatic(eval.id(), {lhs}, Type::I32);
        ValueId rv = eb.callStatic(eval.id(), {rhs}, Type::I32);
        BasicBlock &doAdd = eval.newBlock();
        BasicBlock &other = eval.newBlock();
        ValueId isAdd =
            eb.cmp(Opcode::ICmp, CmpPred::EQ, op, eb.constInt(1));
        eb.branch(isAdd, doAdd, other);
        eb.atEnd(doAdd);
        ValueId s = eb.callStatic(foldAdd, {lv, rv}, Type::I32);
        eb.ret(s);
        eb.atEnd(other);
        BasicBlock &doMul = eval.newBlock();
        BasicBlock &doXor = eval.newBlock();
        ValueId isMul =
            eb.cmp(Opcode::ICmp, CmpPred::EQ, op, eb.constInt(2));
        eb.branch(isMul, doMul, doXor);
        eb.atEnd(doMul);
        ValueId m = eb.callStatic(foldMul, {lv, rv}, Type::I32);
        eb.ret(m);
        eb.atEnd(doXor);
        ValueId x = eb.callStatic(foldXor, {lv, rv}, Type::I32);
        eb.ret(x);
    }

    // Padding: more never-hot utility functions to inflate compile time
    // realistically (javac has hundreds of methods).
    for (int pad = 0; pad < 10; ++pad) {
        Function &p = mod->addFunction("util" + std::to_string(pad),
                                       Type::I32);
        ValueId a = p.addParam(Type::I32, "a");
        IRBuilder pb(p);
        pb.startBlock();
        ValueId acc = p.addLocal(Type::I32, "acc");
        pb.move(acc, a);
        ValueId i = p.addLocal(Type::I32, "i");
        CountedLoop loop(pb, i, pb.constInt(0), pb.constInt(8));
        ValueId c1 = pb.callStatic(pad % 2 ? foldSub : foldAnd,
                                   {acc, i}, Type::I32);
        ValueId c2 = pb.callStatic(pad % 3 ? foldOr : foldXor,
                                   {c1, a}, Type::I32);
        pb.move(acc, c2);
        loop.close();
        pb.ret(acc);
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();

    // Build a random binary tree of depth 6 in an array-backed pool,
    // then evaluate it repeatedly.
    const int64_t POOL = 127;
    const int64_t ROUNDS = 60;
    ValueId pool = b.newArray(b.constInt(POOL), Type::Ref, nodeCls);
    ValueId seed = fn.addLocal(Type::I32, "seed");
    b.move(seed, b.constInt(9090));
    {
        // Leaves at indices [63, 127), internal nodes below.
        ValueId i = fn.addLocal(Type::I32, "i");
        CountedLoop mk(b, i, b.constInt(0), b.constInt(POOL));
        ValueId node = b.newObject(nodeCls, nodeSize);
        b.arrayStore(pool, i, node, Type::Ref);
        ValueId next = emitLcgStep(b, seed);
        b.move(seed, next);
        BasicBlock &isLeafB = fn.newBlock();
        BasicBlock &isOpB = fn.newBlock();
        BasicBlock &after = fn.newBlock();
        ValueId c63 = b.constInt(63);
        ValueId leafP = b.cmp(Opcode::ICmp, CmpPred::GE, i, c63);
        b.branch(leafP, isLeafB, isOpB);
        b.atEnd(isLeafB);
        ValueId zero = b.constInt(0);
        b.putField(node, offOp, zero);
        ValueId lit = b.binop(Opcode::IRem, next, b.constInt(100));
        b.putField(node, offLit, lit);
        b.jump(after);
        b.atEnd(isOpB);
        ValueId op3 = b.binop(Opcode::IRem, next, b.constInt(3));
        ValueId op = b.binop(Opcode::IAdd, op3, b.constInt(1));
        b.putField(node, offOp, op);
        b.jump(after);
        b.atEnd(after);
        mk.close();

        // Wire children: node[i].lhs = node[2i+1], rhs = node[2i+2].
        ValueId j = fn.addLocal(Type::I32, "j");
        CountedLoop wire(b, j, b.constInt(0), b.constInt(63));
        ValueId j2 = b.binop(Opcode::IMul, j, b.constInt(2));
        ValueId li = b.binop(Opcode::IAdd, j2, b.constInt(1));
        ValueId ri = b.binop(Opcode::IAdd, j2, b.constInt(2));
        ValueId parent = b.arrayLoad(pool, j, Type::Ref);
        ValueId lc = b.arrayLoad(pool, li, Type::Ref);
        ValueId rc = b.arrayLoad(pool, ri, Type::Ref);
        b.putField(parent, offLhs, lc);
        b.putField(parent, offRhs, rc);
        wire.close();
    }

    ValueId chk = fn.addLocal(Type::I32, "chk");
    b.move(chk, b.constInt(79));
    ValueId root = b.arrayLoad(pool, b.constInt(0), Type::Ref);
    ValueId r = fn.addLocal(Type::I32, "r");
    CountedLoop rounds(b, r, b.constInt(0), b.constInt(ROUNDS));
    ValueId v = b.callStatic(eval.id(), {root}, Type::I32);
    emitMix(b, chk, v);
    rounds.close();
    b.ret(chk);
    return mod;
}

} // namespace

const std::vector<Workload> &
specjvmWorkloads()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> list;
        auto add = [&list](const char *name, auto builder) {
            Workload w;
            w.name = name;
            w.suite = "specjvm98";
            w.build = builder;
            // SPECjvm98 reports seconds; cycles / (600 MHz) with a
            // per-benchmark repetition factor folded into indexScale.
            w.indexScale = 600.0e6;
            list.push_back(std::move(w));
        };
        add("mtrt", buildMtrt);
        add("jess", buildJess);
        add("compress", buildCompress);
        add("db", buildDb);
        add("mpegaudio", buildMpegaudio);
        add("jack", buildJack);
        add("javac", buildJavac);
        return list;
    }();
    return workloads;
}

} // namespace trapjit
