#include "workloads/workload.h"

#include "support/diagnostics.h"

namespace trapjit
{

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : jbytemarkWorkloads())
        if (w.name == name)
            return &w;
    for (const Workload &w : specjvmWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

WorkloadRun
runWorkload(const Workload &workload, const Compiler &compiler,
            const Target &runtime_target, bool record_trace,
            std::shared_ptr<DecodedProgramCache> decoded_cache)
{
    WorkloadRun run;
    std::unique_ptr<Module> mod = workload.build();
    run.compile = compiler.compile(*mod);

    FunctionId entry = mod->findFunction("main");
    TRAPJIT_ASSERT(entry != kNoFunction, "workload ", workload.name,
                   " has no main");

    InterpOptions options;
    options.recordTrace = record_trace;
    ExecResult result;
    if (interpEngineFromEnv() == InterpEngineKind::Reference) {
        Interpreter interp(*mod, runtime_target, options);
        result = interp.run(entry, {});
    } else {
        FastInterpreter interp(*mod, runtime_target, options,
                               std::move(decoded_cache));
        result = interp.run(entry, {});
    }

    run.stats = result.stats;
    run.cycles = result.stats.cycles;
    if (result.outcome == ExecResult::Outcome::Returned) {
        run.ok = true;
        run.checksum = result.value.i;
    } else {
        run.ok = false;
        run.exception = result.exception;
    }
    return run;
}

} // namespace trapjit
