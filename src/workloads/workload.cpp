#include "workloads/workload.h"

#include "codegen/native/tiered_engine.h"
#include "support/diagnostics.h"

namespace trapjit
{

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : jbytemarkWorkloads())
        if (w.name == name)
            return &w;
    for (const Workload &w : specjvmWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

WorkloadRun
runWorkload(const Workload &workload, const Compiler &compiler,
            const Target &runtime_target, bool record_trace,
            std::shared_ptr<DecodedProgramCache> decoded_cache,
            std::shared_ptr<NativeCodeCache> native_cache)
{
    WorkloadRun run;
    std::unique_ptr<Module> mod = workload.build();
    run.compile = compiler.compile(*mod);

    FunctionId entry = mod->findFunction("main");
    TRAPJIT_ASSERT(entry != kNoFunction, "workload ", workload.name,
                   " has no main");

    InterpOptions options;
    options.recordTrace = record_trace;
    ExecResult result;
    ServiceCounters tiering;
    switch (interpEngineFromEnv()) {
      case InterpEngineKind::Reference: {
        Interpreter interp(*mod, runtime_target, options);
        result = interp.run(entry, {});
        break;
      }
      case InterpEngineKind::Native: {
        // Per-function fallback inside the engine keeps this valid on
        // hosts without the native tier (it degrades to fast).
        NativeEngine engine(*mod, runtime_target, options,
                            std::move(decoded_cache), DecodeOptions{},
                            std::move(native_cache));
        result = engine.run(entry, {});
        // No-ops under the baseline backend; under
        // TRAPJIT_NATIVE_BACKEND=optimized this surfaces the regalloc
        // and speculation counters in the same ServiceCounters slot
        // the tiered engine reports through.
        engine.addOptimizedCounters(tiering);
        break;
      }
      case InterpEngineKind::Tiered: {
        // Hotness-driven promotion with the env-configured policy
        // (TRAPJIT_TIER_THRESHOLD / TRAPJIT_TIER_SYNC); also valid on
        // hosts without the native tier (promotions park Unsupported
        // and everything stays interpreted).
        TieredEngine engine(*mod, runtime_target, options,
                            std::move(decoded_cache), DecodeOptions{},
                            tieredOptionsFromEnv());
        result = engine.run(entry, {});
        engine.drainPromotions();
        engine.addTieringCounters(tiering);
        break;
      }
      default: {
        FastInterpreter interp(*mod, runtime_target, options,
                               std::move(decoded_cache));
        result = interp.run(entry, {});
        break;
      }
    }

    run.stats = result.stats;
    run.tiering = tiering;
    run.cycles = result.stats.cycles;
    if (result.outcome == ExecResult::Outcome::Returned) {
        run.ok = true;
        run.checksum = result.value.i;
    } else {
        run.ok = false;
        run.exception = result.exception;
    }
    return run;
}

} // namespace trapjit
