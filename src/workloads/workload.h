#ifndef TRAPJIT_WORKLOADS_WORKLOAD_H_
#define TRAPJIT_WORKLOADS_WORKLOAD_H_

/**
 * @file
 * Synthetic benchmark programs standing in for jBYTEmark v0.9 and
 * SPECjvm98.
 *
 * Each workload builds a fresh IR module whose `main` function allocates
 * its data, runs the kernel, and returns an integer checksum.  The
 * kernels are written to have the *memory-access shape* the paper
 * attributes to the corresponding benchmark (multidimensional arrays for
 * Assignment / Neural Net / LU Decomposition, inlined tiny accessors for
 * mtrt, tight scalar loops for compress/IDEA, and so on), because those
 * shapes are what make each benchmark respond to each optimization
 * phase.  See DESIGN.md section 4 for the substitution rationale.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/target.h"
#include "codegen/native/native_engine.h"
#include "interp/fast_interpreter.h"
#include "interp/interpreter.h"
#include "ir/module.h"
#include "jit/compiler.h"
#include "jit/stats.h"

namespace trapjit
{

/** One synthetic benchmark program. */
struct Workload
{
    std::string name;
    std::string suite; ///< "jbytemark" or "specjvm98"

    /** Build a fresh, unoptimized module; entry point is "main". */
    std::function<std::unique_ptr<Module>()> build;

    /**
     * Scale factor turning simulated cycles into a jBYTEmark-style index
     * (score = indexScale / cycles) or a SPECjvm98-style time in seconds
     * (time = cycles / clockHz).
     */
    double indexScale = 1.0e9;
};

/** The ten jBYTEmark-like kernels. */
const std::vector<Workload> &jbytemarkWorkloads();

/** The seven SPECjvm98-like programs. */
const std::vector<Workload> &specjvmWorkloads();

/** Find a workload by name in both suites; nullptr if absent. */
const Workload *findWorkload(const std::string &name);

/** Result of compiling and executing one workload under one config. */
struct WorkloadRun
{
    bool ok = false;          ///< returned normally
    int64_t checksum = 0;     ///< main's return value
    double cycles = 0.0;      ///< simulated cycles
    ExecStats stats;          ///< dynamic counters
    CompileReport compile;    ///< where the compile time went
    ExcKind exception = ExcKind::None;

    /** Tier-up accounting (promotions, links, patches); only filled
     *  when TRAPJIT_INTERP=tiered ran the workload. */
    ServiceCounters tiering;
};

/**
 * Build, compile (under @p compiler) and execute @p workload on
 * @p runtime_target (the honest machine model — may differ from the
 * compiler's target in the Illegal Implicit experiment).
 *
 * Execution uses the pre-decoded fast engine unless TRAPJIT_INTERP
 * selects the reference interpreter or the native x86-64 tier (see
 * interpEngineFromEnv()); the engines are differentially tested to be
 * bit-identical on everything but the simulated cycle count (which the
 * native tier does not model), so every bench harness reproduces the
 * same numbers under any engine.  Pass @p decoded_cache (e.g.
 * CompileService::decodedCache()) to reuse decodes across runs, and
 * @p native_cache (CompileService::nativeCodeCache()) to reuse native
 * code when the native engine is selected.
 */
WorkloadRun runWorkload(const Workload &workload, const Compiler &compiler,
                        const Target &runtime_target,
                        bool record_trace = false,
                        std::shared_ptr<DecodedProgramCache> decoded_cache =
                            nullptr,
                        std::shared_ptr<NativeCodeCache> native_cache =
                            nullptr);

} // namespace trapjit

#endif // TRAPJIT_WORKLOADS_WORKLOAD_H_
