/**
 * @file
 * Unit tests of the analyses: orderings, dominators, loops, preheader
 * creation, the generic dataflow solver, and liveness.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/dataflow.h"
#include "analysis/dominators.h"
#include "analysis/liveness.h"
#include "analysis/loops.h"
#include "analysis/rpo.h"
#include "ir/builder.h"
#include "ir/module.h"

namespace trapjit
{
namespace
{

/** Build a diamond: 0 -> {1, 2} -> 3. */
std::unique_ptr<Module>
makeDiamond(Function **out)
{
    auto mod = std::make_unique<Module>();
    Function &fn = mod->addFunction("diamond", Type::Void);
    ValueId cond = fn.addParam(Type::I32, "c");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &left = fn.newBlock();
    BasicBlock &right = fn.newBlock();
    BasicBlock &join = fn.newBlock();
    b.atEnd(entry);
    b.branch(cond, left, right);
    b.atEnd(left);
    b.jump(join);
    b.atEnd(right);
    b.jump(join);
    b.atEnd(join);
    b.ret();
    fn.recomputeCFG();
    *out = &fn;
    return mod;
}

/** Build a do-while loop: 0 -> 1 (body) -> {1, 2}. */
std::unique_ptr<Module>
makeLoop(Function **out)
{
    auto mod = std::make_unique<Module>();
    Function &fn = mod->addFunction("loop", Type::Void);
    ValueId n = fn.addParam(Type::I32, "n");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &body = fn.newBlock();
    BasicBlock &exit = fn.newBlock();
    b.atEnd(entry);
    b.jump(body);
    b.atEnd(body);
    ValueId zero = b.constInt(0);
    ValueId more = b.cmp(Opcode::ICmp, CmpPred::GT, n, zero);
    b.branch(more, body, exit);
    b.atEnd(exit);
    b.ret();
    fn.recomputeCFG();
    *out = &fn;
    return mod;
}

TEST(Rpo, DiamondOrder)
{
    Function *fn;
    auto mod = makeDiamond(&fn);
    std::vector<BlockId> rpo = reversePostorder(*fn);
    ASSERT_EQ(4u, rpo.size());
    EXPECT_EQ(0u, rpo.front());
    EXPECT_EQ(3u, rpo.back());
}

TEST(Rpo, UnreachableBlocksExcluded)
{
    Function *fn;
    auto mod = makeDiamond(&fn);
    // Append an unreachable block.
    IRBuilder b(*fn);
    BasicBlock &orphan = fn->newBlock();
    b.atEnd(orphan);
    b.ret();
    fn->recomputeCFG();
    std::vector<bool> reach = reachableBlocks(*fn);
    EXPECT_FALSE(reach[orphan.id()]);
    auto rpo = reversePostorder(*fn);
    EXPECT_EQ(rpo.end(), std::find(rpo.begin(), rpo.end(), orphan.id()));
}

TEST(Dominators, Diamond)
{
    Function *fn;
    auto mod = makeDiamond(&fn);
    DominatorTree dom(*fn);
    EXPECT_TRUE(dom.dominates(0, 1));
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3)) << "join has two paths";
    EXPECT_EQ(0u, dom.idom(3));
    EXPECT_TRUE(dom.dominates(2, 2)) << "reflexive";
}

TEST(Loops, DetectsDoWhile)
{
    Function *fn;
    auto mod = makeLoop(&fn);
    DominatorTree dom(*fn);
    LoopForest forest(*fn, dom);
    ASSERT_EQ(1u, forest.loops().size());
    const Loop &loop = forest.loops()[0];
    EXPECT_EQ(1u, loop.header);
    EXPECT_TRUE(loop.contains(1));
    EXPECT_FALSE(loop.contains(0));
    EXPECT_FALSE(loop.contains(2));
    EXPECT_EQ(1, loop.depth);
    EXPECT_EQ(0, forest.innermostLoopOf(1));
    EXPECT_EQ(-1, forest.innermostLoopOf(0));
}

TEST(Loops, NestedDepths)
{
    Module mod;
    Function &fn = mod.addFunction("nested", Type::Void);
    ValueId n = fn.addParam(Type::I32, "n");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &outer = fn.newBlock();
    BasicBlock &inner = fn.newBlock();
    BasicBlock &latch = fn.newBlock();
    BasicBlock &exit = fn.newBlock();
    b.atEnd(entry);
    b.jump(outer);
    b.atEnd(outer);
    b.jump(inner);
    b.atEnd(inner);
    ValueId zero = b.constInt(0);
    ValueId c1 = b.cmp(Opcode::ICmp, CmpPred::GT, n, zero);
    b.branch(c1, inner, latch);
    b.atEnd(latch);
    ValueId c2 = b.cmp(Opcode::ICmp, CmpPred::LT, n, zero);
    b.branch(c2, outer, exit);
    b.atEnd(exit);
    b.ret();
    fn.recomputeCFG();

    DominatorTree dom(fn);
    LoopForest forest(fn, dom);
    ASSERT_EQ(2u, forest.loops().size());
    int innerIdx = forest.innermostLoopOf(inner.id());
    ASSERT_GE(innerIdx, 0);
    EXPECT_EQ(2, forest.loops()[innerIdx].depth);
}

TEST(Loops, EnsurePreheaderCreatesOne)
{
    Function *fn;
    auto mod = makeLoop(&fn);
    DominatorTree dom(*fn);
    LoopForest forest(*fn, dom);
    const Loop loop = forest.loops()[0];

    // The entry block ends in a plain jump, so it already qualifies.
    BlockId pre1 = ensurePreheader(*fn, loop);
    EXPECT_EQ(0u, pre1);

    // Retarget the entry to branch into the loop from two places so a
    // new preheader must be created.
    Function &f = *fn;
    IRBuilder b(f);
    BasicBlock &alt = f.newBlock();
    b.atEnd(alt);
    b.jump(f.block(loop.header));
    Instruction &term = f.entry().terminator();
    term.op = Opcode::Branch;
    term.a = 0; // param n
    term.imm = loop.header;
    term.imm2 = alt.id();
    f.recomputeCFG();

    DominatorTree dom2(f);
    LoopForest forest2(f, dom2);
    const Loop loop2 = forest2.loops()[0];
    size_t before = f.numBlocks();
    BlockId pre2 = ensurePreheader(f, loop2);
    EXPECT_EQ(before, static_cast<size_t>(pre2));
    EXPECT_EQ(before + 1, f.numBlocks());
    // All outside preds now reach the header through the preheader.
    for (BlockId pred : f.block(loop2.header).preds()) {
        bool inLoop = loop2.contains(pred);
        EXPECT_TRUE(inLoop || pred == pre2);
    }
}

TEST(Dataflow, ForwardIntersectReachesFixpointOnLoop)
{
    Function *fn;
    auto mod = makeLoop(&fn);
    // A fact gen'd in the entry and never killed must hold everywhere.
    DataflowSpec spec;
    spec.direction = DataflowSpec::Direction::Forward;
    spec.confluence = DataflowSpec::Confluence::Intersect;
    spec.numFacts = 1;
    spec.gen.assign(fn->numBlocks(), BitSet(1));
    spec.kill.assign(fn->numBlocks(), BitSet(1));
    spec.gen[0].set(0);
    DataflowResult result = solveDataflow(*fn, spec);
    EXPECT_TRUE(result.in[1].test(0));
    EXPECT_TRUE(result.in[2].test(0));
}

TEST(Dataflow, EdgeKillStopsPropagation)
{
    Function *fn;
    auto mod = makeDiamond(&fn);
    DataflowSpec spec;
    spec.direction = DataflowSpec::Direction::Forward;
    spec.confluence = DataflowSpec::Confluence::Intersect;
    spec.numFacts = 1;
    spec.gen.assign(fn->numBlocks(), BitSet(1));
    spec.kill.assign(fn->numBlocks(), BitSet(1));
    spec.gen[0].set(0);
    BitSet all(1);
    all.setAll();
    spec.edgeKill[DataflowSpec::edgeKey(0, 1)] = all;
    DataflowResult result = solveDataflow(*fn, spec);
    EXPECT_FALSE(result.in[1].test(0)) << "killed on the edge";
    EXPECT_TRUE(result.in[2].test(0));
    EXPECT_FALSE(result.in[3].test(0)) << "intersection at the join";
}

TEST(Dataflow, EdgeAddInjectsFacts)
{
    Function *fn;
    auto mod = makeDiamond(&fn);
    DataflowSpec spec;
    spec.direction = DataflowSpec::Direction::Forward;
    spec.confluence = DataflowSpec::Confluence::Intersect;
    spec.numFacts = 1;
    spec.gen.assign(fn->numBlocks(), BitSet(1));
    spec.kill.assign(fn->numBlocks(), BitSet(1));
    BitSet one(1);
    one.set(0);
    spec.edgeAdd[DataflowSpec::edgeKey(0, 1)] = one;
    spec.edgeAdd[DataflowSpec::edgeKey(0, 2)] = one;
    DataflowResult result = solveDataflow(*fn, spec);
    EXPECT_TRUE(result.in[1].test(0));
    EXPECT_TRUE(result.in[2].test(0));
    EXPECT_TRUE(result.in[3].test(0)) << "present on both join inputs";
}

TEST(Dataflow, TryBoundaryKillsMergeWithExistingEdgeKills)
{
    Function *fn;
    auto mod = makeDiamond(&fn);
    // Put the left arm in a try region: edges 0->1 and 1->3 cross a
    // region boundary, edges 0->2 and 2->3 do not.
    TryRegionId region =
        fn->addTryRegion(/*handler=*/3, ExcKind::CatchAll);
    fn->block(1).setTryRegion(region);
    fn->recomputeCFG();

    DataflowSpec spec;
    spec.numFacts = 2;
    spec.gen.assign(fn->numBlocks(), BitSet(2));
    spec.kill.assign(fn->numBlocks(), BitSet(2));
    // Pre-register a *narrower* kill set on a boundary edge: the helper
    // must widen it and union in its own kills, not clobber it.
    BitSet narrow(1);
    narrow.set(0);
    spec.edgeKill[DataflowSpec::edgeKey(1, 3)] = narrow;
    addTryBoundaryKills(*fn, spec);

    const BitSet &merged = spec.edgeKill[DataflowSpec::edgeKey(1, 3)];
    EXPECT_EQ(2u, merged.size()) << "widened to the spec's fact count";
    EXPECT_TRUE(merged.test(0));
    EXPECT_TRUE(merged.test(1));
    EXPECT_TRUE(
        spec.edgeKill.count(DataflowSpec::edgeKey(0, 1)) > 0);
    EXPECT_EQ(0u, spec.edgeKill.count(DataflowSpec::edgeKey(0, 2)))
        << "edges inside one region are untouched";
}

TEST(Liveness, UseKeepsValueLiveAcrossBlocks)
{
    Module mod;
    Function &fn = mod.addFunction("l", Type::I32);
    ValueId p = fn.addParam(Type::I32, "p");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &next = fn.newBlock();
    b.atEnd(entry);
    ValueId t = b.binop(Opcode::IAdd, p, p);
    b.jump(next);
    b.atEnd(next);
    ValueId u = b.binop(Opcode::IAdd, t, t);
    b.ret(u);
    fn.recomputeCFG();

    DataflowResult live = solveLiveness(fn);
    EXPECT_TRUE(live.out[entry.id()].test(t));
    EXPECT_FALSE(live.in[entry.id()].test(t))
        << "defined before first use";
    EXPECT_TRUE(live.in[entry.id()].test(p));
}

} // namespace
} // namespace trapjit
