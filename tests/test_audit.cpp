/**
 * @file
 * Unit tests of the null-check soundness auditor on hand-built IR:
 * coverage edge cases the random sweeps only hit by luck (facts killed
 * on factored exception edges at try boundaries, back-edge-only
 * coverage that an optimistic solver must not certify, split-path
 * guards composed through a reference copy) plus the translation
 * validation obligations on minimal pre/post pairs.
 */

#include <gtest/gtest.h>

#include "analysis/audit/audit.h"
#include "arch/target.h"
#include "ir/builder.h"
#include "ir/module.h"
#include "ir/serializer.h"

namespace trapjit
{
namespace
{

Target ia32 = makeIA32WindowsTarget();

/** Raw (unguarded) field read of @p obj at @p offset. */
Instruction
rawGetField(Function &fn, ValueId obj, int64_t offset,
            bool exception_site = false)
{
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = obj;
    gf.imm = offset;
    gf.exceptionSite = exception_site;
    return gf;
}

// ---------------------------------------------------------------------
// Coverage: final whole-function audit
// ---------------------------------------------------------------------

TEST(AuditCoverage, DominatingCheckCoversDiamond)
{
    Module mod;
    Function &fn = mod.addFunction("diamond", Type::Void);
    ValueId o = fn.addParam(Type::Ref, "o");
    ValueId c = fn.addParam(Type::I32, "c");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &left = b.startBlock();
    BasicBlock &right = b.startBlock();
    BasicBlock &merge = b.startBlock();

    b.atEnd(entry);
    b.nullCheck(o);
    b.branch(c, left, right);
    b.atEnd(left);
    b.jump(merge);
    b.atEnd(right);
    b.jump(merge);
    b.atEnd(merge);
    b.emit(rawGetField(fn, o, 8));
    b.ret();
    fn.recomputeCFG();

    AuditReport report = auditFunction(fn, ia32);
    EXPECT_TRUE(report.clean()) << report.format();
}

TEST(AuditCoverage, BackEdgeOnlyCheckDoesNotCover)
{
    // The check sits on the loop's back edge, so the access at the loop
    // head runs unguarded on the first iteration.  An optimistic solver
    // that trusts its universal initial state would certify this; the
    // auditor must not.
    Module mod;
    Function &fn = mod.addFunction("loop", Type::Void);
    ValueId o = fn.addParam(Type::Ref, "o");
    ValueId c = fn.addParam(Type::I32, "c");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &head = b.startBlock();
    BasicBlock &body = b.startBlock();
    BasicBlock &exit = b.startBlock();

    b.atEnd(entry);
    b.jump(head);
    b.atEnd(head);
    b.emit(rawGetField(fn, o, 8));
    b.branch(c, body, exit);
    b.atEnd(body);
    b.nullCheck(o);
    b.jump(head);
    b.atEnd(exit);
    b.ret();
    fn.recomputeCFG();

    AuditReport report = auditFunction(fn, ia32);
    ASSERT_EQ(1u, report.errorCount()) << report.format();
    EXPECT_EQ(AuditObligation::Coverage, report.findings[0].obligation);
    EXPECT_EQ(o, report.findings[0].ref);

    // Hoisting the check above the loop covers every iteration.
    Module mod2;
    Function &fn2 = mod2.addFunction("loop2", Type::Void);
    ValueId o2 = fn2.addParam(Type::Ref, "o");
    ValueId c2 = fn2.addParam(Type::I32, "c");
    IRBuilder b2(fn2);
    BasicBlock &entry2 = b2.startBlock();
    BasicBlock &head2 = b2.startBlock();
    BasicBlock &body2 = b2.startBlock();
    BasicBlock &exit2 = b2.startBlock();
    b2.atEnd(entry2);
    b2.nullCheck(o2);
    b2.jump(head2);
    b2.atEnd(head2);
    b2.emit(rawGetField(fn2, o2, 8));
    b2.branch(c2, body2, exit2);
    b2.atEnd(body2);
    b2.jump(head2);
    b2.atEnd(exit2);
    b2.ret();
    fn2.recomputeCFG();
    EXPECT_TRUE(auditFunction(fn2, ia32).clean());
}

TEST(AuditCoverage, ExceptionEdgeKillsFactsAtTryBoundary)
{
    // A check established inside a try block must not cover an access
    // in the handler: the factored exception edge can be taken before
    // the check executed.
    auto build = [](bool recheckInHandler) {
        auto mod = std::make_unique<Module>();
        Function &fn = mod->addFunction("f", Type::Void);
        ValueId o = fn.addParam(Type::Ref, "o");
        IRBuilder b(fn);
        BasicBlock &entry = b.startBlock();
        BasicBlock &handler = b.startBlock();
        TryRegionId region =
            fn.addTryRegion(handler.id(), ExcKind::CatchAll);
        BasicBlock &body = b.startBlock(region);
        BasicBlock &exit = b.startBlock();

        b.atEnd(entry);
        b.jump(body);
        b.atEnd(body);
        b.nullCheck(o);
        b.emit(rawGetField(fn, o, 8));
        b.jump(exit);
        b.atEnd(handler);
        if (recheckInHandler)
            b.nullCheck(o);
        b.emit(rawGetField(fn, o, 8));
        b.jump(exit);
        b.atEnd(exit);
        b.ret();
        fn.recomputeCFG();
        return mod;
    };

    auto leaky = build(/*recheckInHandler=*/false);
    AuditReport report = auditFunction(leaky->function(0), ia32);
    ASSERT_EQ(1u, report.errorCount()) << report.format();
    EXPECT_EQ(AuditObligation::Coverage, report.findings[0].obligation);

    auto sound = build(/*recheckInHandler=*/true);
    EXPECT_TRUE(auditFunction(sound->function(0), ia32).clean());
}

TEST(AuditCoverage, SplitGuardComposesThroughReferenceCopy)
{
    // One path checks the copy directly, the other keeps the copy pair
    // live, and the merge is followed by a trap site on the copied-from
    // value.  Sound — the conditional fact `v == o OR v non-null`
    // survives the merge and the trap discharges it — and exactly the
    // shape copy propagation plus Phase 2 motion composes.
    auto build = [](bool trapSite) {
        auto mod = std::make_unique<Module>();
        Function &fn = mod->addFunction("f", Type::Void);
        ValueId o = fn.addParam(Type::Ref, "o");
        ValueId p = fn.addParam(Type::Ref, "p");
        ValueId c = fn.addParam(Type::I32, "c");
        ValueId v = fn.addLocal(Type::Ref, "v");
        IRBuilder b(fn);
        BasicBlock &entry = b.startBlock();
        BasicBlock &left = b.startBlock();
        BasicBlock &right = b.startBlock();
        BasicBlock &merge = b.startBlock();

        b.atEnd(entry);
        b.move(v, o);
        b.branch(c, left, right);
        b.atEnd(left);
        b.move(v, p);
        b.nullCheck(v);
        b.jump(merge);
        b.atEnd(right);
        b.jump(merge);
        b.atEnd(merge);
        b.emit(rawGetField(fn, o, 8, /*exception_site=*/trapSite));
        b.emit(rawGetField(fn, v, 8));
        b.ret();
        fn.recomputeCFG();
        return mod;
    };

    auto sound = build(/*trapSite=*/true);
    AuditReport report = auditFunction(sound->function(0), ia32);
    EXPECT_TRUE(report.clean()) << report.format();

    // Without the trap site neither access is covered.
    auto leaky = build(/*trapSite=*/false);
    EXPECT_GE(auditFunction(leaky->function(0), ia32).errorCount(), 1u);
}

// ---------------------------------------------------------------------
// Translation validation: auditTransformation on minimal pre/post pairs
// ---------------------------------------------------------------------
//
// Like the PassManager, the tests snapshot the pre state by
// serializing the function and then mutate the original in place:
// separately-built functions would get fresh site ids and trip the
// structure obligation instead of the one under test.

/** Serialize-round-trip copy of @p fn (the PassManager's snapshot). */
std::unique_ptr<Function>
snapshot(const Function &fn)
{
    return deserializeFunctionFromString(serializeFunctionToString(fn),
                                         fn.id());
}

TEST(AuditTransformation, HoistAboveSideEffectIsOrderingError)
{
    // constInt k; nullcheck q; putfield q.8 = k; nullcheck o;
    // getfield o.8; ret
    Module mod;
    Function &fn = mod.addFunction("f", Type::Void);
    ValueId o = fn.addParam(Type::Ref, "o");
    ValueId q = fn.addParam(Type::Ref, "q");
    IRBuilder b(fn);
    BasicBlock &bb = b.startBlock();
    ValueId k = b.constInt(7);
    b.nullCheck(q);
    Instruction pf;
    pf.op = Opcode::PutField;
    pf.a = q;
    pf.b = k;
    pf.imm = 8;
    b.emit(pf);
    b.nullCheck(o);
    b.emit(rawGetField(fn, o, 8));
    b.ret();
    fn.recomputeCFG();
    auto pre = snapshot(fn);

    // "Hoist" the check of o above the store: move inst 3 to index 2.
    Instruction check = bb.insts()[3];
    bb.insts().erase(bb.insts().begin() + 3);
    bb.insts().insert(bb.insts().begin() + 2, check);
    fn.recomputeCFG();

    AuditReport report =
        auditTransformation(*pre, fn, ia32, "test-pass");
    ASSERT_EQ(1u, report.errorCount()) << report.format();
    EXPECT_EQ(AuditObligation::Ordering, report.findings[0].obligation);
    EXPECT_EQ(o, report.findings[0].ref);

    // The mirror move is illegal too, under the other obligation:
    // sinking the check below the store delays the NPE past an
    // observable side effect, so at its old position the check is no
    // longer established or anticipated.
    AuditReport sunk = auditTransformation(fn, *pre, ia32, "test-pass");
    ASSERT_EQ(1u, sunk.errorCount()) << sunk.format();
    EXPECT_EQ(AuditObligation::Completeness, sunk.findings[0].obligation);
}

TEST(AuditTransformation, DroppedUnestablishedCheckIsCompletenessError)
{
    Module mod;
    Function &fn = mod.addFunction("f", Type::Void);
    ValueId o = fn.addParam(Type::Ref, "o");
    IRBuilder b(fn);
    BasicBlock &bb = b.startBlock();
    b.nullCheck(o);
    b.ret();
    fn.recomputeCFG();
    auto pre = snapshot(fn);

    // Drop the only check: nothing establishes or anticipates o at its
    // old position afterwards (the next instruction is the return).
    bb.insts().erase(bb.insts().begin());
    fn.recomputeCFG();

    AuditReport report =
        auditTransformation(*pre, fn, ia32, "test-pass");
    ASSERT_EQ(1u, report.errorCount()) << report.format();
    EXPECT_EQ(AuditObligation::Completeness,
              report.findings[0].obligation);
    EXPECT_EQ(o, report.findings[0].ref);
}

/** nullcheck o; getfield o.8; nullcheck o; getfield o.12; ret */
Function &
buildRedundantShape(Module &mod)
{
    Function &fn = mod.addFunction("f", Type::Void);
    ValueId o = fn.addParam(Type::Ref, "o");
    IRBuilder b(fn);
    b.startBlock();
    b.nullCheck(o);
    b.emit(rawGetField(fn, o, 8));
    b.nullCheck(o);
    b.emit(rawGetField(fn, o, 12));
    b.ret();
    fn.recomputeCFG();
    return fn;
}

TEST(AuditTransformation, EliminationOfCoveredCheckIsClean)
{
    Module mod;
    Function &fn = buildRedundantShape(mod);
    auto pre = snapshot(fn);

    // Eliminate the second (covered) check — the legal move.
    BasicBlock &bb = fn.block(0);
    bb.insts().erase(bb.insts().begin() + 2);
    fn.recomputeCFG();

    AuditOptions options;
    options.checkRedundancy = true;
    AuditReport report =
        auditTransformation(*pre, fn, ia32, "test-pass", options);
    EXPECT_TRUE(report.clean()) << report.format();
}

TEST(AuditTransformation, SurvivingRedundantCheckIsWarning)
{
    // An elimination pass that leaves the provably-redundant second
    // check in place draws the (warning-severity) redundancy finding.
    Module mod;
    Function &fn = buildRedundantShape(mod);
    AuditOptions options;
    options.checkRedundancy = true;
    AuditReport report =
        auditTransformation(fn, fn, ia32, "test-pass", options);
    ASSERT_EQ(1u, report.findings.size()) << report.format();
    EXPECT_EQ(AuditSeverity::Warning, report.findings[0].severity);
    EXPECT_EQ(AuditObligation::Redundancy,
              report.findings[0].obligation);
}

} // namespace
} // namespace trapjit
