/**
 * @file
 * Mutation harness for the null-check soundness auditor: each test arms
 * one deliberate bug in Phase 1 or Phase 2 (opt/nullcheck/mutation_hooks.h)
 * and asserts the auditor flags it on at least one random-program seed.
 * The auditor's value is exactly this — catching optimizer bugs the
 * moment they are introduced — so an undetected mutation means a blind
 * spot in the audit, not a tolerable miss.
 *
 * The compile runs through the sequential Compiler (not the service):
 * the mutation hook is thread-local, so the pass must execute on the
 * arming thread.
 */

#include <gtest/gtest.h>

#include "jit/compiler.h"
#include "opt/nullcheck/mutation_hooks.h"
#include "testing/random_program.h"

namespace trapjit
{
namespace
{

// The window is chosen so every mutation has at least one detecting
// seed inside it; the rarest (P2SubstIgnoresConsume, whose bug only
// bites when substitution crosses a consuming access) fires at seeds
// 111, 117 and 134 under the generator options below.
constexpr uint64_t kSeedBegin = 100;
constexpr uint64_t kSeedEnd = 140;

/** Compile seeds [kSeedBegin, kSeedEnd) with the auditor collecting. */
AuditReport
auditSweep(NullCheckMutation mutation)
{
    ScopedNullCheckMutation armed(mutation);
    Target target = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();
    config.audit = AuditMode::Collect;
    Compiler compiler(target, config);

    AuditReport all;
    for (uint64_t seed = kSeedBegin; seed < kSeedEnd; ++seed) {
        // Larger programs than the GeneratorOptions defaults: the subtler
        // bugs (a dropped redefinition kill, substitution across a
        // consuming access) only change the pass output when a reference
        // is redefined or re-checked mid-flow, and those shapes need
        // deeper nesting and longer bodies to appear within the seed
        // budget.
        GeneratorOptions opts;
        opts.seed = seed;
        opts.statementsPerFunction = 30;
        opts.numFunctions = 4;
        opts.maxDepth = 4;
        auto mod = generateRandomModule(opts);
        all += compiler.compile(*mod).audit;
    }
    return all;
}

/** Unmutated passes must be certified clean — no errors, no warnings. */
TEST(AuditMutations, BaselineIsClean)
{
    AuditReport report = auditSweep(NullCheckMutation::None);
    EXPECT_TRUE(report.clean()) << report.format();
}

class AuditMutationDetection
    : public ::testing::TestWithParam<NullCheckMutation>
{
};

TEST_P(AuditMutationDetection, AuditorFlagsTheSeededBug)
{
    AuditReport report = auditSweep(GetParam());
    EXPECT_FALSE(report.findings.empty())
        << "the auditor missed this mutation on every seed in ["
        << kSeedBegin << ", " << kSeedEnd << ")";
}

const NullCheckMutation kAllMutations[] = {
    NullCheckMutation::P1DropRedefKillBwd,
    NullCheckMutation::P1DropBarrierKillBwd,
    NullCheckMutation::P1DropTryBoundaryKills,
    NullCheckMutation::P1SkipEliminatedPrune,
    NullCheckMutation::P2DropBarrierMaterialize,
    NullCheckMutation::P2DropTryEdgeKills,
    NullCheckMutation::P2SkipOwnConsume,
    NullCheckMutation::P2SkipExceptionSiteMark,
    NullCheckMutation::P2MarkWithoutTrapCover,
    NullCheckMutation::P2SubstIgnoresConsume,
};

const char *
mutationName(const ::testing::TestParamInfo<NullCheckMutation> &info)
{
    switch (info.param) {
      case NullCheckMutation::None: return "None";
      case NullCheckMutation::P1DropRedefKillBwd:
        return "P1DropRedefKillBwd";
      case NullCheckMutation::P1DropBarrierKillBwd:
        return "P1DropBarrierKillBwd";
      case NullCheckMutation::P1DropTryBoundaryKills:
        return "P1DropTryBoundaryKills";
      case NullCheckMutation::P1SkipEliminatedPrune:
        return "P1SkipEliminatedPrune";
      case NullCheckMutation::P2DropBarrierMaterialize:
        return "P2DropBarrierMaterialize";
      case NullCheckMutation::P2DropTryEdgeKills:
        return "P2DropTryEdgeKills";
      case NullCheckMutation::P2SkipOwnConsume:
        return "P2SkipOwnConsume";
      case NullCheckMutation::P2SkipExceptionSiteMark:
        return "P2SkipExceptionSiteMark";
      case NullCheckMutation::P2MarkWithoutTrapCover:
        return "P2MarkWithoutTrapCover";
      case NullCheckMutation::P2SubstIgnoresConsume:
        return "P2SubstIgnoresConsume";
    }
    return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(AllTen, AuditMutationDetection,
                         ::testing::ValuesIn(kAllMutations),
                         mutationName);

} // namespace
} // namespace trapjit
