/**
 * @file
 * Mutation harness for the null-check soundness auditor: each test arms
 * one deliberate bug in Phase 1 or Phase 2 (opt/nullcheck/mutation_hooks.h)
 * and asserts the auditor flags it on at least one random-program seed.
 * The auditor's value is exactly this — catching optimizer bugs the
 * moment they are introduced — so an undetected mutation means a blind
 * spot in the audit, not a tolerable miss.
 *
 * The compile runs through the sequential Compiler (not the service):
 * the mutation hook is thread-local, so the pass must execute on the
 * arming thread.
 */

#include <gtest/gtest.h>

#include "analysis/audit/audit.h"
#include "codegen/native/native_compiler.h"
#include "codegen/native/native_mutation_hooks.h"
#include "interp/decoded_program.h"
#include "jit/compiler.h"
#include "opt/nullcheck/mutation_hooks.h"
#include "testing/random_program.h"

namespace trapjit
{
namespace
{

// The window is chosen so every mutation has at least one detecting
// seed inside it; the rarest (P2SubstIgnoresConsume, whose bug only
// bites when substitution crosses a consuming access) fires at seeds
// 111, 117 and 134 under the generator options below.
constexpr uint64_t kSeedBegin = 100;
constexpr uint64_t kSeedEnd = 140;

/** Compile seeds [kSeedBegin, kSeedEnd) with the auditor collecting. */
AuditReport
auditSweep(NullCheckMutation mutation)
{
    ScopedNullCheckMutation armed(mutation);
    Target target = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();
    config.audit = AuditMode::Collect;
    Compiler compiler(target, config);

    AuditReport all;
    for (uint64_t seed = kSeedBegin; seed < kSeedEnd; ++seed) {
        // Larger programs than the GeneratorOptions defaults: the subtler
        // bugs (a dropped redefinition kill, substitution across a
        // consuming access) only change the pass output when a reference
        // is redefined or re-checked mid-flow, and those shapes need
        // deeper nesting and longer bodies to appear within the seed
        // budget.
        GeneratorOptions opts;
        opts.seed = seed;
        opts.statementsPerFunction = 30;
        opts.numFunctions = 4;
        opts.maxDepth = 4;
        auto mod = generateRandomModule(opts);
        all += compiler.compile(*mod).audit;
    }
    return all;
}

/** Unmutated passes must be certified clean — no errors, no warnings. */
TEST(AuditMutations, BaselineIsClean)
{
    AuditReport report = auditSweep(NullCheckMutation::None);
    EXPECT_TRUE(report.clean()) << report.format();
}

class AuditMutationDetection
    : public ::testing::TestWithParam<NullCheckMutation>
{
};

TEST_P(AuditMutationDetection, AuditorFlagsTheSeededBug)
{
    AuditReport report = auditSweep(GetParam());
    EXPECT_FALSE(report.findings.empty())
        << "the auditor missed this mutation on every seed in ["
        << kSeedBegin << ", " << kSeedEnd << ")";
}

const NullCheckMutation kAllMutations[] = {
    NullCheckMutation::P1DropRedefKillBwd,
    NullCheckMutation::P1DropBarrierKillBwd,
    NullCheckMutation::P1DropTryBoundaryKills,
    NullCheckMutation::P1SkipEliminatedPrune,
    NullCheckMutation::P2DropBarrierMaterialize,
    NullCheckMutation::P2DropTryEdgeKills,
    NullCheckMutation::P2SkipOwnConsume,
    NullCheckMutation::P2SkipExceptionSiteMark,
    NullCheckMutation::P2MarkWithoutTrapCover,
    NullCheckMutation::P2SubstIgnoresConsume,
};

const char *
mutationName(const ::testing::TestParamInfo<NullCheckMutation> &info)
{
    switch (info.param) {
      case NullCheckMutation::None: return "None";
      case NullCheckMutation::P1DropRedefKillBwd:
        return "P1DropRedefKillBwd";
      case NullCheckMutation::P1DropBarrierKillBwd:
        return "P1DropBarrierKillBwd";
      case NullCheckMutation::P1DropTryBoundaryKills:
        return "P1DropTryBoundaryKills";
      case NullCheckMutation::P1SkipEliminatedPrune:
        return "P1SkipEliminatedPrune";
      case NullCheckMutation::P2DropBarrierMaterialize:
        return "P2DropBarrierMaterialize";
      case NullCheckMutation::P2DropTryEdgeKills:
        return "P2DropTryEdgeKills";
      case NullCheckMutation::P2SkipOwnConsume:
        return "P2SkipOwnConsume";
      case NullCheckMutation::P2SkipExceptionSiteMark:
        return "P2SkipExceptionSiteMark";
      case NullCheckMutation::P2MarkWithoutTrapCover:
        return "P2MarkWithoutTrapCover";
      case NullCheckMutation::P2SubstIgnoresConsume:
        return "P2SubstIgnoresConsume";
    }
    return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(AllTen, AuditMutationDetection,
                         ::testing::ValuesIn(kAllMutations),
                         mutationName);

// -----------------------------------------------------------------------
// Optimized native backend: the regalloc/speculation obligations of
// auditNativeTrapSites must catch deliberately corrupted install-time
// metadata (codegen/native/native_mutation_hooks.h).  The no-opt trap
// pipeline keeps checks explicit, which is what section-5.4 speculation
// pairs on, so these seeds produce plenty of speculated sites.
// -----------------------------------------------------------------------

struct NativeSweepResult
{
    AuditReport report;
    size_t compiles = 0;       ///< functions the backend accepted
    size_t mutationTargets = 0; ///< compiles the armed mutation could bite
};

/** Optimized-compile seeds [kSeedBegin, kSeedEnd), auditing each block. */
NativeSweepResult
nativeAuditSweep(NativeMutation mutation)
{
    ScopedNativeMutation armed(mutation);
    Target target = makeIA32WindowsTarget();
    Compiler compiler(target, makeNoOptTrapConfig());

    NativeCompileOptions nopts;
    nopts.optimized = true;
    nopts.speculate = true;

    NativeSweepResult result;
    for (uint64_t seed = kSeedBegin; seed < kSeedEnd; ++seed) {
        GeneratorOptions opts;
        opts.seed = seed;
        opts.statementsPerFunction = 30;
        opts.numFunctions = 4;
        opts.maxDepth = 4;
        auto mod = generateRandomModule(opts);
        compiler.compile(*mod);
        for (FunctionId f = 0; f < mod->numFunctions(); ++f) {
            const Function &fn = mod->function(f);
            auto df = decodeFunction(fn, target, {});
            NativeCompileResult res = compileNative(fn, *df, nopts);
            if (!res.code)
                continue;
            ++result.compiles;
            const bool bites =
                mutation == NativeMutation::RegLocReservedReg
                    ? !res.code->regLocs.empty()
                    : res.code->loadsSpeculated > 0;
            if (mutation != NativeMutation::None && bites)
                ++result.mutationTargets;
            result.report +=
                auditNativeTrapSites(fn, target, *df, *res.code);
        }
    }
    return result;
}

/** Unmutated optimized blocks must pass the grown audit clean. */
TEST(NativeAuditMutations, BaselineIsClean)
{
    if (!nativeTierSupported())
        GTEST_SKIP() << "native tier requires x86-64 Linux";
    NativeSweepResult result = nativeAuditSweep(NativeMutation::None);
    ASSERT_GT(result.compiles, 0u);
    EXPECT_TRUE(result.report.clean()) << result.report.format();
}

class NativeAuditMutationDetection
    : public ::testing::TestWithParam<NativeMutation>
{
};

TEST_P(NativeAuditMutationDetection, AuditorFlagsTheSeededBug)
{
    if (!nativeTierSupported())
        GTEST_SKIP() << "native tier requires x86-64 Linux";
    NativeSweepResult result = nativeAuditSweep(GetParam());
    ASSERT_GT(result.mutationTargets, 0u)
        << "no compile in the seed window produced metadata this "
           "mutation corrupts; widen the window";
    EXPECT_FALSE(result.report.findings.empty())
        << "the auditor missed this native-backend mutation on every "
           "seed in ["
        << kSeedBegin << ", " << kSeedEnd << ")";
}

const NativeMutation kAllNativeMutations[] = {
    NativeMutation::SpecWrongDeoptRecord,
    NativeMutation::SpecDropFlag,
    NativeMutation::RegLocReservedReg,
};

const char *
nativeMutationName(const ::testing::TestParamInfo<NativeMutation> &info)
{
    switch (info.param) {
      case NativeMutation::None: return "None";
      case NativeMutation::SpecWrongDeoptRecord:
        return "SpecWrongDeoptRecord";
      case NativeMutation::SpecDropFlag: return "SpecDropFlag";
      case NativeMutation::RegLocReservedReg:
        return "RegLocReservedReg";
    }
    return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(AllThree, NativeAuditMutationDetection,
                         ::testing::ValuesIn(kAllNativeMutations),
                         nativeMutationName);

} // namespace
} // namespace trapjit
