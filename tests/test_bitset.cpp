/**
 * @file
 * Unit tests of the dense bit set, the workhorse of every dataflow
 * analysis in the library.
 */

#include <gtest/gtest.h>

#include "support/bitset.h"

namespace trapjit
{
namespace
{

TEST(BitSet, StartsEmpty)
{
    BitSet set(100);
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(0u, set.count());
    for (size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(set.test(i));
}

TEST(BitSet, SetResetTest)
{
    BitSet set(130);
    set.set(0);
    set.set(64);
    set.set(129);
    EXPECT_TRUE(set.test(0));
    EXPECT_TRUE(set.test(64));
    EXPECT_TRUE(set.test(129));
    EXPECT_FALSE(set.test(1));
    EXPECT_EQ(3u, set.count());
    set.reset(64);
    EXPECT_FALSE(set.test(64));
    EXPECT_EQ(2u, set.count());
}

TEST(BitSet, SetAllRespectsUniverseSize)
{
    BitSet set(70);
    set.setAll();
    EXPECT_EQ(70u, set.count());
    set.clearAll();
    EXPECT_TRUE(set.empty());
}

TEST(BitSet, UnionReportsChange)
{
    BitSet a(64), b(64);
    b.set(3);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_FALSE(a.unionWith(b)); // already a superset
    EXPECT_TRUE(a.test(3));
}

TEST(BitSet, IntersectReportsChange)
{
    BitSet a(64), b(64);
    a.set(1);
    a.set(2);
    b.set(2);
    EXPECT_TRUE(a.intersectWith(b));
    EXPECT_FALSE(a.test(1));
    EXPECT_TRUE(a.test(2));
    EXPECT_FALSE(a.intersectWith(b));
}

TEST(BitSet, SubtractClearsOnlyListedBits)
{
    BitSet a(10), b(10);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);
    EXPECT_TRUE(a.subtract(b));
    EXPECT_TRUE(a.test(1));
    EXPECT_FALSE(a.test(2));
    EXPECT_FALSE(a.subtract(b));
}

TEST(BitSet, SubsetAndIntersects)
{
    BitSet a(10), b(10);
    a.set(4);
    b.set(4);
    b.set(7);
    EXPECT_TRUE(a.isSubsetOf(b));
    EXPECT_FALSE(b.isSubsetOf(a));
    EXPECT_TRUE(a.intersects(b));
    a.reset(4);
    EXPECT_FALSE(a.intersects(b));
    EXPECT_TRUE(a.isSubsetOf(b)); // empty set is a subset of anything
}

TEST(BitSet, ForEachVisitsInOrder)
{
    BitSet set(200);
    set.set(5);
    set.set(63);
    set.set(64);
    set.set(199);
    std::vector<size_t> seen;
    set.forEach([&](size_t idx) { seen.push_back(idx); });
    EXPECT_EQ((std::vector<size_t>{5, 63, 64, 199}), seen);
}

TEST(BitSet, EqualityIncludesUniverseSize)
{
    BitSet a(10), b(10), c(11);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    a.set(3);
    EXPECT_NE(a, b);
    b.set(3);
    EXPECT_EQ(a, b);
}

TEST(BitSet, ResizeKeepsLowBitsAndClearsTail)
{
    BitSet set(64);
    set.setAll();
    set.resize(32);
    EXPECT_EQ(32u, set.count());
    set.resize(64);
    EXPECT_EQ(32u, set.count()) << "grown bits must start cleared";
}

TEST(BitSet, AssignAndReport)
{
    BitSet a(130), b(130);
    b.set(0);
    b.set(129);
    EXPECT_TRUE(a.assignAndReport(b));
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.assignAndReport(b)) << "no-op assign must report false";
    b.reset(0);
    EXPECT_TRUE(a.assignAndReport(b)) << "bit removal is a change too";
    EXPECT_EQ(a, b);
}

TEST(BitSet, AssignAndSubtract)
{
    BitSet dst(130), a(130), b(130);
    dst.set(7); // stale content must be fully overwritten
    a.set(1);
    a.set(64);
    a.set(129);
    b.set(64);
    dst.assignAndSubtract(a, b);
    EXPECT_TRUE(dst.test(1));
    EXPECT_FALSE(dst.test(64));
    EXPECT_TRUE(dst.test(129));
    EXPECT_FALSE(dst.test(7));
    EXPECT_EQ(2u, dst.count());
}

TEST(BitSet, UnionWithAndReport)
{
    BitSet dst(70), a(70), b(70);
    a.set(3);
    b.set(69);
    EXPECT_TRUE(dst.unionWithAndReport(a, b));
    EXPECT_TRUE(dst.test(3));
    EXPECT_TRUE(dst.test(69));
    EXPECT_FALSE(dst.unionWithAndReport(a, b));
    dst.set(10); // dst is *assigned* a|b, so extra bits vanish
    EXPECT_TRUE(dst.unionWithAndReport(a, b));
    EXPECT_FALSE(dst.test(10));
}

TEST(BitSet, MeetIntoIntersect)
{
    BitSet a(64), b(64);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);
    EXPECT_TRUE(a.meetInto(b, /*intersect=*/true));
    EXPECT_FALSE(a.test(1));
    EXPECT_TRUE(a.test(2));
    EXPECT_FALSE(a.test(3));
    EXPECT_FALSE(a.meetInto(b, true));
}

TEST(BitSet, MeetIntoUnion)
{
    BitSet a(64), b(64);
    a.set(1);
    b.set(3);
    EXPECT_TRUE(a.meetInto(b, /*intersect=*/false));
    EXPECT_TRUE(a.test(1));
    EXPECT_TRUE(a.test(3));
    EXPECT_FALSE(a.meetInto(b, false));
}

TEST(BitSet, AssignTransferAndReport)
{
    // out = (meet & ~kill) | gen, reporting whether out changed.
    BitSet out(130), meet(130), kill(130), gen(130);
    meet.set(1);
    meet.set(64);
    kill.set(64);
    gen.set(129);
    EXPECT_TRUE(out.assignTransferAndReport(meet, kill, gen));
    EXPECT_TRUE(out.test(1));
    EXPECT_FALSE(out.test(64));
    EXPECT_TRUE(out.test(129));
    EXPECT_EQ(2u, out.count());
    EXPECT_FALSE(out.assignTransferAndReport(meet, kill, gen))
        << "fixed point must report no change";
    gen.set(64); // gen wins over kill, as in the classic equation
    EXPECT_TRUE(out.assignTransferAndReport(meet, kill, gen));
    EXPECT_TRUE(out.test(64));
}

TEST(BitSet, ToStringFormat)
{
    BitSet set(8);
    set.set(1);
    set.set(5);
    EXPECT_EQ("{1, 5}", set.toString());
    BitSet empty(8);
    EXPECT_EQ("{}", empty.toString());
}

} // namespace
} // namespace trapjit
