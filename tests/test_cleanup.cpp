/**
 * @file
 * Unit tests of the cleanup passes: local CSE (commoning), block-local
 * copy propagation, and liveness-based dead code elimination.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "ir/builder.h"
#include "ir/module.h"
#include "opt/copy_propagation.h"
#include "opt/dead_code.h"
#include "opt/local_cse.h"

namespace trapjit
{
namespace
{

Target ia32 = makeIA32WindowsTarget();

template <typename PassT>
bool
runPass(Function &fn)
{
    static Module dummy;
    fn.recomputeCFG();
    PassContext ctx{dummy, ia32, false};
    PassT pass;
    return pass.runOnFunction(fn, ctx);
}

size_t
countOp(const Function &fn, Opcode op)
{
    size_t n = 0;
    for (size_t b = 0; b < fn.numBlocks(); ++b)
        for (const Instruction &inst :
             fn.block(static_cast<BlockId>(b)).insts())
            if (inst.op == op)
                ++n;
    return n;
}

TEST(LocalCSE, UnifiesRepeatedArithmetic)
{
    Module mod;
    Function &fn = mod.addFunction("cse", Type::I32);
    ValueId x = fn.addParam(Type::I32, "x");
    ValueId y = fn.addParam(Type::I32, "y");
    IRBuilder b(fn);
    b.startBlock();
    ValueId s1 = b.binop(Opcode::IAdd, x, y);
    ValueId s2 = b.binop(Opcode::IAdd, x, y); // same expression
    ValueId p = b.binop(Opcode::IMul, s1, s2);
    b.ret(p);

    EXPECT_TRUE(runPass<LocalCSE>(fn));
    EXPECT_EQ(1u, countOp(fn, Opcode::IAdd));
    EXPECT_EQ(1u, countOp(fn, Opcode::Move)) << "replaced by a move";
}

TEST(LocalCSE, OperandRedefinitionInvalidates)
{
    Module mod;
    Function &fn = mod.addFunction("cse", Type::I32);
    ValueId x = fn.addParam(Type::I32, "x");
    ValueId y = fn.addParam(Type::I32, "y");
    IRBuilder b(fn);
    b.startBlock();
    ValueId loc = fn.addLocal(Type::I32, "l");
    b.move(loc, x);
    ValueId s1 = b.binop(Opcode::IAdd, loc, y);
    b.move(loc, y); // redefine an operand
    ValueId s2 = b.binop(Opcode::IAdd, loc, y);
    ValueId p = b.binop(Opcode::IMul, s1, s2);
    b.ret(p);

    runPass<LocalCSE>(fn);
    EXPECT_EQ(2u, countOp(fn, Opcode::IAdd)) << "not the same value";
}

TEST(LocalCSE, FieldReadInvalidatedByStoreButNotByArrayStore)
{
    Module mod;
    Function &fn = mod.addFunction("cse", Type::I32);
    ValueId o = fn.addParam(Type::Ref, "o");
    ValueId arr = fn.addParam(Type::Ref, "arr");
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v1 = b.getField(o, 8, Type::I32);
    // Type-based aliasing: an array element store cannot change a field.
    Instruction store;
    store.op = Opcode::ArrayStore;
    store.a = arr;
    store.b = x;
    store.c = x;
    store.elemType = Type::I32;
    b.emit(store);
    ValueId v2 = b.getField(o, 8, Type::I32); // still available
    // But a field store kills it.
    b.putField(o, 8, x);
    ValueId v3 = b.getField(o, 8, Type::I32);
    ValueId s = b.binop(Opcode::IAdd, v1, v2);
    ValueId s2 = b.binop(Opcode::IAdd, s, v3);
    b.ret(s2);

    runPass<LocalCSE>(fn);
    EXPECT_EQ(2u, countOp(fn, Opcode::GetField))
        << "v2 folded into v1, v3 reloaded after the putfield";
}

TEST(LocalCSE, ArrayLengthSurvivesCalls)
{
    Module mod;
    Function &callee = mod.addFunction("callee", Type::Void);
    {
        IRBuilder cb(callee);
        cb.startBlock();
        cb.ret();
    }
    Function &fn = mod.addFunction("cse", Type::I32);
    ValueId arr = fn.addParam(Type::Ref, "arr");
    IRBuilder b(fn);
    b.startBlock();
    ValueId l1 = b.arrayLength(arr);
    b.callStatic(callee.id(), {}, Type::Void);
    ValueId l2 = b.arrayLength(arr); // lengths are immutable
    ValueId s = b.binop(Opcode::IAdd, l1, l2);
    b.ret(s);

    runPass<LocalCSE>(fn);
    EXPECT_EQ(1u, countOp(fn, Opcode::ArrayLength));
}

TEST(LocalCSE, DifferentDestinationTypesDoNotUnify)
{
    Module mod;
    Function &fn = mod.addFunction("cse", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId c32 = b.constInt(5, Type::I32);
    ValueId c64 = b.constInt(5, Type::I64);
    ValueId narrowed = b.unop(Opcode::L2I, c64, Type::I32);
    ValueId sum = b.binop(Opcode::IAdd, c32, narrowed);
    b.ret(sum);

    runPass<LocalCSE>(fn);
    EXPECT_EQ(2u, countOp(fn, Opcode::ConstInt));
}

TEST(CopyProp, RewritesUsesWithinBlock)
{
    Module mod;
    Function &fn = mod.addFunction("cp", Type::I32);
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    ValueId loc = fn.addLocal(Type::I32, "l");
    b.move(loc, x);
    ValueId s = b.binop(Opcode::IAdd, loc, loc);
    b.ret(s);

    EXPECT_TRUE(runPass<CopyPropagation>(fn));
    const Instruction &add = fn.entry().insts()[1];
    EXPECT_EQ(Opcode::IAdd, add.op);
    EXPECT_EQ(x, add.a);
    EXPECT_EQ(x, add.b);
}

TEST(CopyProp, SourceRedefinitionInvalidatesMapping)
{
    Module mod;
    Function &fn = mod.addFunction("cp", Type::I32);
    ValueId x = fn.addParam(Type::I32, "x");
    ValueId y = fn.addParam(Type::I32, "y");
    IRBuilder b(fn);
    b.startBlock();
    ValueId src = fn.addLocal(Type::I32, "src");
    ValueId dst = fn.addLocal(Type::I32, "dst");
    b.move(src, x);
    b.move(dst, src);
    b.move(src, y); // src changes; dst must keep the old value
    ValueId s = b.binop(Opcode::IAdd, dst, src);
    b.ret(s);

    runPass<CopyPropagation>(fn);
    const Instruction &add = fn.entry().insts()[3];
    EXPECT_EQ(x, add.a) << "dst still denotes the pre-redefinition x";
    EXPECT_EQ(y, add.b);

    // And behavior is unchanged.
    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {RuntimeValue::ofInt(10),
                                        RuntimeValue::ofInt(32)});
    EXPECT_EQ(42, r.value.i);
}

TEST(DeadCode, RemovesUnusedPureInstructions)
{
    Module mod;
    Function &fn = mod.addFunction("dce", Type::I32);
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    ValueId dead = b.binop(Opcode::IMul, x, x); // never used
    (void)dead;
    ValueId live = b.binop(Opcode::IAdd, x, x);
    b.ret(live);

    EXPECT_TRUE(runPass<DeadCodeElimination>(fn));
    EXPECT_EQ(0u, countOp(fn, Opcode::IMul));
    EXPECT_EQ(1u, countOp(fn, Opcode::IAdd));
}

TEST(DeadCode, KeepsChecksAndSideEffects)
{
    Module mod;
    Function &fn = mod.addFunction("dce", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    ValueId unusedLoad = b.getField(a, 8, Type::I32); // check + load
    (void)unusedLoad;
    b.putField(a, 8, x); // store with its check
    b.ret(x);

    runPass<DeadCodeElimination>(fn);
    EXPECT_EQ(0u, countOp(fn, Opcode::GetField))
        << "an unobservable read is removable";
    EXPECT_GE(countOp(fn, Opcode::NullCheck), 1u)
        << "checks are exception semantics and must stay";
    EXPECT_EQ(1u, countOp(fn, Opcode::PutField));
}

TEST(DeadCode, KeepsMarkedExceptionSites)
{
    Module mod;
    Function &fn = mod.addFunction("dce", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = a;
    gf.imm = 8;
    gf.exceptionSite = true; // carries an implicit check
    b.emit(gf);
    b.ret(x);

    runPass<DeadCodeElimination>(fn);
    EXPECT_EQ(1u, countOp(fn, Opcode::GetField))
        << "the marked access IS the null check and must stay";
}

TEST(DeadCode, HandlerVisibleLocalsSurviveInTryRegions)
{
    // A local assigned before a throwing instruction in a try region is
    // observable by the handler even if the block later reassigns it.
    Module mod;
    Function &fn = mod.addFunction("dce", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &handler = fn.newBlock();
    TryRegionId region = fn.addTryRegion(handler.id(), ExcKind::CatchAll);
    BasicBlock &body = fn.newBlock(region);
    ValueId obs = fn.addLocal(Type::I32, "obs");
    b.atEnd(entry);
    b.move(obs, b.constInt(0));
    b.jump(body);
    b.atEnd(body);
    b.move(obs, b.constInt(1)); // must NOT be removed
    ValueId v = b.getField(a, 8, Type::I32); // may throw NPE
    b.move(obs, b.constInt(2));
    b.ret(v);
    b.atEnd(handler);
    b.ret(obs);

    runPass<DeadCodeElimination>(fn);
    size_t movesToObs = 0;
    for (const Instruction &inst : fn.block(body.id()).insts())
        if (inst.op == Opcode::Move && inst.dst == obs)
            ++movesToObs;
    EXPECT_EQ(2u, movesToObs);

    // Semantics check: a == null means the handler sees obs == 1.
    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {RuntimeValue::ofRef(0)});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(1, r.value.i);
}

} // namespace
} // namespace trapjit
