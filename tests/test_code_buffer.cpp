/**
 * @file
 * Lifecycle tests for the W^X code buffer and the native-code cache.
 *
 * The buffer's contract is write *or* execute, never both, with
 * idempotent transitions in both directions — a recompile reuses the
 * same mapping by flipping it back to writable, repatching, and
 * finalizing again, and the entry address must survive every cycle
 * (the in-buffer handler table stores absolute addresses).  The cache's
 * contract is content addressing: the (function, target, fusion,
 * trace) tuple *is* the identity of the machine code, so any component
 * changing must change the key, and identical tuples must collide into
 * one first-writer-wins entry.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "codegen/native/code_buffer.h"
#include "codegen/native/native_compiler.h"
#include "interp/decoded_program.h"
#include "ir/builder.h"
#include "ir/module.h"
#include "testing/random_program.h"

#if !defined(__SANITIZE_ADDRESS__) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define __SANITIZE_ADDRESS__ 1
#endif
#endif

namespace trapjit
{
namespace
{

#if defined(__x86_64__) && !defined(__SANITIZE_ADDRESS__)
constexpr bool kCanExecute = true;
#else
constexpr bool kCanExecute = false;
#endif

/** mov eax, <imm32>; ret */
void
emitReturnConst(uint8_t *p, uint32_t value)
{
    p[0] = 0xb8;
    std::memcpy(p + 1, &value, sizeof(value));
    p[5] = 0xc3;
}

TEST(CodeBuffer, WxToggleAndExecution)
{
    CodeBuffer buf(64);
    ASSERT_NE(nullptr, buf.base());
    EXPECT_GE(buf.capacity(), 64u);
    EXPECT_FALSE(buf.executable());

    emitReturnConst(buf.base(), 17);
    buf.finalize();
    EXPECT_TRUE(buf.executable());
    buf.finalize(); // idempotent
    EXPECT_TRUE(buf.executable());

    if (kCanExecute) {
        auto fn = reinterpret_cast<uint32_t (*)()>(buf.base());
        EXPECT_EQ(17u, fn());
    }
}

TEST(CodeBuffer, ReuseAcrossRecompiles)
{
    CodeBuffer buf(64);
    uint8_t *stableBase = buf.base();

    // Three compile/patch cycles through the same mapping: writable →
    // fill → executable → run, then back.  The base must never move.
    for (uint32_t round = 0; round < 3; ++round) {
        buf.makeWritable();
        EXPECT_FALSE(buf.executable());
        buf.makeWritable(); // idempotent
        EXPECT_FALSE(buf.executable());
        emitReturnConst(buf.base(), 100 + round);
        buf.finalize();
        EXPECT_TRUE(buf.executable());
        EXPECT_EQ(stableBase, buf.base());
        if (kCanExecute) {
            auto fn = reinterpret_cast<uint32_t (*)()>(buf.base());
            EXPECT_EQ(100 + round, fn());
        }
    }
}

TEST(CodeBuffer, MoveTransfersOwnership)
{
    CodeBuffer first(64);
    uint8_t *base = first.base();
    emitReturnConst(base, 5);
    CodeBuffer second(std::move(first));
    EXPECT_EQ(base, second.base());
    EXPECT_EQ(nullptr, first.base());
    second.finalize();
    if (kCanExecute) {
        auto fn = reinterpret_cast<uint32_t (*)()>(second.base());
        EXPECT_EQ(5u, fn());
    }
}

// ---------------------------------------------------------------------------
// Content-addressed native-code cache
// ---------------------------------------------------------------------------

TEST(NativeCodeKey, EveryTupleComponentChangesTheKey)
{
    GeneratorOptions opts;
    opts.seed = 616161;
    auto mod = generateRandomModule(opts);
    const Function &main = mod->function(mod->findFunction("main"));
    Target ia32 = makeIA32WindowsTarget();

    Hash128 k = nativeCodeKey(main, ia32, {}, {});
    EXPECT_EQ(k, nativeCodeKey(main, ia32, {}, {})) << "key not stable";

    DecodeOptions noFuse;
    noFuse.fuse = false;
    EXPECT_FALSE(nativeCodeKey(main, ia32, noFuse, {}) == k)
        << "fusion flag must be part of the identity";
    EXPECT_FALSE(nativeCodeKey(main, makePPCAIXTarget(), {}, {}) == k)
        << "target must be part of the identity";
    NativeCompileOptions noTrace;
    noTrace.recordTrace = false;
    EXPECT_FALSE(nativeCodeKey(main, ia32, {}, noTrace) == k)
        << "trace instrumentation must be part of the identity";

    // A different function under the same knobs is a different key.
    GeneratorOptions opts2;
    opts2.seed = 616162;
    auto mod2 = generateRandomModule(opts2);
    const Function &main2 = mod2->function(mod2->findFunction("main"));
    EXPECT_FALSE(nativeCodeKey(main2, ia32, {}, {}) == k);
}

TEST(NativeCodeCacheTest, FirstWriterWinsOnKeyCollision)
{
    if (!nativeTierSupported())
        GTEST_SKIP() << "native tier requires x86-64 Linux";

    auto mod = std::make_unique<Module>();
    Function &fn = mod->addFunction("main", Type::I32);
    {
        IRBuilder b(fn);
        b.startBlock();
        b.ret(b.constInt(7));
    }
    Target ia32 = makeIA32WindowsTarget();
    auto df = decodeFunction(fn, ia32);

    NativeCodeCache cache;
    Hash128 key = nativeCodeKey(fn, ia32, {}, {});
    EXPECT_EQ(nullptr, cache.lookup(key));

    auto first = cache.insert(key, compileNative(fn, *df, {}));
    ASSERT_NE(nullptr, first->code);
    // A second compile colliding on the same (function, target, fusion,
    // trace) key must not replace the installed code: callers may
    // already hold entry addresses into the first buffer.
    auto second = cache.insert(key, compileNative(fn, *df, {}));
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(first->code.get(), cache.lookup(key)->code.get());
    EXPECT_EQ(1u, cache.size());

    // Unsupported results are cached too (null code + reason), so a
    // known-bad function is never recompiled.
    Hash128 other = nativeCodeKey(fn, makePPCAIXTarget(), {}, {});
    NativeCompileResult unsupported;
    unsupported.unsupportedReason = "synthetic";
    auto bad = cache.insert(other, std::move(unsupported));
    EXPECT_EQ(nullptr, bad->code);
    EXPECT_EQ("synthetic", cache.lookup(other)->unsupportedReason);
    EXPECT_EQ(2u, cache.size());

    cache.clear();
    EXPECT_EQ(0u, cache.size());
    EXPECT_EQ(nullptr, cache.lookup(key));
}

} // namespace
} // namespace trapjit
