/**
 * @file
 * Unit tests of the back end: the exception-site-respecting scheduler,
 * the linear-scan register allocator (non-overlapping assignments,
 * spill behavior under pressure), and the emitter (explicit checks cost
 * bytes, implicit ones are free).
 */

#include <gtest/gtest.h>

#include "codegen/check_bytes.h"
#include "codegen/emitter.h"
#include "codegen/linear_scan.h"
#include "codegen/native/native_compiler.h"
#include "codegen/scheduler.h"
#include "interp/decoded_program.h"
#include "interp/interpreter.h"
#include "ir/builder.h"
#include "ir/module.h"
#include "ir/verifier.h"
#include "runtime/heap.h"

namespace trapjit
{
namespace
{

Target ia32 = makeIA32WindowsTarget();

bool
runScheduler(Function &fn)
{
    static Module dummy;
    fn.recomputeCFG();
    PassContext ctx{dummy, ia32, false};
    LocalScheduler pass;
    return pass.runOnFunction(fn, ctx);
}

TEST(Scheduler, PreservesDataDependences)
{
    Module mod;
    Function &fn = mod.addFunction("s", Type::I32);
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    ValueId a = b.binop(Opcode::IAdd, x, x);
    ValueId c = b.binop(Opcode::IMul, a, a); // depends on a
    ValueId d = b.binop(Opcode::ISub, c, x); // depends on c
    b.ret(d);

    runScheduler(fn);
    EXPECT_TRUE(verifyFunction(fn).ok());

    // Defs must still precede uses.
    std::vector<int> position(fn.numValues(), -1);
    const auto &insts = fn.entry().insts();
    for (size_t i = 0; i < insts.size(); ++i)
        if (insts[i].hasDst())
            position[insts[i].dst] = static_cast<int>(i);
    for (size_t i = 0; i < insts.size(); ++i) {
        std::vector<ValueId> uses;
        insts[i].forEachUse(uses);
        for (ValueId u : uses)
            if (position[u] >= 0)
                EXPECT_LT(position[u], static_cast<int>(i));
    }

    // Behavior unchanged.
    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {RuntimeValue::ofInt(3)});
    EXPECT_EQ((3 + 3) * (3 + 3) - 3, r.value.i);
}

TEST(Scheduler, NeverReordersObservableOperations)
{
    Module mod;
    Function &fn = mod.addFunction("s", Type::Void);
    ValueId o = fn.addParam(Type::Ref, "o");
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    b.putField(o, 8, x);
    ValueId y = b.binop(Opcode::IAdd, x, x);
    b.putField(o, 16, y);
    b.putField(o, 8, y);
    b.ret();

    runScheduler(fn);
    // Stores keep their program order.
    std::vector<int64_t> storeOffsets;
    for (const Instruction &inst : fn.entry().insts())
        if (inst.op == Opcode::PutField)
            storeOffsets.push_back(inst.imm);
    EXPECT_EQ((std::vector<int64_t>{8, 16, 8}), storeOffsets);
}

TEST(Scheduler, ExceptionSiteStaysBehindItsGuard)
{
    // An implicit-check access must not move relative to checks or other
    // observable operations (the Section 3.3.2 marking rule).
    Module mod;
    Function &fn = mod.addFunction("s", Type::I32);
    ValueId o = fn.addParam(Type::Ref, "o");
    IRBuilder b(fn);
    b.startBlock();
    Instruction check;
    check.op = Opcode::NullCheck;
    check.flavor = CheckFlavor::Implicit;
    check.a = o;
    b.emit(check);
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = o;
    gf.imm = 8;
    gf.exceptionSite = true;
    b.emit(gf);
    ValueId pad = b.binop(Opcode::IAdd, gf.dst, gf.dst);
    b.ret(pad);

    runScheduler(fn);
    const auto &insts = fn.entry().insts();
    size_t checkPos = 0, sitePos = 0;
    for (size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].op == Opcode::NullCheck)
            checkPos = i;
        if (insts[i].exceptionSite)
            sitePos = i;
    }
    EXPECT_LT(checkPos, sitePos);
}

TEST(LinearScan, AssignsDisjointRegistersToOverlappingIntervals)
{
    Module mod;
    Function &fn = mod.addFunction("ra", Type::I32);
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    ValueId a = b.binop(Opcode::IAdd, x, x);
    ValueId c = b.binop(Opcode::IAdd, a, x);
    ValueId d = b.binop(Opcode::IAdd, a, c); // a, c overlap here
    b.ret(d);
    fn.recomputeCFG();

    RegAllocation alloc = allocateRegisters(fn);
    EXPECT_EQ(0u, alloc.spilledValues);
    ASSERT_GE(alloc.assignment[a], 0);
    ASSERT_GE(alloc.assignment[c], 0);
    EXPECT_NE(alloc.assignment[a], alloc.assignment[c])
        << "overlapping live ranges need distinct registers";

    // Generic overlap validation over all pairs.
    for (ValueId v = 0; v < fn.numValues(); ++v) {
        for (ValueId w = v + 1; w < fn.numValues(); ++w) {
            if (alloc.assignment[v] < 0 || alloc.assignment[w] < 0)
                continue;
            if (alloc.assignment[v] != alloc.assignment[w])
                continue;
            if (fn.value(v).type == Type::F64 ||
                fn.value(w).type == Type::F64)
                continue;
            bool overlap = alloc.intervalStart[v] <= alloc.intervalEnd[w] &&
                           alloc.intervalStart[w] <= alloc.intervalEnd[v];
            EXPECT_FALSE(overlap)
                << fn.value(v).name << " and " << fn.value(w).name
                << " share a register while overlapping";
        }
    }
}

TEST(LinearScan, SpillsUnderPressure)
{
    Module mod;
    Function &fn = mod.addFunction("ra", Type::I32);
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    // Create 20 simultaneously-live values, far more than 4 registers.
    std::vector<ValueId> vals;
    for (int i = 0; i < 20; ++i)
        vals.push_back(b.binop(Opcode::IAdd, x, b.constInt(i)));
    ValueId acc = vals[0];
    for (int i = 1; i < 20; ++i)
        acc = b.binop(Opcode::IAdd, acc, vals[i]);
    b.ret(acc);
    fn.recomputeCFG();

    RegAllocation alloc = allocateRegisters(fn, /*int_regs=*/4);
    EXPECT_GT(alloc.spilledValues, 0u);
    EXPECT_GT(alloc.spillOps, 0u);
    EXPECT_LE(alloc.maxIntPressure, 4u);
}

TEST(LinearScan, FloatAndIntPoolsAreSeparate)
{
    Module mod;
    Function &fn = mod.addFunction("ra", Type::F64);
    ValueId x = fn.addParam(Type::I32, "x");
    ValueId f = fn.addParam(Type::F64, "f");
    IRBuilder b(fn);
    b.startBlock();
    ValueId i2 = b.binop(Opcode::IAdd, x, x);
    ValueId f2 = b.binop(Opcode::FAdd, f, f);
    ValueId f3 = b.binop(Opcode::FMul, f2, f2);
    (void)i2;
    b.ret(f3);
    fn.recomputeCFG();

    RegAllocation alloc = allocateRegisters(fn, 2, 2);
    EXPECT_EQ(0u, alloc.spilledValues)
        << "two tiny pools suffice when classes are separate";
}

TEST(Emitter, ImplicitChecksEmitNoBytes)
{
    auto build = [](CheckFlavor flavor) {
        auto mod = std::make_unique<Module>();
        Function &fn = mod->addFunction("e", Type::I32);
        ValueId o = fn.addParam(Type::Ref, "o");
        IRBuilder b(fn);
        b.startBlock();
        Instruction check;
        check.op = Opcode::NullCheck;
        check.flavor = flavor;
        check.a = o;
        b.emit(check);
        Instruction gf;
        gf.op = Opcode::GetField;
        gf.dst = fn.addTemp(Type::I32);
        gf.a = o;
        gf.imm = 8;
        gf.exceptionSite = flavor == CheckFlavor::Implicit;
        b.emit(gf);
        b.ret(gf.dst);
        fn.recomputeCFG();
        return mod;
    };

    auto explicitMod = build(CheckFlavor::Explicit);
    auto implicitMod = build(CheckFlavor::Implicit);
    EmittedCode explicitCode =
        emitFunction(explicitMod->function(0), ia32);
    EmittedCode implicitCode =
        emitFunction(implicitMod->function(0), ia32);

    // Pin the exact byte accounting to the shared constants: the one
    // explicit check costs precisely the model sequence, the implicit
    // variant costs precisely nothing, and the total code sizes differ
    // by exactly that sequence.
    EXPECT_EQ(kModelExplicitNullCheckBytes,
              explicitCode.explicitNullCheckBytes);
    EXPECT_EQ(kNativeImplicitNullCheckBytes,
              implicitCode.explicitNullCheckBytes);
    EXPECT_EQ(explicitCode.bytes.size() - kModelExplicitNullCheckBytes,
              implicitCode.bytes.size())
        << "implicit checks shrink the code by exactly the check bytes";
}

TEST(Emitter, BranchFixupsPointAtBlockStarts)
{
    Module mod;
    Function &fn = mod.addFunction("e", Type::I32);
    ValueId c = fn.addParam(Type::I32, "c");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &t = fn.newBlock();
    BasicBlock &f = fn.newBlock();
    b.atEnd(entry);
    b.branch(c, t, f);
    b.atEnd(t);
    b.ret(b.constInt(1));
    b.atEnd(f);
    b.ret(b.constInt(0));
    fn.recomputeCFG();

    EmittedCode code = emitFunction(fn, ia32);
    EXPECT_GT(code.bytes.size(), 0u);
    EXPECT_EQ(fn.instructionCount(), code.instructionsEmitted);
}

// ---------------------------------------------------------------------------
// Optimized native backend: section-5.4 speculation shape
// ---------------------------------------------------------------------------

// The acceptance shape of the optimized x86-64 backend, asserted via
// the published trap-site table: an explicit NullCheck whose guarded
// load is speculated compiles to ZERO bytes, and the load's machine
// code occupies the check's former position — it executes *above* its
// check site, with a deopt record pointing back at the check.  This is
// compile-only (no execution), so it runs wherever compileNative does.

TEST(OptimizedNativeShape, SpeculatedLoadRunsAboveItsEliminatedCheck)
{
    if (!nativeTierSupported())
        GTEST_SKIP() << "native tier requires x86-64 Linux";

    // Build: obj non-null, one explicit check, one guarded field read.
    Module mod;
    Function &fn = mod.addFunction("spec", Type::I32);
    ValueId obj = fn.addParam(Type::Ref, "obj");
    IRBuilder b(fn);
    b.startBlock();
    b.nullCheck(obj);
    ValueId v = b.getField(obj, 8, Type::I32);
    b.ret(v);
    fn.recomputeCFG();

    auto df = decodeFunction(fn, ia32, {});

    NativeCompileOptions opts;
    opts.optimized = true;
    opts.speculate = true;
    NativeCompileResult res = compileNative(fn, *df, opts);
    ASSERT_NE(nullptr, res.code) << res.unsupportedReason;
    const NativeCode &nc = *res.code;
    ASSERT_TRUE(nc.optimized);
    ASSERT_EQ(1u, nc.loadsSpeculated);

    // Locate the check/access pair in the decoded stream.
    int32_t check = -1;
    for (size_t i = 0; i + 1 < df->code.size(); ++i) {
        if (df->code[i].srcOp == Opcode::NullCheck &&
            df->code[i].flavor == CheckFlavor::Explicit &&
            df->code[i + 1].srcOp == Opcode::GetField) {
            check = static_cast<int32_t>(i);
            break;
        }
    }
    ASSERT_GE(check, 0) << "decoded stream lost the check/load pair";
    const size_t access = static_cast<size_t>(check) + 1;

    // 1. The eliminated explicit check emits zero bytes.
    EXPECT_EQ(nc.recordOffsets[check], nc.recordOffsets[check + 1])
        << "the speculated-over explicit check still emits code";

    // 2. The load's trap-site window occupies the position the check
    //    records share — the load executes above its check site.
    const NativeTrapSite *site = nullptr;
    for (const NativeTrapSite &s : nc.sites) {
        if (s.recordIndex == access)
            site = &s;
    }
    ASSERT_NE(nullptr, site) << "speculated load has no trap site";
    EXPECT_GE(site->accessBegin, nc.recordOffsets[check]);
    EXPECT_LT(site->accessBegin, nc.recordOffsets[access + 1]);

    // 3. The deopt metadata replays the *check*, not the load.
    ASSERT_GE(site->deoptIndex, 0);
    ASSERT_LT(static_cast<size_t>(site->deoptIndex), nc.deopts.size());
    const NativeDeoptInfo &info =
        nc.deopts[static_cast<size_t>(site->deoptIndex)];
    EXPECT_TRUE(info.speculated);
    EXPECT_EQ(static_cast<uint32_t>(check), info.deoptRecord);
}

TEST(OptimizedNativeShape, SpeculationOffKeepsTheExplicitCheck)
{
    if (!nativeTierSupported())
        GTEST_SKIP() << "native tier requires x86-64 Linux";

    Module mod;
    Function &fn = mod.addFunction("nospec", Type::I32);
    ValueId obj = fn.addParam(Type::Ref, "obj");
    IRBuilder b(fn);
    b.startBlock();
    b.nullCheck(obj);
    ValueId v = b.getField(obj, 8, Type::I32);
    b.ret(v);
    fn.recomputeCFG();

    auto df = decodeFunction(fn, ia32, {});
    NativeCompileOptions opts;
    opts.optimized = true;
    opts.speculate = false;
    NativeCompileResult res = compileNative(fn, *df, opts);
    ASSERT_NE(nullptr, res.code) << res.unsupportedReason;
    EXPECT_EQ(0u, res.code->loadsSpeculated);
    EXPECT_GT(res.code->explicitNullCheckBytes, 0u);
    for (const NativeDeoptInfo &d : res.code->deopts)
        EXPECT_FALSE(d.speculated);
}

TEST(OptimizedNativeShape, BigOffsetFieldIsNeverSpeculated)
{
    if (!nativeTierSupported())
        GTEST_SKIP() << "native tier requires x86-64 Linux";

    // The field offset lands outside the heap guard region, so a
    // speculated null-base load would NOT fault — the backend must
    // keep the explicit check.
    Module mod;
    Function &fn = mod.addFunction("big", Type::I32);
    ValueId obj = fn.addParam(Type::Ref, "obj");
    IRBuilder b(fn);
    b.startBlock();
    b.nullCheck(obj);
    ValueId v = b.getField(obj, static_cast<int64_t>(kHeapBase), Type::I32);
    b.ret(v);
    fn.recomputeCFG();

    auto df = decodeFunction(fn, ia32, {});
    NativeCompileOptions opts;
    opts.optimized = true;
    opts.speculate = true;
    NativeCompileResult res = compileNative(fn, *df, opts);
    ASSERT_NE(nullptr, res.code) << res.unsupportedReason;
    EXPECT_EQ(0u, res.code->loadsSpeculated);
    EXPECT_GT(res.code->explicitNullCheckBytes, 0u);
}

} // namespace
} // namespace trapjit
