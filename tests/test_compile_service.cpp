/**
 * @file
 * Tests of the parallel compilation service (jit/compile_service.h):
 *
 *  - bit-determinism: per-function serialized IR from an 8-worker run
 *    equals the 1-worker run, for every pipeline config arm, with the
 *    cache cold, warm, and disabled;
 *  - cache accounting: cold batches miss, warm batches hit, shared
 *    caches hit across services, disabled caches never hit;
 *  - stress: many more jobs than workers drain correctly and still
 *    verify and match the sequential output.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ir/serializer.h"
#include "ir/verifier.h"
#include "jit/compile_service.h"
#include "testing/random_program.h"

namespace trapjit
{
namespace
{

struct Arm
{
    const char *targetName;
    Target (*makeTarget)();
    PipelineConfig (*makeConfig)();
};

// Every legal (target, pipeline) pair, mirroring the equivalence sweep.
const Arm kArms[] = {
    {"ia32", makeIA32WindowsTarget, makeNoOptNoTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeNoOptTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeOldNullCheckConfig},
    {"ia32", makeIA32WindowsTarget, makeNewPhase1OnlyConfig},
    {"ia32", makeIA32WindowsTarget, makeNewFullConfig},
    {"ia32", makeIA32WindowsTarget, makeAltVMConfig},
    {"aix", makePPCAIXTarget, makeAIXNoOptConfig},
    {"aix", makePPCAIXTarget, makeAIXNoSpeculationConfig},
    {"aix", makePPCAIXTarget, makeAIXSpeculationConfig},
    {"sparc", makeSPARCTarget, makeNewFullConfig},
    {"s390", makeS390Target, makeNewFullConfig},
};

std::vector<std::unique_ptr<Module>>
buildRandomModules(uint64_t first_seed, size_t count)
{
    std::vector<std::unique_ptr<Module>> mods;
    for (size_t i = 0; i < count; ++i) {
        GeneratorOptions opts;
        opts.seed = first_seed + i;
        mods.push_back(generateRandomModule(opts));
    }
    return mods;
}

std::vector<Module *>
pointers(const std::vector<std::unique_ptr<Module>> &mods)
{
    std::vector<Module *> out;
    for (const auto &mod : mods)
        out.push_back(mod.get());
    return out;
}

/** Serialized IR of every function across every module, in order. */
std::vector<std::string>
perFunctionIR(const std::vector<std::unique_ptr<Module>> &mods)
{
    std::vector<std::string> out;
    for (const auto &mod : mods)
        for (FunctionId f = 0; f < mod->numFunctions(); ++f)
            out.push_back(serializeFunctionToString(mod->function(f)));
    return out;
}

// ---------------------------------------------------------------------
// Determinism: 1 worker == 8 workers == cache disabled, for every arm.
// ---------------------------------------------------------------------

class ServiceDeterminism : public ::testing::TestWithParam<size_t>
{
};

TEST_P(ServiceDeterminism, EightWorkersMatchOneWorkerBitForBit)
{
    const Arm &arm = kArms[GetParam()];
    Target target = arm.makeTarget();
    PipelineConfig config = arm.makeConfig();
    constexpr uint64_t kSeed = 100;
    constexpr size_t kModules = 5;

    CompileServiceOptions one;
    one.numWorkers = 1;
    CompileService sequential(target, one);
    auto seqMods = buildRandomModules(kSeed, kModules);
    auto seqPtrs = pointers(seqMods);
    sequential.compileModules(seqPtrs, config);
    std::vector<std::string> seqIR = perFunctionIR(seqMods);

    CompileServiceOptions eight;
    eight.numWorkers = 8;
    CompileService parallel(target, eight);
    auto parMods = buildRandomModules(kSeed, kModules);
    auto parPtrs = pointers(parMods);
    parallel.compileModules(parPtrs, config);
    std::vector<std::string> parIR = perFunctionIR(parMods);

    ASSERT_EQ(seqIR.size(), parIR.size());
    for (size_t i = 0; i < seqIR.size(); ++i)
        EXPECT_EQ(seqIR[i], parIR[i])
            << "function " << i << " differs between 1 and 8 workers"
            << " under " << config.name << " on " << arm.targetName;

    // A cacheless run must produce the same bits as the cached runs —
    // this is what makes cache hits indistinguishable from compiles.
    CompileServiceOptions uncached;
    uncached.numWorkers = 8;
    uncached.enableCache = false;
    CompileService nocache(target, uncached);
    auto rawMods = buildRandomModules(kSeed, kModules);
    auto rawPtrs = pointers(rawMods);
    nocache.compileModules(rawPtrs, config);
    std::vector<std::string> rawIR = perFunctionIR(rawMods);
    ASSERT_EQ(seqIR.size(), rawIR.size());
    for (size_t i = 0; i < seqIR.size(); ++i)
        EXPECT_EQ(seqIR[i], rawIR[i])
            << "function " << i << " differs with the cache disabled"
            << " under " << config.name << " on " << arm.targetName;
}

std::string
armName(const ::testing::TestParamInfo<size_t> &info)
{
    std::string cfg = kArms[info.param].makeConfig().name;
    for (char &c : cfg)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return std::string(kArms[info.param].targetName) + "_" + cfg;
}

INSTANTIATE_TEST_SUITE_P(AllArms, ServiceDeterminism,
                         ::testing::Range<size_t>(0, std::size(kArms)),
                         armName);

// ---------------------------------------------------------------------
// Cache accounting
// ---------------------------------------------------------------------

TEST(CompileCache, ColdBatchMissesWarmBatchHits)
{
    Target target = makeIA32WindowsTarget();
    CompileServiceOptions options;
    options.numWorkers = 4;
    // These tests assert exact miss/hit counts for the in-memory tier;
    // a TRAPJIT_CACHE_DIR warmed by an earlier run (the CI warm-start
    // smoke does exactly that) would turn the cold misses into
    // persistent hits, so keep the on-disk tier out of the accounting.
    options.enablePersistent = false;
    CompileService service(target, options);
    PipelineConfig config = makeNewFullConfig();

    auto cold = buildRandomModules(7, 4);
    auto coldPtrs = pointers(cold);
    size_t totalFns = 0;
    for (Module *mod : coldPtrs)
        totalFns += mod->numFunctions();

    ServiceReport first = service.compileModules(coldPtrs, config);
    EXPECT_EQ(first.counters.functionsRequested, totalFns);
    EXPECT_EQ(first.counters.cacheHits +
                  first.counters.functionsCompiled,
              totalFns);
    EXPECT_GT(first.counters.functionsCompiled, 0u);
    // Identical functions across modules dedupe to one cache entry
    // (and may even hit within the cold batch), so the entry count is
    // bounded by, not equal to, the compile count.
    EXPECT_GT(service.cache().size(), 0u);
    EXPECT_LE(service.cache().size(),
              first.counters.functionsCompiled);

    // Freshly built identical modules: every job is a cache hit.
    auto warm = buildRandomModules(7, 4);
    auto warmPtrs = pointers(warm);
    ServiceReport second = service.compileModules(warmPtrs, config);
    EXPECT_EQ(second.counters.cacheHits, totalFns);
    EXPECT_EQ(second.counters.functionsCompiled, 0u);
    EXPECT_DOUBLE_EQ(second.counters.hitRate(), 1.0);

    // ... and hits return the same bits the misses produced.
    EXPECT_EQ(perFunctionIR(cold), perFunctionIR(warm));

    // A different config fingerprint must not hit the warm entries.
    // One module only: within a single module every job key is unique
    // (it covers the function's own id), so any hit here would have to
    // come from the other config's entries.
    auto single = buildRandomModules(7, 1);
    auto singlePtrs = pointers(single);
    ServiceReport other =
        service.compileModules(singlePtrs, makeOldNullCheckConfig());
    EXPECT_EQ(other.counters.cacheHits, 0u);
    EXPECT_EQ(other.counters.functionsCompiled,
              other.counters.functionsRequested);
}

TEST(CompileCache, SharedCacheHitsAcrossServices)
{
    Target target = makeIA32WindowsTarget();
    auto shared = std::make_shared<CompileCache>();

    CompileServiceOptions a;
    a.numWorkers = 1;
    a.cache = shared;
    a.enablePersistent = false;
    CompileService producer(target, a);
    auto mods = buildRandomModules(21, 3);
    auto ptrs = pointers(mods);
    producer.compileModules(ptrs, makeNewFullConfig());

    CompileServiceOptions b;
    b.numWorkers = 8;
    b.cache = shared;
    b.enablePersistent = false;
    CompileService consumer(target, b);
    auto again = buildRandomModules(21, 3);
    auto againPtrs = pointers(again);
    ServiceReport report =
        consumer.compileModules(againPtrs, makeNewFullConfig());
    EXPECT_EQ(report.counters.functionsCompiled, 0u);
    EXPECT_EQ(report.counters.cacheHits,
              report.counters.functionsRequested);
    EXPECT_EQ(perFunctionIR(mods), perFunctionIR(again));
}

TEST(CompileCache, DisabledCacheNeverHits)
{
    Target target = makeIA32WindowsTarget();
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.enableCache = false;
    CompileService service(target, options);

    for (int round = 0; round < 2; ++round) {
        auto mods = buildRandomModules(3, 2);
        auto ptrs = pointers(mods);
        ServiceReport report =
            service.compileModules(ptrs, makeNewFullConfig());
        EXPECT_EQ(report.counters.cacheHits, 0u);
        EXPECT_EQ(report.counters.functionsCompiled,
                  report.counters.functionsRequested);
    }
    EXPECT_EQ(service.cache().size(), 0u);
}

// ---------------------------------------------------------------------
// Stress: far more jobs than workers
// ---------------------------------------------------------------------

TEST(CompileService, DrainsManyMoreJobsThanWorkers)
{
    Target target = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();

    constexpr size_t kModules = 24;
    CompileServiceOptions options;
    options.numWorkers = 3;
    options.enablePersistent = false;
    CompileService service(target, options);

    auto mods = buildRandomModules(500, kModules);
    auto ptrs = pointers(mods);
    size_t totalFns = 0;
    for (Module *mod : ptrs)
        totalFns += mod->numFunctions();
    ASSERT_GT(totalFns, 8 * options.numWorkers)
        << "stress test wants a deep queue";

    ServiceReport report = service.compileModules(ptrs, config);
    EXPECT_EQ(report.counters.functionsRequested, totalFns);
    EXPECT_EQ(report.counters.cacheHits +
                  report.counters.functionsCompiled,
              totalFns);

    // Everything that came back must be well-formed ...
    for (const auto &mod : mods) {
        VerifyResult verify = verifyModule(*mod);
        EXPECT_TRUE(verify.ok()) << verify.message();
    }

    // ... and identical to a 1-worker run of the same batch.
    CompileServiceOptions one;
    one.numWorkers = 1;
    CompileService sequential(target, one);
    auto seqMods = buildRandomModules(500, kModules);
    auto seqPtrs = pointers(seqMods);
    sequential.compileModules(seqPtrs, config);
    EXPECT_EQ(perFunctionIR(seqMods), perFunctionIR(mods));
}

// ---------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------

TEST(CompileService, ReportsTimingsAndEmptyBatches)
{
    Target target = makeIA32WindowsTarget();
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.enablePersistent = false;
    CompileService service(target, options);

    std::vector<Module *> none;
    ServiceReport empty = service.compileModules(none, makeNewFullConfig());
    EXPECT_EQ(empty.counters.functionsRequested, 0u);
    EXPECT_EQ(empty.counters.hitRate(), 0.0);

    auto mods = buildRandomModules(11, 2);
    auto ptrs = pointers(mods);
    ServiceReport report =
        service.compileModules(ptrs, makeNewFullConfig());
    EXPECT_GT(report.timings.total(), 0.0);
    EXPECT_GT(report.busySeconds, 0.0);
    EXPECT_GT(report.wallSeconds, 0.0);
    EXPECT_FALSE(report.timings.perPass.empty());
}

} // namespace
} // namespace trapjit
