/**
 * @file
 * Config-matrix differential suite: every pipeline configuration arm —
 * including the AIX speculation arms — compiled through the *parallel*
 * CompileService and checked against the unoptimized reference
 * execution with the observable-equivalence oracle, across ≥32 random
 * program seeds.  The service runs with verifyAfterEachPass on, so a
 * pass that corrupts the IR is caught at the pass boundary with its
 * name, not as a downstream divergence.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "jit/compile_service.h"
#include "testing/equivalence.h"
#include "testing/random_program.h"

namespace trapjit
{
namespace
{

struct Arm
{
    const char *targetName;
    Target (*makeTarget)();
    PipelineConfig (*makeConfig)();
};

// Every legal (target, pipeline) pair, including both AIX speculation
// arms — same matrix the sequential equivalence sweep covers.
const Arm kArms[] = {
    {"ia32", makeIA32WindowsTarget, makeNoOptNoTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeNoOptTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeOldNullCheckConfig},
    {"ia32", makeIA32WindowsTarget, makeNewPhase1OnlyConfig},
    {"ia32", makeIA32WindowsTarget, makeNewFullConfig},
    {"ia32", makeIA32WindowsTarget, makeAltVMConfig},
    {"aix", makePPCAIXTarget, makeAIXNoOptConfig},
    {"aix", makePPCAIXTarget, makeAIXNoSpeculationConfig},
    {"aix", makePPCAIXTarget, makeAIXSpeculationConfig},
    {"sparc", makeSPARCTarget, makeNewFullConfig},
    {"s390", makeS390Target, makeNewFullConfig},
};

using SeedAndArm = std::tuple<uint64_t, size_t>;

class ConfigMatrix : public ::testing::TestWithParam<SeedAndArm>
{
};

TEST_P(ConfigMatrix, ServiceCompiledModuleIsObservablyEquivalent)
{
    const auto [seed, armIdx] = GetParam();
    const Arm &arm = kArms[armIdx];

    GeneratorOptions opts;
    opts.seed = seed;
    auto build = [&opts] { return generateRandomModule(opts); };

    Target target = arm.makeTarget();
    PipelineConfig config = arm.makeConfig();
    config.verifyAfterEachPass = true;

    CompileServiceOptions options;
    options.numWorkers = 4;
    CompileService service(target, options);

    EquivalenceReport report = compareWithReference(
        build,
        [&service, &config](Module &mod) {
            service.compileModule(mod, config);
        },
        target);
    EXPECT_TRUE(report.equivalent)
        << "seed " << seed << " on " << arm.targetName << " / "
        << config.name << ": " << report.message;
}

std::string
armName(const ::testing::TestParamInfo<SeedAndArm> &info)
{
    const auto [seed, armIdx] = info.param;
    std::string cfg = kArms[armIdx].makeConfig().name;
    for (char &c : cfg)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return "seed" + std::to_string(seed) + "_" +
           kArms[armIdx].targetName + "_" + cfg;
}

// Seeds 200..232 (32 seeds) × 11 arms, disjoint from the sequential
// sweep's seed range so the two suites fuzz different programs.
INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigMatrix,
    ::testing::Combine(::testing::Range<uint64_t>(200, 232),
                       ::testing::Range<size_t>(0, std::size(kArms))),
    armName);

} // namespace
} // namespace trapjit
