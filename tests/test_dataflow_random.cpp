/**
 * @file
 * Differential test of the sparse worklist dataflow engine against the
 * retained round-robin reference solver.
 *
 * Every transfer in the gen/kill framework (including per-edge add/kill
 * sets) is monotone, so the fixed point reached from the confluence
 * identity is unique and independent of visit order: the worklist engine
 * must produce bit-identical In/Out sets on every block, for every
 * direction and confluence, on arbitrary CFGs.  This test throws 200+
 * randomized problems over generated programs at both solvers and
 * asserts exactly that.
 */

#include <gtest/gtest.h>

#include <random>

#include "analysis/dataflow.h"
#include "ir/module.h"
#include "testing/random_program.h"

namespace trapjit
{
namespace
{

/** Random gen/kill/boundary/edge sets over the real CFG of @p func. */
DataflowSpec
makeRandomSpec(const Function &func, std::mt19937_64 &rng,
               DataflowSpec::Direction dir, DataflowSpec::Confluence conf)
{
    DataflowSpec spec;
    spec.direction = dir;
    spec.confluence = conf;
    // Cross the 64-bit word boundary often enough to exercise the
    // multi-word paths of the fused kernels.
    std::uniform_int_distribution<size_t> factDist(1, 160);
    spec.numFacts = factDist(rng);

    std::uniform_real_distribution<double> densityDist(0.05, 0.5);
    auto randomize = [&](BitSet &set) {
        std::bernoulli_distribution bit(densityDist(rng));
        for (size_t f = 0; f < spec.numFacts; ++f)
            if (bit(rng))
                set.set(f);
    };

    const size_t numBlocks = func.numBlocks();
    spec.gen.assign(numBlocks, BitSet(spec.numFacts));
    spec.kill.assign(numBlocks, BitSet(spec.numFacts));
    for (size_t b = 0; b < numBlocks; ++b) {
        randomize(spec.gen[b]);
        randomize(spec.kill[b]);
    }

    std::bernoulli_distribution coin(0.5);
    if (coin(rng)) {
        spec.boundary.resize(spec.numFacts);
        randomize(spec.boundary);
    }

    std::bernoulli_distribution edgeCoin(0.3);
    for (size_t b = 0; b < numBlocks; ++b) {
        for (BlockId succ : func.block(static_cast<BlockId>(b)).succs()) {
            const uint64_t key =
                DataflowSpec::edgeKey(static_cast<BlockId>(b), succ);
            if (edgeCoin(rng)) {
                BitSet add(spec.numFacts);
                randomize(add);
                if (!add.empty())
                    spec.edgeAdd[key] = add;
            }
            if (edgeCoin(rng)) {
                BitSet kill(spec.numFacts);
                randomize(kill);
                if (!kill.empty())
                    spec.edgeKill[key] = kill;
            }
        }
    }
    return spec;
}

TEST(DataflowDifferential, WorklistMatchesReferenceOnRandomProblems)
{
    // One engine instance for the whole run: also exercises the scratch
    // arena reuse across problems of wildly different shapes and widths.
    DataflowSolver solver;
    std::mt19937_64 rng(0xC0FFEE);

    const DataflowSpec::Direction dirs[] = {
        DataflowSpec::Direction::Forward,
        DataflowSpec::Direction::Backward,
    };
    const DataflowSpec::Confluence confs[] = {
        DataflowSpec::Confluence::Intersect,
        DataflowSpec::Confluence::Union,
    };

    size_t problems = 0;
    for (uint64_t seed = 1; problems < 200; ++seed) {
        ASSERT_LT(seed, 500u) << "generator produced no functions";
        GeneratorOptions opts;
        opts.seed = seed;
        opts.statementsPerFunction = 6 + static_cast<int>(seed % 12);
        opts.maxDepth = 2 + static_cast<int>(seed % 3);
        opts.numFunctions = 1 + static_cast<int>(seed % 3);
        opts.useTryRegions = (seed % 4) != 0;
        auto mod = generateRandomModule(opts);
        for (size_t f = 0; f < mod->numFunctions(); ++f) {
            Function &fn = mod->function(static_cast<FunctionId>(f));
            if (fn.numBlocks() == 0)
                continue;
            fn.recomputeCFG();
            for (auto dir : dirs) {
                for (auto conf : confs) {
                    DataflowSpec spec =
                        makeRandomSpec(fn, rng, dir, conf);
                    const DataflowResult &fast = solver.solve(fn, spec);
                    DataflowResult ref = solveDataflowReference(fn, spec);
                    ASSERT_EQ(ref.in.size(), fast.in.size());
                    ASSERT_EQ(ref.out.size(), fast.out.size());
                    for (size_t b = 0; b < ref.in.size(); ++b) {
                        ASSERT_EQ(ref.in[b], fast.in[b])
                            << "In mismatch: seed=" << seed
                            << " fn=" << f << " block=" << b
                            << " dir=" << static_cast<int>(dir)
                            << " conf=" << static_cast<int>(conf);
                        ASSERT_EQ(ref.out[b], fast.out[b])
                            << "Out mismatch: seed=" << seed
                            << " fn=" << f << " block=" << b
                            << " dir=" << static_cast<int>(dir)
                            << " conf=" << static_cast<int>(conf);
                    }
                    ++problems;
                }
            }
        }
    }
    EXPECT_GE(problems, 200u);
    EXPECT_EQ(problems, solver.stats().solves)
        << "every problem must be counted exactly once";
}

} // namespace
} // namespace trapjit
