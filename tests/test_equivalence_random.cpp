/**
 * @file
 * The central property test: for randomly generated programs, every
 * pipeline configuration preserves observable behavior on every legal
 * (compile target == runtime target) machine model — same heap-write
 * sequence, same escaping exception class, same return value, same
 * final heap.  This is precisely Java's precise-exception contract the
 * paper's motion rules are built around.
 */

#include <gtest/gtest.h>

#include "testing/equivalence.h"
#include "ir/verifier.h"
#include "opt/nullcheck/check_coverage.h"
#include "testing/random_program.h"

namespace trapjit
{
namespace
{

struct Arm
{
    const char *targetName;
    Target (*makeTarget)();
    PipelineConfig (*makeConfig)();
};

// Every legal (target, pipeline) pair.  The deliberately *illegal*
// Illegal Implicit arm is exercised separately in test_phase2.cpp.
const Arm kArms[] = {
    {"ia32", makeIA32WindowsTarget, makeNoOptNoTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeNoOptTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeOldNullCheckConfig},
    {"ia32", makeIA32WindowsTarget, makeNewPhase1OnlyConfig},
    {"ia32", makeIA32WindowsTarget, makeNewFullConfig},
    {"ia32", makeIA32WindowsTarget, makeAltVMConfig},
    {"aix", makePPCAIXTarget, makeAIXNoOptConfig},
    {"aix", makePPCAIXTarget, makeAIXNoSpeculationConfig},
    {"aix", makePPCAIXTarget, makeAIXSpeculationConfig},
    {"sparc", makeSPARCTarget, makeNewFullConfig},
    {"s390", makeS390Target, makeNewFullConfig},
};

using SeedAndArm = std::tuple<uint64_t, size_t>;

class RandomEquivalence : public ::testing::TestWithParam<SeedAndArm>
{
};

TEST_P(RandomEquivalence, ObservablyEquivalent)
{
    const auto [seed, armIdx] = GetParam();
    const Arm &arm = kArms[armIdx];

    GeneratorOptions opts;
    opts.seed = seed;
    auto build = [&opts] { return generateRandomModule(opts); };

    Target target = arm.makeTarget();
    Compiler compiler(target, arm.makeConfig());
    EquivalenceReport report =
        compareWithReference(build, compiler, target);
    EXPECT_TRUE(report.equivalent)
        << "seed " << seed << " on " << arm.targetName << " / "
        << compiler.config().name << ": " << report.message;
}

std::string
armName(const ::testing::TestParamInfo<SeedAndArm> &info)
{
    const auto [seed, armIdx] = info.param;
    std::string cfg = kArms[armIdx].makeConfig().name;
    for (char &c : cfg)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return "seed" + std::to_string(seed) + "_" +
           kArms[armIdx].targetName + "_" + cfg;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomEquivalence,
    ::testing::Combine(::testing::Range<uint64_t>(1, 41),
                       ::testing::Range<size_t>(0, std::size(kArms))),
    armName);

// -- Generator self-checks and per-program static coverage -------------

TEST(Generator, IsDeterministic)
{
    GeneratorOptions opts;
    opts.seed = 7;
    auto a = generateRandomModule(opts);
    auto c = generateRandomModule(opts);
    ASSERT_EQ(a->numFunctions(), c->numFunctions());
    for (FunctionId f = 0; f < a->numFunctions(); ++f) {
        EXPECT_EQ(a->function(f).instructionCount(),
                  c->function(f).instructionCount());
    }
}

TEST(Generator, ProducesVerifiableModules)
{
    for (uint64_t seed = 1; seed <= 60; ++seed) {
        GeneratorOptions opts;
        opts.seed = seed;
        auto mod = generateRandomModule(opts);
        VerifyResult result = verifyModule(*mod);
        EXPECT_TRUE(result.ok()) << "seed " << seed << "\n"
                                 << result.message();
    }
}

class RandomCoverage : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomCoverage, AllPipelinesKeepEveryAccessGuarded)
{
    const uint64_t seed = GetParam();
    GeneratorOptions opts;
    opts.seed = seed;
    for (const Arm &arm : kArms) {
        auto mod = generateRandomModule(opts);
        Target target = arm.makeTarget();
        Compiler compiler(target, arm.makeConfig());
        compiler.compile(*mod);
        for (FunctionId f = 0; f < mod->numFunctions(); ++f) {
            auto violations =
                checkNullGuardCoverage(mod->function(f), target);
            for (const auto &v : violations)
                ADD_FAILURE() << "seed " << seed << " under "
                              << compiler.config().name << ": "
                              << v.description;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomCoverage,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
} // namespace trapjit
