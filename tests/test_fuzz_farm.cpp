/**
 * @file
 * Fuzz-farm harness tests: a clean multi-threaded sweep over every arm
 * stays clean, and a deliberately broken optimizer (mutation hooks)
 * cannot survive a sweep — the farm must catch it and print a usable
 * repro tuple.  This is the end-to-end guarantee the CI fuzz step
 * relies on: "exit 0" from trapjit-fuzz actually means something.
 */

#include <gtest/gtest.h>

#include "testing/fuzz/fuzz_farm.h"

namespace trapjit
{
namespace
{

TEST(FuzzFarm, ArmTableCoversTheFullMatrix)
{
    // 6 ia32 + 3 aix + sparc + s390: the same 11 arms every
    // differential suite sweeps.
    EXPECT_EQ(fuzzArms().size(), 11u);
    EXPECT_EQ(findFuzzArm("ia32_full"), 4);
    EXPECT_EQ(findFuzzArm("s390_full"), 10);
    EXPECT_EQ(findFuzzArm("no_such_arm"), -1);
    // Labels must be unique: they are the repro vocabulary.
    for (size_t i = 0; i < fuzzArms().size(); ++i)
        EXPECT_EQ(findFuzzArm(fuzzArms()[i].label),
                  static_cast<int>(i));
}

TEST(FuzzFarm, CleanSweepAcrossAllArmsWithConcurrentMutators)
{
    FuzzOptions opts;
    opts.cases = 8; // 8 (seed, profile) cases x 11 arms = 88
    opts.firstSeed = 300; // disjoint from the recorded suite ranges
    opts.threads = 4;
    FuzzResult result = runFuzzFarm(opts);

    EXPECT_EQ(result.stats.casesRun, 88u);
    EXPECT_GT(result.stats.functionsCompiled, 0u);
    EXPECT_GT(result.stats.instructionsExecuted, 0u);
    for (const FuzzDivergence &d : result.divergences)
        ADD_FAILURE() << d.reproLine() << " " << d.message;
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.stats.auditFindings, 0u);
}

TEST(FuzzFarm, TrapHeavyProfileActuallyTraps)
{
    FuzzOptions opts;
    opts.cases = 6;
    opts.firstSeed = 400;
    opts.threads = 4;
    opts.profiles = {"null_storm"};
    // Only the arms that convert checks into hardware traps.
    opts.arms = {findFuzzArm("ia32_noopt_trap"),
                 findFuzzArm("ia32_full"),
                 findFuzzArm("s390_full")};
    FuzzResult result = runFuzzFarm(opts);

    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.stats.casesRun, 18u);
    // The generator is deterministic, so so is this count being > 0:
    // unguarded chases run off null-terminated chains by design.
    EXPECT_GT(result.stats.trapsTaken, 0u);
}

TEST(FuzzFarm, InjectedMutationIsCaughtWithReproTuple)
{
    FuzzOptions opts;
    opts.cases = 10;
    opts.firstSeed = 1;
    opts.threads = 4;
    opts.arms = {findFuzzArm("ia32_full")};
    opts.mutation = NullCheckMutation::P2SkipExceptionSiteMark;
    FuzzResult result = runFuzzFarm(opts);

    ASSERT_FALSE(result.clean())
        << "a broken phase 2 survived the sweep undetected";
    const FuzzDivergence &d = result.divergences.front();
    EXPECT_EQ(d.oracle, "audit");
    EXPECT_EQ(d.arm, "ia32_full");
    std::string repro = d.reproLine();
    EXPECT_NE(repro.find("seed="), std::string::npos) << repro;
    EXPECT_NE(repro.find("arm=ia32_full"), std::string::npos) << repro;

    // The tuple must round-trip: rerunning that exact case under the
    // same mutation reproduces the finding sequentially.
    FuzzOptions rerun;
    rerun.mutation = opts.mutation;
    FuzzResult again =
        rerunFuzzCase(d.seed, d.profile, d.arm, rerun);
    EXPECT_FALSE(again.clean())
        << "repro tuple did not reproduce the finding";

    // And without the mutation the same case is clean: the tuple
    // pinpoints the injected bug, not a generator artifact.
    FuzzResult healthy = rerunFuzzCase(d.seed, d.profile, d.arm);
    EXPECT_TRUE(healthy.clean())
        << healthy.divergences.front().message;
}

TEST(FuzzFarm, MutationNamesRoundTrip)
{
    EXPECT_EQ(mutationFromName("P2MarkWithoutTrapCover"),
              NullCheckMutation::P2MarkWithoutTrapCover);
    EXPECT_EQ(mutationFromName("bogus"), NullCheckMutation::None);
    EXPECT_NE(mutationNames().find("P1DropRedefKillBwd"),
              std::string::npos);
}

} // namespace
} // namespace trapjit
