/**
 * @file
 * Unit tests of devirtualization (CHA), intrinsification, and inlining —
 * including the Figure 1 invariant: the receiver's explicit check stays
 * behind when the call disappears.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "ir/builder.h"
#include "ir/module.h"
#include "ir/verifier.h"
#include "opt/inliner/class_hierarchy.h"
#include "opt/inliner/inliner.h"
#include "workloads/kernel_util.h"

namespace trapjit
{
namespace
{

Target ia32 = makeIA32WindowsTarget();
Target ppc = makePPCAIXTarget();

size_t
countOp(const Function &fn, Opcode op)
{
    size_t n = 0;
    for (size_t b = 0; b < fn.numBlocks(); ++b)
        for (const Instruction &inst :
             fn.block(static_cast<BlockId>(b)).insts())
            if (inst.op == op)
                ++n;
    return n;
}

/** Monomorphic getter: class, vtable, caller. */
struct GetterWorld
{
    std::unique_ptr<Module> mod;
    ClassId cls;
    uint32_t slot;
    FunctionId caller;
};

GetterWorld
makeGetterWorld(bool polymorphic)
{
    GetterWorld world;
    world.mod = std::make_unique<Module>();
    Module &mod = *world.mod;

    Function &getter = mod.addFunction("C.get", Type::I32, true);
    {
        ValueId self = getter.addParam(Type::Ref, "this");
        IRBuilder b(getter);
        b.startBlock();
        ValueId v = b.getField(self, 8, Type::I32);
        b.ret(v);
    }
    world.cls = mod.addClass("C");
    mod.addField(world.cls, "f", Type::I32);
    world.slot = mod.addVirtualMethod(world.cls, getter.id());

    if (polymorphic) {
        Function &other = mod.addFunction("D.get", Type::I32, true);
        ValueId self = other.addParam(Type::Ref, "this");
        (void)self;
        IRBuilder b(other);
        b.startBlock();
        b.ret(b.constInt(0));
        ClassId sub = mod.addClass("D", world.cls);
        mod.overrideMethod(sub, world.slot, other.id());
    }

    Function &caller = mod.addFunction("caller", Type::I32);
    {
        ValueId obj = caller.addParam(Type::Ref, "obj", world.cls);
        IRBuilder b(caller);
        b.startBlock();
        ValueId v = b.callVirtual(world.slot, {obj}, Type::I32);
        b.ret(v);
    }
    world.caller = caller.id();
    return world;
}

bool
runInliner(Module &mod, FunctionId fn, const Target &target,
           size_t budget = 40, bool intrinsics = true)
{
    Function &func = mod.function(fn);
    func.recomputeCFG();
    PassContext ctx{mod, target, false};
    Inliner pass(budget, 4000, intrinsics);
    return pass.runOnFunction(func, ctx);
}

TEST(CHA, MonomorphicSlotResolves)
{
    GetterWorld world = makeGetterWorld(/*polymorphic=*/false);
    ClassHierarchy cha(*world.mod);
    EXPECT_NE(kNoFunction,
              cha.uniqueImplementation(world.cls, world.slot));
}

TEST(CHA, PolymorphicSlotDoesNot)
{
    GetterWorld world = makeGetterWorld(/*polymorphic=*/true);
    ClassHierarchy cha(*world.mod);
    EXPECT_EQ(kNoFunction,
              cha.uniqueImplementation(world.cls, world.slot));
}

TEST(CHA, UnknownReceiverClassDoesNot)
{
    GetterWorld world = makeGetterWorld(/*polymorphic=*/false);
    ClassHierarchy cha(*world.mod);
    EXPECT_EQ(kNoFunction,
              cha.uniqueImplementation(kUnknownClass, world.slot));
}

/** Figure 1: inlining keeps the receiver's explicit check. */
TEST(Inliner, InlineKeepsReceiverCheck)
{
    GetterWorld world = makeGetterWorld(/*polymorphic=*/false);
    Module &mod = *world.mod;
    EXPECT_TRUE(runInliner(mod, world.caller, ia32));

    Function &caller = mod.function(world.caller);
    EXPECT_TRUE(verifyFunction(caller).ok());
    EXPECT_EQ(0u, countOp(caller, Opcode::Call)) << "inlined";
    EXPECT_GE(countOp(caller, Opcode::NullCheck), 1u)
        << "the Figure 1 explicit check must remain";
    EXPECT_GE(countOp(caller, Opcode::GetField), 1u)
        << "the callee body arrived";

    // Behavior: null receiver still throws NPE.
    Interpreter interp(mod, ia32);
    ExecResult r =
        interp.run(world.caller, {RuntimeValue::ofRef(0)});
    ASSERT_EQ(ExecResult::Outcome::Threw, r.outcome);
    EXPECT_EQ(ExcKind::NullPointer, r.exception);
}

TEST(Inliner, InlinedBehaviorMatchesCall)
{
    // Run the same program with and without inlining; results agree.
    auto run = [](bool inlineIt) {
        GetterWorld world = makeGetterWorld(false);
        Module &mod = *world.mod;

        // main: allocate, set f = 99, call caller.
        Function &fn = mod.addFunction("main", Type::I32);
        IRBuilder b(fn);
        b.startBlock();
        ValueId obj =
            b.newObject(world.cls, mod.cls(world.cls).instanceSize);
        ValueId v = b.constInt(99);
        b.putField(obj, 8, v);
        ValueId got = b.callStatic(world.caller, {obj}, Type::I32);
        b.ret(got);

        if (inlineIt)
            runInliner(mod, world.caller, ia32);
        Interpreter interp(mod, ia32);
        return interp.run(fn.id(), {}).value.i;
    };
    EXPECT_EQ(run(false), run(true));
    EXPECT_EQ(99, run(true));
}

TEST(Inliner, PolymorphicCallStaysVirtual)
{
    GetterWorld world = makeGetterWorld(/*polymorphic=*/true);
    Module &mod = *world.mod;
    runInliner(mod, world.caller, ia32);
    Function &caller = mod.function(world.caller);
    ASSERT_EQ(1u, countOp(caller, Opcode::Call));
    for (size_t b = 0; b < caller.numBlocks(); ++b)
        for (const Instruction &inst :
             caller.block(static_cast<BlockId>(b)).insts())
            if (inst.op == Opcode::Call)
                EXPECT_EQ(CallKind::Virtual, inst.callKind);
}

TEST(Inliner, BudgetRefusesLargeCallee)
{
    GetterWorld world = makeGetterWorld(false);
    Module &mod = *world.mod;
    EXPECT_TRUE(runInliner(mod, world.caller, ia32, /*budget=*/1))
        << "devirtualization still happens";
    Function &caller = mod.function(world.caller);
    EXPECT_EQ(1u, countOp(caller, Opcode::Call)) << "not inlined";
    for (size_t b = 0; b < caller.numBlocks(); ++b)
        for (const Instruction &inst :
             caller.block(static_cast<BlockId>(b)).insts())
            if (inst.op == Opcode::Call)
                EXPECT_EQ(CallKind::Special, inst.callKind)
                    << "devirtualized but too big to inline";
}

TEST(Inliner, NeverInlineFlagRespected)
{
    GetterWorld world = makeGetterWorld(false);
    Module &mod = *world.mod;
    // Mark the getter as never-inline.
    mod.function(mod.findFunction("C.get")).setNeverInline(true);
    runInliner(mod, world.caller, ia32);
    Function &caller = mod.function(world.caller);
    EXPECT_EQ(1u, countOp(caller, Opcode::Call));
}

TEST(Inliner, IntrinsicExpOnlyWhereSupported)
{
    auto build = [](Module &mod, FunctionId exp) {
        Function &fn = mod.addFunction("main", Type::F64);
        ValueId x = fn.addParam(Type::F64, "x");
        IRBuilder b(fn);
        b.startBlock();
        ValueId v = b.callStatic(exp, {x}, Type::F64);
        b.ret(v);
        return fn.id();
    };

    {
        Module mod;
        MathFunctions math = addMathFunctions(mod);
        FunctionId main = build(mod, math.exp);
        runInliner(mod, main, ia32);
        Function &fn = mod.function(main);
        EXPECT_EQ(0u, countOp(fn, Opcode::Call));
        EXPECT_EQ(1u, countOp(fn, Opcode::FExp))
            << "IA32 has the exponential instruction";
    }
    {
        Module mod;
        MathFunctions math = addMathFunctions(mod);
        FunctionId main = build(mod, math.exp);
        runInliner(mod, main, ppc);
        Function &fn = mod.function(main);
        EXPECT_EQ(1u, countOp(fn, Opcode::Call))
            << "PowerPC keeps the opaque call (Section 5.4)";
        EXPECT_EQ(0u, countOp(fn, Opcode::FExp));
    }
}

TEST(Inliner, CalleeWithTryRegionInlinesIntoTryRegionWithNesting)
{
    Module mod;
    // Callee with its own try region.
    Function &callee = mod.addFunction("callee", Type::I32);
    {
        ValueId a = callee.addParam(Type::Ref, "a");
        IRBuilder b(callee);
        BasicBlock &entry = b.startBlock();
        BasicBlock &handler = callee.newBlock();
        TryRegionId region =
            callee.addTryRegion(handler.id(), ExcKind::NullPointer);
        BasicBlock &body = callee.newBlock(region);
        b.atEnd(entry);
        b.jump(body);
        b.atEnd(body);
        ValueId v = b.getField(a, 8, Type::I32);
        b.ret(v);
        b.atEnd(handler);
        b.ret(b.constInt(-1));
    }
    // Caller invokes it from inside a try region; the callee's region
    // is cloned as a CHILD of the caller's (nested dispatch).
    Function &caller = mod.addFunction("caller", Type::I32);
    {
        ValueId a = caller.addParam(Type::Ref, "a");
        IRBuilder b(caller);
        BasicBlock &entry = b.startBlock();
        BasicBlock &handler = caller.newBlock();
        TryRegionId region =
            caller.addTryRegion(handler.id(), ExcKind::CatchAll);
        BasicBlock &body = caller.newBlock(region);
        b.atEnd(entry);
        b.jump(body);
        b.atEnd(body);
        ValueId v = b.callStatic(callee.id(), {a}, Type::I32);
        b.ret(v);
        b.atEnd(handler);
        b.ret(b.constInt(-2));
    }

    EXPECT_TRUE(runInliner(mod, caller.id(), ia32));
    EXPECT_EQ(0u, countOp(caller, Opcode::Call))
        << "nested regions are supported: the call inlines";
    EXPECT_TRUE(verifyFunction(caller).ok());

    // Dispatch semantics: null -> the CALLEE's NPE handler (inner
    // region) wins over the caller's catch-all.
    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(caller.id(), {RuntimeValue::ofRef(0)});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(-1, r.value.i) << "inner handler caught the NPE";
}

TEST(Inliner, InlinedCalleeTryRegionStillCatches)
{
    Module mod;
    Function &callee = mod.addFunction("callee", Type::I32);
    {
        ValueId a = callee.addParam(Type::Ref, "a");
        IRBuilder b(callee);
        BasicBlock &entry = b.startBlock();
        BasicBlock &handler = callee.newBlock();
        TryRegionId region =
            callee.addTryRegion(handler.id(), ExcKind::NullPointer);
        BasicBlock &body = callee.newBlock(region);
        b.atEnd(entry);
        b.jump(body);
        b.atEnd(body);
        ValueId v = b.getField(a, 8, Type::I32);
        b.ret(v);
        b.atEnd(handler);
        b.ret(b.constInt(-1));
    }
    Function &caller = mod.addFunction("caller", Type::I32);
    {
        ValueId a = caller.addParam(Type::Ref, "a");
        IRBuilder b(caller);
        b.startBlock(); // not in a try region: inlining is allowed
        ValueId v = b.callStatic(callee.id(), {a}, Type::I32);
        b.ret(v);
    }

    EXPECT_TRUE(runInliner(mod, caller.id(), ia32));
    EXPECT_EQ(0u, countOp(caller, Opcode::Call));

    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(caller.id(), {RuntimeValue::ofRef(0)});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(-1, r.value.i) << "the cloned handler caught the NPE";
}

} // namespace
} // namespace trapjit
