/**
 * @file
 * Differential suite for the pre-decoded fast interpreter.
 *
 * The fast engine (interp/fast_interpreter.h) claims to be an *exact*
 * reimplementation of the reference switch interpreter — same heap
 * bytes, same exceptions (Java-level and HardFault, message included),
 * same EventTrace, same cycle double bit for bit.  This suite enforces
 * that claim three ways:
 *
 *  1. a parametrized sweep: random programs × every config arm of the
 *     reproduction (the same 11-arm matrix as test_config_matrix),
 *     each compiled program executed under both engines with fusion on
 *     and off and compared with compareEngines();
 *  2. directed tests for the machinery the sweep can't observe from
 *     the outside: the superinstruction fusion table, the union-slot
 *     register file (Move lane preservation), the instruction-budget
 *     parity, and the decoded-program cache;
 *  3. the TRAPJIT_INTERP engine selector.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

#include "interp/decoded_program.h"
#include "interp/fast_interpreter.h"
#include "ir/builder.h"
#include "ir/module.h"
#include "jit/compile_service.h"
#include "jit/compiler.h"
#include "testing/equivalence.h"
#include "testing/random_program.h"

namespace trapjit
{
namespace
{

struct Arm
{
    const char *targetName;
    Target (*makeTarget)();
    PipelineConfig (*makeConfig)();
};

// The full 11-arm (target, pipeline) matrix of the reproduction — the
// same arms the observable-equivalence suites sweep.
const Arm kArms[] = {
    {"ia32", makeIA32WindowsTarget, makeNoOptNoTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeNoOptTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeOldNullCheckConfig},
    {"ia32", makeIA32WindowsTarget, makeNewPhase1OnlyConfig},
    {"ia32", makeIA32WindowsTarget, makeNewFullConfig},
    {"ia32", makeIA32WindowsTarget, makeAltVMConfig},
    {"aix", makePPCAIXTarget, makeAIXNoOptConfig},
    {"aix", makePPCAIXTarget, makeAIXNoSpeculationConfig},
    {"aix", makePPCAIXTarget, makeAIXSpeculationConfig},
    {"sparc", makeSPARCTarget, makeNewFullConfig},
    {"s390", makeS390Target, makeNewFullConfig},
};

using SeedAndArm = std::tuple<uint64_t, size_t>;

class InterpDifferential : public ::testing::TestWithParam<SeedAndArm>
{
};

TEST_P(InterpDifferential, EnginesAreBitIdentical)
{
    const auto [seed, armIdx] = GetParam();
    const Arm &arm = kArms[armIdx];

    GeneratorOptions opts;
    opts.seed = seed;
    std::unique_ptr<Module> mod = generateRandomModule(opts);

    Target target = arm.makeTarget();
    PipelineConfig config = arm.makeConfig();

    // Unoptimized shape first: every check explicit, maximum fusion
    // opportunities of the NullCheck+access kind.
    EquivalenceReport unopt = compareEngines(*mod, target);
    EXPECT_TRUE(unopt.equivalent)
        << "seed " << seed << " unoptimized on " << arm.targetName
        << ": " << unopt.message;

    Compiler compiler(target, config);
    compiler.compile(*mod);

    EquivalenceReport fused = compareEngines(*mod, target);
    EXPECT_TRUE(fused.equivalent)
        << "seed " << seed << " on " << arm.targetName << " / "
        << config.name << " (fusion on): " << fused.message;

    DecodeOptions noFuse;
    noFuse.fuse = false;
    EquivalenceReport plain = compareEngines(*mod, target, noFuse);
    EXPECT_TRUE(plain.equivalent)
        << "seed " << seed << " on " << arm.targetName << " / "
        << config.name << " (fusion off): " << plain.message;
}

std::string
armName(const ::testing::TestParamInfo<SeedAndArm> &info)
{
    const auto [seed, armIdx] = info.param;
    std::string cfg = kArms[armIdx].makeConfig().name;
    for (char &c : cfg)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return "seed" + std::to_string(seed) + "_" +
           kArms[armIdx].targetName + "_" + cfg;
}

// Seeds 300..320 (20 seeds) × 11 arms = 220 compiled programs, each
// executed under both engines (plus the unoptimized and fusion-off
// variants) — disjoint from the other suites' seed ranges.
INSTANTIATE_TEST_SUITE_P(
    Sweep, InterpDifferential,
    ::testing::Combine(::testing::Range<uint64_t>(300, 320),
                       ::testing::Range<size_t>(0, std::size(kArms))),
    armName);

// ---------------------------------------------------------------------------
// Superinstruction fusion
// ---------------------------------------------------------------------------

/**
 * One straight-line main exercising every entry of the fusion table:
 * the pairs NullCheck+GetField, NullCheck+PutField, NullCheck+Call,
 * NullCheck+ArrayLength, BoundCheck+ArrayLoad, BoundCheck+ArrayStore,
 * ICmp+Branch, FCmp+Branch, ConstInt+IAdd, and the checked-array-access
 * quads (NullCheck; ArrayLength; BoundCheck; ArrayLoad/Store).
 */
std::unique_ptr<Module>
buildFusionModule()
{
    auto mod = std::make_unique<Module>();

    Function &callee = mod->addFunction("callee", Type::I32);
    ValueId self = callee.addParam(Type::Ref);
    (void)self;
    {
        IRBuilder b(callee);
        b.startBlock();
        b.ret(b.constInt(17));
    }

    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();

    ValueId obj = b.newObject(0, 24);
    ValueId arr = b.newArray(b.constInt(4), Type::I32);

    // ConstInt+IAdd (the constInt is emitted immediately before the add).
    ValueId five = b.constInt(5);
    ValueId sum = b.binop(Opcode::IAdd, five, five);

    // NullCheck+GetField / NullCheck+PutField shape via checked helpers.
    b.putField(obj, 8, sum);
    ValueId field = b.getField(obj, 8, Type::I32);

    // Checked accesses: the full NullCheck; ArrayLength; BoundCheck;
    // ArrayLoad/Store sequences fuse as quads.
    b.arrayStore(arr, b.constInt(2), field, Type::I32);
    ValueId elem = b.arrayLoad(arr, b.constInt(2), Type::I32);

    // Post-optimization shapes: NullCheck+ArrayLength on its own, and a
    // bare BoundCheck right before a raw access (the null check and
    // length hoisted away by the optimizer) — the pair entries.
    ValueId len = b.arrayLength(arr);
    ValueId idx = b.constInt(1);
    b.boundCheck(idx, len);
    Instruction rawStore;
    rawStore.op = Opcode::ArrayStore;
    rawStore.a = arr;
    rawStore.b = idx;
    rawStore.c = field;
    rawStore.elemType = Type::I32;
    b.emit(rawStore);
    b.boundCheck(idx, len);
    Instruction rawLoad;
    rawLoad.op = Opcode::ArrayLoad;
    rawLoad.dst = fn.addTemp(Type::I32);
    rawLoad.a = arr;
    rawLoad.b = idx;
    rawLoad.elemType = Type::I32;
    b.emit(rawLoad);

    // Counted-loop latch quint: ConstInt; IAdd; Move; ICmp; Branch
    // (the limit is hoisted so the back-edge run stays adjacent).
    ValueId limit = b.constInt(3);
    ValueId ivar = fn.addLocal(Type::I32);
    b.move(ivar, b.constInt(0));
    BasicBlock &lbody = fn.newBlock();
    BasicBlock &lexit = fn.newBlock();
    b.jump(lbody);
    b.atEnd(lbody);
    ValueId nexti = b.binop(Opcode::IAdd, ivar, b.constInt(1));
    b.move(ivar, nexti);
    ValueId lcond = b.cmp(Opcode::ICmp, CmpPred::LT, ivar, limit);
    b.branch(lcond, lbody, lexit);
    b.atEnd(lexit);

    // NullCheck+Call.
    ValueId callRes = b.callSpecial(callee.id(), {obj}, Type::I32);

    // ICmp+Branch and FCmp+Branch.
    BasicBlock &ftrue = fn.newBlock();
    BasicBlock &join = fn.newBlock();
    ValueId cond = b.cmp(Opcode::ICmp, CmpPred::GT, elem, b.constInt(0));
    b.branch(cond, ftrue, join);
    b.atEnd(ftrue);
    BasicBlock &fjoin = fn.newBlock();
    ValueId fcond = b.cmp(Opcode::FCmp, CmpPred::LT, b.constFloat(1.0),
                          b.constFloat(2.0));
    b.branch(fcond, fjoin, fjoin);
    b.atEnd(fjoin);
    b.jump(join);
    b.atEnd(join);

    ValueId total = b.binop(Opcode::IAdd, elem, callRes);
    b.ret(total);
    return mod;
}

TEST(SuperinstructionFusion, DecoderFusesEveryTablePair)
{
    auto mod = buildFusionModule();
    Target ia32 = makeIA32WindowsTarget();
    const Function &main = mod->function(mod->findFunction("main"));

    auto fusedDf = decodeFunction(main, ia32);
    auto plainDf = decodeFunction(main, ia32, DecodeOptions{false});
    EXPECT_EQ(0u, plainDf->info.fusedPairs);
    // Nine distinct pairs, two quads (3 elided dispatches each), one
    // loop-latch quint (4 elided dispatches).
    EXPECT_GE(fusedDf->info.fusedPairs, 19u);

    // Fusion rewrites handlers only: record count and branch targets of
    // the two decodings are identical.
    ASSERT_EQ(plainDf->code.size(), fusedDf->code.size());
    for (size_t i = 0; i < plainDf->code.size(); ++i) {
        EXPECT_EQ(plainDf->code[i].target, fusedDf->code[i].target);
        EXPECT_EQ(plainDf->code[i].target2, fusedDf->code[i].target2);
    }

    bool sawNullGetField = false, sawNullPutField = false;
    bool sawNullCall = false, sawNullArrayLength = false;
    bool sawBoundLoad = false, sawBoundStore = false;
    bool sawICmpBr = false, sawFCmpBr = false, sawConstAdd = false;
    bool sawLoadQuad = false, sawStoreQuad = false, sawLatch = false;
    for (const DecodedInst &d : fusedDf->code) {
        switch (d.op) {
          case DecodedOp::FusedNullCheckGetField: sawNullGetField = true;
            break;
          case DecodedOp::FusedNullCheckPutField: sawNullPutField = true;
            break;
          case DecodedOp::FusedNullCheckCall: sawNullCall = true; break;
          case DecodedOp::FusedNullCheckArrayLength:
            sawNullArrayLength = true;
            break;
          case DecodedOp::FusedBoundCheckArrayLoad: sawBoundLoad = true;
            break;
          case DecodedOp::FusedBoundCheckArrayStore: sawBoundStore = true;
            break;
          case DecodedOp::FusedICmpBranch: sawICmpBr = true; break;
          case DecodedOp::FusedFCmpBranch: sawFCmpBr = true; break;
          case DecodedOp::FusedConstIntIAdd: sawConstAdd = true; break;
          case DecodedOp::FusedArrayLoadQuad: sawLoadQuad = true; break;
          case DecodedOp::FusedArrayStoreQuad: sawStoreQuad = true; break;
          case DecodedOp::FusedLoopLatch: sawLatch = true; break;
          default: break;
        }
    }
    EXPECT_TRUE(sawNullGetField);
    EXPECT_TRUE(sawNullPutField);
    EXPECT_TRUE(sawNullCall);
    EXPECT_TRUE(sawNullArrayLength);
    EXPECT_TRUE(sawBoundLoad);
    EXPECT_TRUE(sawBoundStore);
    EXPECT_TRUE(sawICmpBr);
    EXPECT_TRUE(sawFCmpBr);
    EXPECT_TRUE(sawConstAdd);
    EXPECT_TRUE(sawLoadQuad);
    EXPECT_TRUE(sawStoreQuad);
    EXPECT_TRUE(sawLatch);
}

TEST(SuperinstructionFusion, FusedExecutionMatchesReference)
{
    auto mod = buildFusionModule();
    Target ia32 = makeIA32WindowsTarget();

    EquivalenceReport report = compareEngines(*mod, ia32);
    EXPECT_TRUE(report.equivalent) << report.message;

    FastInterpreter fast(*mod, ia32);
    ExecResult r = fast.run(mod->findFunction("main"), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_GT(r.stats.fusedPairsExecuted, 0u);
    // Fusion retires records without dispatching them; the counter is
    // exactly the number of dispatches elided (3 per quad, 1 per pair).
    EXPECT_LT(r.stats.dispatches, r.stats.instructions);
    EXPECT_EQ(r.stats.instructions,
              r.stats.dispatches + r.stats.fusedPairsExecuted);
}

// ---------------------------------------------------------------------------
// Union-slot register file (satellite: RuntimeValue is three fields)
// ---------------------------------------------------------------------------

TEST(SlotRegisterFile, MoveChainsPreserveEveryTypedLane)
{
    // One value of each static type flows through a chain of Moves and
    // is then *used* (stored, loaded, converted); a register file that
    // dropped or clobbered a lane on copy would corrupt at least one of
    // the three contributions.
    auto build = [] {
        auto mod = std::make_unique<Module>();
        Function &fn = mod->addFunction("main", Type::I32);
        IRBuilder b(fn);
        b.startBlock();

        ValueId wide = b.constInt(0x1234567890abcdefll, Type::I64);
        ValueId wideCopy = fn.addLocal(Type::I64);
        b.move(wideCopy, wide);
        ValueId wideCopy2 = fn.addLocal(Type::I64);
        b.move(wideCopy2, wideCopy);
        ValueId low = b.unop(Opcode::L2I, wideCopy2, Type::I32);

        ValueId fval = b.constFloat(2.75);
        ValueId fcopy = fn.addLocal(Type::F64);
        b.move(fcopy, fval);
        ValueId fint = b.unop(Opcode::F2I, fcopy, Type::I32);

        ValueId arr = b.newArray(b.constInt(3), Type::I64);
        ValueId arrCopy = fn.addLocal(Type::Ref);
        b.move(arrCopy, arr);
        b.arrayStore(arrCopy, b.constInt(1), wideCopy, Type::I64);
        ValueId back = b.arrayLoad(arrCopy, b.constInt(1), Type::I64);
        ValueId backLow = b.unop(Opcode::L2I, back, Type::I32);

        ValueId sum = b.binop(Opcode::IAdd, low, fint);
        sum = b.binop(Opcode::IAdd, sum, backLow);
        b.ret(sum);
        return mod;
    };

    Target ia32 = makeIA32WindowsTarget();
    auto mod = build();
    EquivalenceReport report = compareEngines(*mod, ia32);
    EXPECT_TRUE(report.equivalent) << report.message;

    const int64_t lowLane = static_cast<int32_t>(0x1234567890abcdefll);
    const int32_t expected = static_cast<int32_t>(lowLane + 2 + lowLane);
    Interpreter ref(*mod, ia32);
    ExecResult rr = ref.run(mod->findFunction("main"), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, rr.outcome);
    EXPECT_EQ(expected, rr.value.i);

    FastInterpreter fast(*mod, ia32);
    ExecResult fr = fast.run(mod->findFunction("main"), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, fr.outcome);
    EXPECT_EQ(expected, fr.value.i);
}

// ---------------------------------------------------------------------------
// Instruction budget parity
// ---------------------------------------------------------------------------

TEST(FastInterpreter, InstructionBudgetHardFaultMatchesReference)
{
    auto build = [] {
        auto mod = std::make_unique<Module>();
        Function &fn = mod->addFunction("main", Type::I32);
        IRBuilder b(fn);
        BasicBlock &entry = b.startBlock();
        (void)entry;
        ValueId i = fn.addLocal(Type::I32);
        ValueId zero = b.constInt(0);
        b.move(i, zero);
        BasicBlock &head = fn.newBlock();
        BasicBlock &body = fn.newBlock();
        BasicBlock &exit = fn.newBlock();
        b.jump(head);
        b.atEnd(head);
        ValueId cond = b.cmp(Opcode::ICmp, CmpPred::LT, i,
                             b.constInt(1000000));
        b.branch(cond, body, exit);
        b.atEnd(body);
        ValueId next = b.binop(Opcode::IAdd, i, b.constInt(1));
        b.move(i, next);
        b.jump(head);
        b.atEnd(exit);
        b.ret(i);
        return mod;
    };

    Target ia32 = makeIA32WindowsTarget();
    InterpOptions options;
    options.maxInstructions = 100;

    auto mod = build();
    std::string refMessage;
    std::string fastMessage;
    {
        Interpreter ref(*mod, ia32, options);
        try {
            ref.run(mod->findFunction("main"), {});
            FAIL() << "reference engine did not hit the budget";
        } catch (const HardFault &fault) {
            refMessage = fault.what();
        }
    }
    {
        FastInterpreter fast(*mod, ia32, options);
        try {
            fast.run(mod->findFunction("main"), {});
            FAIL() << "fast engine did not hit the budget";
        } catch (const HardFault &fault) {
            fastMessage = fault.what();
        }
    }
    EXPECT_EQ(refMessage, fastMessage);
}

// ---------------------------------------------------------------------------
// Decoded-program cache
// ---------------------------------------------------------------------------

TEST(DecodedProgramCache, ContentKeyIsStableAndSharable)
{
    GeneratorOptions opts;
    opts.seed = 424242;
    auto mod = generateRandomModule(opts);
    Target ia32 = makeIA32WindowsTarget();
    const Function &main = mod->function(mod->findFunction("main"));

    Hash128 k1 = decodedProgramKey(main, ia32, {});
    Hash128 k2 = decodedProgramKey(main, ia32, {});
    EXPECT_EQ(k1, k2);
    DecodeOptions noFuse;
    noFuse.fuse = false;
    EXPECT_FALSE(decodedProgramKey(main, ia32, noFuse) == k1);
    EXPECT_FALSE(decodedProgramKey(main, makePPCAIXTarget(), {}) == k1);

    DecodedProgramCache cache;
    auto first = decodeFunction(main, ia32, {});
    auto kept = cache.insert(k1, first);
    EXPECT_EQ(first.get(), kept.get());
    auto second = decodeFunction(main, ia32, {});
    EXPECT_EQ(first.get(), cache.insert(k1, second).get())
        << "first writer must win";
    EXPECT_EQ(first.get(), cache.lookup(k1).get());
    EXPECT_EQ(1u, cache.size());
}

TEST(DecodedProgramCache, CompileServicePredecodesEverything)
{
    GeneratorOptions opts;
    opts.seed = 434343;
    auto mod = generateRandomModule(opts);
    Target ia32 = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();

    CompileServiceOptions serviceOpts;
    serviceOpts.numWorkers = 2;
    CompileService service(ia32, serviceOpts);
    ServiceReport report = service.compileModule(*mod, config);
    EXPECT_EQ(mod->numFunctions(), report.counters.functionsPredecoded);
    EXPECT_EQ(mod->numFunctions(), service.decodedCache()->size());

    // An interpreter sharing the service's cache never decodes.
    FastInterpreter fast(*mod, ia32, {}, service.decodedCache());
    ExecResult r = fast.run(mod->findFunction("main"), {});
    EXPECT_EQ(0u, r.stats.functionsDecoded);
    EXPECT_EQ(0.0, r.stats.decodeSeconds);

    // Recompiling the identical module decodes nothing new.
    auto again = generateRandomModule(opts);
    ServiceReport second = service.compileModule(*again, config);
    EXPECT_EQ(0u, second.counters.functionsPredecoded);
}

// ---------------------------------------------------------------------------
// Engine selection
// ---------------------------------------------------------------------------

TEST(EngineSelection, EnvVariablePicksEngine)
{
    ASSERT_EQ(0, setenv("TRAPJIT_INTERP", "reference", 1));
    EXPECT_EQ(InterpEngineKind::Reference, interpEngineFromEnv());
    ASSERT_EQ(0, setenv("TRAPJIT_INTERP", "ref", 1));
    EXPECT_EQ(InterpEngineKind::Reference, interpEngineFromEnv());
    ASSERT_EQ(0, setenv("TRAPJIT_INTERP", "fast", 1));
    EXPECT_EQ(InterpEngineKind::Fast, interpEngineFromEnv());
    ASSERT_EQ(0, unsetenv("TRAPJIT_INTERP"));
    EXPECT_EQ(InterpEngineKind::Fast, interpEngineFromEnv());
    EXPECT_STREQ("reference",
                 interpEngineName(InterpEngineKind::Reference));
    EXPECT_STREQ("fast", interpEngineName(InterpEngineKind::Fast));
}

} // namespace
} // namespace trapjit
