/**
 * @file
 * Unit tests of the interpreter: arithmetic semantics, heap accesses,
 * exception raising and try dispatch, virtual calls, the target trap
 * model (implicit checks, speculation, the illegal-implicit silent
 * read), and the miscompile HardFault discipline.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "ir/builder.h"
#include "ir/module.h"
#include "runtime/exceptions.h"

namespace trapjit
{
namespace
{

Target ia32 = makeIA32WindowsTarget();

TEST(Interpreter, IntegerArithmeticWrapsAt32Bits)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId big = b.constInt(0x7fffffff);
    ValueId one = b.constInt(1);
    ValueId sum = b.binop(Opcode::IAdd, big, one);
    b.ret(sum);

    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(INT32_MIN, r.value.i);
}

TEST(Interpreter, DivisionByZeroThrowsArithmetic)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId x = b.constInt(7);
    ValueId zero = b.constInt(0);
    ValueId q = b.binop(Opcode::IDiv, x, zero);
    b.ret(q);

    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Threw, r.outcome);
    EXPECT_EQ(ExcKind::Arithmetic, r.exception);
}

TEST(Interpreter, DivMinByMinusOneWraps)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId minv = b.constInt(INT32_MIN);
    ValueId negOne = b.constInt(-1);
    ValueId q = b.binop(Opcode::IDiv, minv, negOne);
    b.ret(q);

    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(INT32_MIN, r.value.i);
}

TEST(Interpreter, ExplicitNullCheckThrowsNPE)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId nil = b.constNull();
    ValueId v = b.getField(nil, 8, Type::I32); // nullcheck + getfield
    b.ret(v);

    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Threw, r.outcome);
    EXPECT_EQ(ExcKind::NullPointer, r.exception);
    EXPECT_EQ(1u, r.stats.explicitNullChecks);
}

TEST(Interpreter, MarkedAccessTrapsToNPEOnTrapTarget)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId nil = b.constNull();
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = nil;
    gf.imm = 8;
    gf.exceptionSite = true; // implicit null check attached
    b.emit(gf);
    b.ret(gf.dst);

    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Threw, r.outcome);
    EXPECT_EQ(ExcKind::NullPointer, r.exception);
    EXPECT_EQ(1u, r.stats.trapsTaken);
}

TEST(Interpreter, UnmarkedNullDereferenceHardFaults)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId nil = b.constNull();
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = nil;
    gf.imm = 8;
    b.emit(gf); // no mark: a miscompile
    b.ret(gf.dst);

    Interpreter interp(mod, ia32);
    EXPECT_THROW(interp.run(fn.id(), {}), HardFault);
}

TEST(Interpreter, BigOffsetMarkedAccessHardFaults)
{
    // An exception site whose offset exceeds the protected page cannot
    // rely on the trap (Figure 5); if the optimizer marks it anyway,
    // execution is a wild access.
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId nil = b.constNull();
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = nil;
    gf.imm = 8192; // beyond the 4 KiB page
    gf.exceptionSite = true;
    b.emit(gf);
    b.ret(gf.dst);

    Interpreter interp(mod, ia32);
    EXPECT_THROW(interp.run(fn.id(), {}), HardFault);
}

TEST(Interpreter, SpeculativeReadOfNullYieldsZeroOnAIX)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId nil = b.constNull();
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = nil;
    gf.imm = 8;
    gf.speculative = true;
    b.emit(gf);
    b.ret(gf.dst);

    Target aix = makePPCAIXTarget();
    Interpreter interp(mod, aix);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(0, r.value.i);
    EXPECT_EQ(1u, r.stats.speculativeReadsOfNull);

    // The same program on a read-trapping target is a miscompile.
    Interpreter strict(mod, ia32);
    EXPECT_THROW(strict.run(fn.id(), {}), HardFault);
}

TEST(Interpreter, IllegalImplicitReadSilentlyYieldsZeroOnAIX)
{
    // The Section 5.4 "Illegal Implicit" behavior: a read marked as an
    // exception site executes on a target that does not trap reads —
    // the NPE is silently lost and the read yields zero.
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId nil = b.constNull();
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = nil;
    gf.imm = 8;
    gf.exceptionSite = true;
    b.emit(gf);
    b.ret(gf.dst);

    Target aix = makePPCAIXTarget();
    Interpreter interp(mod, aix);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome)
        << "the Java specification is violated, exactly as the paper "
           "warns";
    EXPECT_EQ(0, r.value.i);
}

TEST(Interpreter, MarkedWriteTrapsOnAIX)
{
    // AIX traps *writes* to the protected page, so a marked putfield is
    // a legal implicit check there.
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId nil = b.constNull();
    ValueId v = b.constInt(5);
    Instruction pf;
    pf.op = Opcode::PutField;
    pf.a = nil;
    pf.b = v;
    pf.imm = 8;
    pf.exceptionSite = true;
    b.emit(pf);
    b.ret(b.constInt(0));

    Target aix = makePPCAIXTarget();
    Interpreter interp(mod, aix);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Threw, r.outcome);
    EXPECT_EQ(ExcKind::NullPointer, r.exception);
}

TEST(Interpreter, BoundCheckThrowsAIOOBE)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId len = b.constInt(4);
    ValueId arr = b.newArray(len, Type::I32);
    ValueId idx = b.constInt(9);
    ValueId v = b.arrayLoad(arr, idx, Type::I32);
    b.ret(v);

    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Threw, r.outcome);
    EXPECT_EQ(ExcKind::ArrayIndexOutOfBounds, r.exception);
}

TEST(Interpreter, NegativeArraySizeThrows)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId len = b.constInt(-3);
    ValueId arr = b.newArray(len, Type::I32);
    (void)arr;
    b.ret(b.constInt(0));

    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Threw, r.outcome);
    EXPECT_EQ(ExcKind::NegativeArraySize, r.exception);
}

TEST(Interpreter, TryRegionCatchesMatchingKind)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &handler = fn.newBlock();
    TryRegionId region =
        fn.addTryRegion(handler.id(), ExcKind::NullPointer);
    BasicBlock &body = fn.newBlock(region);
    b.atEnd(entry);
    b.jump(body);
    b.atEnd(body);
    ValueId nil = b.constNull();
    ValueId v = b.getField(nil, 8, Type::I32);
    b.ret(v);
    b.atEnd(handler);
    ValueId caught = b.constInt(42);
    b.ret(caught);

    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(42, r.value.i);
}

TEST(Interpreter, TryRegionFilterMismatchPropagates)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &handler = fn.newBlock();
    TryRegionId region =
        fn.addTryRegion(handler.id(), ExcKind::Arithmetic);
    BasicBlock &body = fn.newBlock(region);
    b.atEnd(entry);
    b.jump(body);
    b.atEnd(body);
    ValueId nil = b.constNull();
    ValueId v = b.getField(nil, 8, Type::I32); // NPE, not caught
    b.ret(v);
    b.atEnd(handler);
    b.ret(b.constInt(42));

    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Threw, r.outcome);
    EXPECT_EQ(ExcKind::NullPointer, r.exception);
}

TEST(Interpreter, VirtualDispatchSelectsOverride)
{
    Module mod;
    Function &fa = mod.addFunction("A.id", Type::I32, true);
    {
        fa.addParam(Type::Ref, "this");
        IRBuilder b(fa);
        b.startBlock();
        b.ret(b.constInt(1));
    }
    Function &fb = mod.addFunction("B.id", Type::I32, true);
    {
        fb.addParam(Type::Ref, "this");
        IRBuilder b(fb);
        b.startBlock();
        b.ret(b.constInt(2));
    }
    ClassId a = mod.addClass("A");
    uint32_t slot = mod.addVirtualMethod(a, fa.id());
    ClassId bCls = mod.addClass("B", a);
    mod.overrideMethod(bCls, slot, fb.id());

    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId objB = b.newObject(bCls, mod.cls(bCls).instanceSize);
    ValueId got = b.callVirtual(slot, {objB}, Type::I32);
    b.ret(got);

    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(2, r.value.i);
}

TEST(Interpreter, SpecialCallWithNullReceiverHardFaults)
{
    Module mod;
    Function &callee = mod.addFunction("callee", Type::I32, true);
    {
        callee.addParam(Type::Ref, "this");
        IRBuilder b(callee);
        b.startBlock();
        b.ret(b.constInt(1));
    }
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId nil = b.constNull();
    // Raw Special call with no preceding check: a miscompile.
    Instruction call;
    call.op = Opcode::Call;
    call.callKind = CallKind::Special;
    call.imm = callee.id();
    call.args = {nil};
    call.dst = fn.addTemp(Type::I32);
    b.emit(call);
    b.ret(call.dst);

    Interpreter interp(mod, ia32);
    EXPECT_THROW(interp.run(fn.id(), {}), HardFault);
}

TEST(Interpreter, ImplicitCheckCostsNothingExplicitCosts)
{
    // Two identical programs; one explicit check, one implicit (marked
    // access).  The implicit variant must be cheaper by exactly the
    // explicit check cost.
    auto build = [](CheckFlavor flavor) {
        auto mod = std::make_unique<Module>();
        Function &fn = mod->addFunction("main", Type::I32);
        IRBuilder b(fn);
        b.startBlock();
        ValueId len = b.constInt(4);
        ValueId arr = b.newArray(len, Type::I32);
        Instruction check;
        check.op = Opcode::NullCheck;
        check.flavor = flavor;
        check.a = arr;
        b.emit(check);
        Instruction al;
        al.op = Opcode::ArrayLength;
        al.dst = fn.addTemp(Type::I32);
        al.a = arr;
        al.exceptionSite = flavor == CheckFlavor::Implicit;
        b.emit(al);
        b.ret(al.dst);
        return mod;
    };

    auto explicitMod = build(CheckFlavor::Explicit);
    auto implicitMod = build(CheckFlavor::Implicit);
    Interpreter e(*explicitMod, ia32), i(*implicitMod, ia32);
    ExecResult re = e.run(explicitMod->findFunction("main"), {});
    ExecResult ri = i.run(implicitMod->findFunction("main"), {});
    EXPECT_EQ(re.value.i, ri.value.i);
    EXPECT_DOUBLE_EQ(re.stats.cycles - ia32.explicitNullCheckCycles,
                     ri.stats.cycles);
}

TEST(Interpreter, TraceRecordsWritesAndAllocations)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId len = b.constInt(2);
    ValueId arr = b.newArray(len, Type::I32);
    ValueId idx = b.constInt(0);
    ValueId val = b.constInt(77);
    b.arrayStore(arr, idx, val, Type::I32);
    b.ret(val);

    Interpreter interp(mod, ia32);
    interp.run(fn.id(), {});
    const auto &events = interp.trace().events();
    ASSERT_EQ(2u, events.size());
    EXPECT_EQ(Event::Kind::Allocation, events[0].kind);
    EXPECT_EQ(Event::Kind::HeapWrite, events[1].kind);
    EXPECT_EQ(77u, events[1].payload);
}

} // namespace
} // namespace trapjit
namespace trapjit
{
namespace
{

TEST(Interpreter, NestedTryDispatchInnerFirstThenOuter)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    ValueId which = fn.addParam(Type::I32, "which");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &outerHandler = fn.newBlock();
    TryRegionId outer =
        fn.addTryRegion(outerHandler.id(), ExcKind::CatchAll);
    BasicBlock &innerHandler = fn.newBlock(outer);
    TryRegionId inner = fn.addTryRegion(
        innerHandler.id(), ExcKind::Arithmetic, outer);
    BasicBlock &body = fn.newBlock(inner);
    b.atEnd(entry);
    b.jump(body);
    b.atEnd(body);
    {
        // which == 0 -> ArithmeticException (inner catches);
        // which == 1 -> NPE (inner declines, outer catches).
        BasicBlock &doDiv = fn.newBlock(inner);
        BasicBlock &doNull = fn.newBlock(inner);
        ValueId zero = b.constInt(0);
        ValueId isDiv = b.cmp(Opcode::ICmp, CmpPred::EQ, which, zero);
        b.branch(isDiv, doDiv, doNull);
        b.atEnd(doDiv);
        ValueId q = b.binop(Opcode::IDiv, which, zero);
        b.ret(q);
        b.atEnd(doNull);
        ValueId nil = b.constNull();
        ValueId v = b.getField(nil, 8, Type::I32);
        b.ret(v);
    }
    b.atEnd(innerHandler);
    b.ret(b.constInt(100));
    b.atEnd(outerHandler);
    b.ret(b.constInt(200));

    Target ia32 = makeIA32WindowsTarget();
    Interpreter interp(mod, ia32);
    ExecResult divCase = interp.run(fn.id(), {RuntimeValue::ofInt(0)});
    ASSERT_EQ(ExecResult::Outcome::Returned, divCase.outcome);
    EXPECT_EQ(100, divCase.value.i) << "inner handler catches its kind";
    ExecResult nullCase = interp.run(fn.id(), {RuntimeValue::ofInt(1)});
    ASSERT_EQ(ExecResult::Outcome::Returned, nullCase.outcome);
    EXPECT_EQ(200, nullCase.value.i)
        << "inner declines, outer catch-all takes it";
}

TEST(Interpreter, NestedTryExceptionInHandlerPropagatesOutward)
{
    Module mod;
    Function &fn = mod.addFunction("main", Type::I32);
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &outerHandler = fn.newBlock();
    TryRegionId outer =
        fn.addTryRegion(outerHandler.id(), ExcKind::CatchAll);
    BasicBlock &innerHandler = fn.newBlock(outer); // handler IN outer
    TryRegionId inner = fn.addTryRegion(
        innerHandler.id(), ExcKind::NullPointer, outer);
    BasicBlock &body = fn.newBlock(inner);
    b.atEnd(entry);
    b.jump(body);
    b.atEnd(body);
    ValueId nil = b.constNull();
    ValueId v = b.getField(nil, 8, Type::I32); // NPE -> inner handler
    b.ret(v);
    b.atEnd(innerHandler);
    // The handler itself divides by zero -> outer handler.
    ValueId zero = b.constInt(0);
    ValueId one = b.constInt(1);
    ValueId q = b.binop(Opcode::IDiv, one, zero);
    b.ret(q);
    b.atEnd(outerHandler);
    b.ret(b.constInt(42));

    Target ia32 = makeIA32WindowsTarget();
    Interpreter interp(mod, ia32);
    ExecResult r = interp.run(fn.id(), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(42, r.value.i);
}

} // namespace
} // namespace trapjit
