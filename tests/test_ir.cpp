/**
 * @file
 * Unit tests of the IR substrate: values, instructions, builder
 * expansion, the class table, the verifier, and the printer.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/layout.h"
#include "ir/module.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/diagnostics.h"

namespace trapjit
{
namespace
{

TEST(Instruction, ClassificationQueries)
{
    Instruction getfield;
    getfield.op = Opcode::GetField;
    getfield.a = 1;
    getfield.imm = 16;
    EXPECT_EQ(1u, getfield.checkedRef());
    EXPECT_EQ(SlotAccess::Read, getfield.slotAccess());
    EXPECT_EQ(16, getfield.slotOffset());
    EXPECT_FALSE(getfield.isSideEffecting());

    Instruction putfield;
    putfield.op = Opcode::PutField;
    putfield.a = 1;
    putfield.b = 2;
    putfield.imm = 8;
    EXPECT_EQ(SlotAccess::Write, putfield.slotAccess());
    EXPECT_TRUE(putfield.writesMemory());
    EXPECT_TRUE(putfield.isSideEffecting());

    Instruction idiv;
    idiv.op = Opcode::IDiv;
    EXPECT_TRUE(idiv.mayThrowOtherThanNull());
    EXPECT_FALSE(idiv.writesMemory());

    Instruction alength;
    alength.op = Opcode::ArrayLength;
    alength.a = 3;
    EXPECT_EQ(kArrayLengthOffset, alength.slotOffset());

    Instruction aload;
    aload.op = Opcode::ArrayLoad;
    aload.a = 3;
    aload.b = 4;
    EXPECT_EQ(-1, aload.slotOffset()) << "element offset is dynamic";
}

TEST(Instruction, CallReceiverRules)
{
    Instruction call;
    call.op = Opcode::Call;
    call.args = {7, 8};

    call.callKind = CallKind::Virtual;
    EXPECT_EQ(7u, call.checkedRef());
    EXPECT_EQ(SlotAccess::Read, call.slotAccess()) << "vtable load";
    EXPECT_EQ(kHeaderOffset, call.slotOffset());

    call.callKind = CallKind::Special;
    EXPECT_EQ(7u, call.checkedRef());
    EXPECT_EQ(SlotAccess::None, call.slotAccess())
        << "a devirtualized call no longer touches the receiver "
           "(Figure 1)";

    call.callKind = CallKind::Static;
    EXPECT_EQ(kNoValue, call.checkedRef());
}

TEST(Builder, CheckedFieldAccessExpansion)
{
    Module mod;
    Function &fn = mod.addFunction("f", Type::I32);
    ValueId obj = fn.addParam(Type::Ref, "obj");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v = b.getField(obj, 8, Type::I32);
    b.ret(v);

    const auto &insts = fn.entry().insts();
    ASSERT_EQ(3u, insts.size());
    EXPECT_EQ(Opcode::NullCheck, insts[0].op);
    EXPECT_EQ(CheckFlavor::Explicit, insts[0].flavor);
    EXPECT_EQ(obj, insts[0].a);
    EXPECT_EQ(Opcode::GetField, insts[1].op);
    EXPECT_EQ(Opcode::Return, insts[2].op);
}

TEST(Builder, CheckedArrayAccessExpansion)
{
    Module mod;
    Function &fn = mod.addFunction("f", Type::I32);
    ValueId arr = fn.addParam(Type::Ref, "arr");
    ValueId idx = fn.addParam(Type::I32, "idx");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v = b.arrayLoad(arr, idx, Type::I32);
    b.ret(v);

    // nullcheck, arraylength, boundcheck, aload, return.
    const auto &insts = fn.entry().insts();
    ASSERT_EQ(5u, insts.size());
    EXPECT_EQ(Opcode::NullCheck, insts[0].op);
    EXPECT_EQ(Opcode::ArrayLength, insts[1].op);
    EXPECT_EQ(Opcode::BoundCheck, insts[2].op);
    EXPECT_EQ(Opcode::ArrayLoad, insts[3].op);
    (void)v;
}

TEST(Module, FieldLayoutIsAlignedAndInherited)
{
    Module mod;
    ClassId base = mod.addClass("Base");
    int64_t f1 = mod.addField(base, "i", Type::I32);
    int64_t f2 = mod.addField(base, "d", Type::F64);
    EXPECT_EQ(kFieldBaseOffset, f1);
    EXPECT_EQ(0, f2 % 8) << "f64 fields naturally aligned";

    ClassId sub = mod.addClass("Sub", base);
    int64_t f3 = mod.addField(sub, "j", Type::I32);
    EXPECT_GT(f3, f2);
    EXPECT_EQ(f1, mod.fieldOffset(sub, "i")) << "inherited lookup";
    EXPECT_TRUE(mod.isSubclassOf(sub, base));
    EXPECT_FALSE(mod.isSubclassOf(base, sub));
}

TEST(Module, BigOffsetFieldWithinJvmLimit)
{
    Module mod;
    ClassId cls = mod.addClass("Big");
    int64_t off = mod.addFieldAt(cls, "far", Type::I32, 8192);
    EXPECT_EQ(8192, off);
    EXPECT_GE(mod.cls(cls).instanceSize, 8196);
    EXPECT_THROW(mod.addFieldAt(cls, "tooFar", Type::I32,
                                kMaxFieldOffset + 8),
                 InternalError);
}

TEST(Module, VtableInheritanceAndOverride)
{
    Module mod;
    Function &fa = mod.addFunction("A.m", Type::I32, true);
    Function &fb = mod.addFunction("B.m", Type::I32, true);
    ClassId a = mod.addClass("A");
    uint32_t slot = mod.addVirtualMethod(a, fa.id());
    ClassId b = mod.addClass("B", a);
    EXPECT_EQ(fa.id(), mod.cls(b).vtable[slot]) << "inherited";
    mod.overrideMethod(b, slot, fb.id());
    EXPECT_EQ(fb.id(), mod.cls(b).vtable[slot]);
    EXPECT_EQ(fa.id(), mod.cls(a).vtable[slot]) << "base unchanged";
}

TEST(Verifier, AcceptsWellFormedFunction)
{
    Module mod;
    Function &fn = mod.addFunction("ok", Type::I32);
    ValueId p = fn.addParam(Type::I32, "p");
    IRBuilder b(fn);
    b.startBlock();
    ValueId c = b.constInt(1);
    ValueId sum = b.binop(Opcode::IAdd, p, c);
    b.ret(sum);
    EXPECT_TRUE(verifyFunction(fn).ok());
}

TEST(Verifier, RejectsUnterminatedBlock)
{
    Module mod;
    Function &fn = mod.addFunction("bad", Type::Void);
    IRBuilder b(fn);
    b.startBlock();
    b.constInt(1); // no terminator
    VerifyResult result = verifyFunction(fn);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(std::string::npos,
              result.message().find("not terminated"));
}

TEST(Verifier, RejectsTypeMismatch)
{
    Module mod;
    Function &fn = mod.addFunction("bad", Type::Void);
    ValueId f = fn.addParam(Type::F64, "f");
    IRBuilder b(fn);
    b.startBlock();
    Instruction check;
    check.op = Opcode::NullCheck;
    check.a = f; // nullcheck of a float
    b.emit(check);
    b.ret();
    EXPECT_FALSE(verifyFunction(fn).ok());
}

TEST(Verifier, RejectsBranchToInvalidBlock)
{
    Module mod;
    Function &fn = mod.addFunction("bad", Type::Void);
    IRBuilder b(fn);
    b.startBlock();
    Instruction jump;
    jump.op = Opcode::Jump;
    jump.imm = 99;
    fn.entry().insts().push_back(jump);
    EXPECT_FALSE(verifyFunction(fn).ok());
}

TEST(Verifier, RejectsBigOffsetBeyondJvmLimit)
{
    Module mod;
    Function &fn = mod.addFunction("bad", Type::I32);
    ValueId obj = fn.addParam(Type::Ref, "o");
    IRBuilder b(fn);
    b.startBlock();
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = obj;
    gf.imm = kMaxFieldOffset + 64;
    fn.entry().insts().push_back(gf);
    b.ret(gf.dst);
    EXPECT_FALSE(verifyFunction(fn).ok());
}

TEST(Printer, RendersChecksWithFlavor)
{
    Module mod;
    Function &fn = mod.addFunction("p", Type::Void);
    ValueId obj = fn.addParam(Type::Ref, "obj");
    IRBuilder b(fn);
    b.startBlock();
    b.nullCheck(obj);
    b.ret();
    fn.recomputeCFG();
    std::string text = toString(fn);
    EXPECT_NE(std::string::npos, text.find("nullcheck obj"));
    EXPECT_NE(std::string::npos, text.find("explicit"));
}

TEST(Function, RecomputeCFGBuildsFactoredExceptionEdges)
{
    Module mod;
    Function &fn = mod.addFunction("t", Type::Void);
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &handler = fn.newBlock();
    TryRegionId region = fn.addTryRegion(handler.id(), ExcKind::CatchAll);
    BasicBlock &body = fn.newBlock(region);
    BasicBlock &exit = fn.newBlock();
    b.atEnd(entry);
    b.jump(body);
    b.atEnd(body);
    b.jump(exit);
    b.atEnd(handler);
    b.jump(exit);
    b.atEnd(exit);
    b.ret();
    fn.recomputeCFG();

    // The try-region block has the handler as an extra successor.
    auto &succs = fn.block(body.id()).succs();
    EXPECT_NE(succs.end(),
              std::find(succs.begin(), succs.end(), handler.id()));
    auto &preds = fn.block(handler.id()).preds();
    EXPECT_NE(preds.end(),
              std::find(preds.begin(), preds.end(), body.id()));
}

} // namespace
} // namespace trapjit
