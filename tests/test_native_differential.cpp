/**
 * @file
 * Differential suite for the native x86-64 tier.
 *
 * The native engine (codegen/native/native_engine.h) claims to be
 * observably identical to the fast interpreter on everything but the
 * simulated cycle model: same heap bytes, same exceptions (Java-level
 * and HardFault, message included), same EventTrace, same semantic
 * counters (instructions, calls, allocations, trapsTaken,
 * speculativeReadsOfNull).  Unlike the interpreters it takes the
 * paper's mechanism literally — an implicit null check is *zero emitted
 * instructions* and recovery rides a real SIGSEGV from the heap guard
 * page — so this suite also asserts the machine-code shape:
 *
 *  1. a parametrized sweep: 200 random programs × the full 11-arm
 *     config matrix, each compiled program executed under both engines
 *     and compared with compareNativeEngine();
 *  2. disassembly-level check-size assertions via NativeCode record
 *     offsets: an implicit NullCheck record is exactly the
 *     instruction-budget preamble (no compare, no branch), an explicit
 *     one carries the kNativeExplicitNullCheckBytes compare-and-branch;
 *  3. directed tests for the trap path (a real fault must be taken and
 *     must surface as the interpreter-identical NullPointerException),
 *     mixed native/interpreted call stacks, budget-fault message
 *     parity, and the TRAPJIT_INTERP selector.
 *
 * Everything execution-related skips on hosts without the native tier
 * and under AddressSanitizer (ASan's own SIGSEGV instrumentation is
 * incompatible with recovering from intentional guard-page faults).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

#include "codegen/check_bytes.h"
#include "codegen/native/native_compiler.h"
#include "codegen/native/native_engine.h"
#include "interp/decoded_program.h"
#include "interp/fast_interpreter.h"
#include "ir/builder.h"
#include "ir/module.h"
#include "jit/compile_service.h"
#include "jit/compiler.h"
#include "testing/equivalence.h"
#include "testing/random_program.h"
#include "testing/workload_gen/workload_gen.h"

#if !defined(__SANITIZE_ADDRESS__) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define __SANITIZE_ADDRESS__ 1
#endif
#endif

namespace trapjit
{
namespace
{

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kAsanActive = true;
#else
constexpr bool kAsanActive = false;
#endif

/** Skip (with notice) where native code cannot run: see file comment. */
#define TRAPJIT_REQUIRE_NATIVE_TIER()                                        \
    do {                                                                     \
        if (!nativeTierSupported())                                          \
            GTEST_SKIP() << "native tier requires x86-64 Linux";             \
        if (kAsanActive)                                                     \
            GTEST_SKIP()                                                     \
                << "guard-page SIGSEGV recovery is incompatible with ASan";  \
    } while (0)

struct Arm
{
    const char *targetName;
    Target (*makeTarget)();
    PipelineConfig (*makeConfig)();
};

// The full 11-arm (target, pipeline) matrix of the reproduction — the
// same arms as test_interp_differential and the equivalence suites.
const Arm kArms[] = {
    {"ia32", makeIA32WindowsTarget, makeNoOptNoTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeNoOptTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeOldNullCheckConfig},
    {"ia32", makeIA32WindowsTarget, makeNewPhase1OnlyConfig},
    {"ia32", makeIA32WindowsTarget, makeNewFullConfig},
    {"ia32", makeIA32WindowsTarget, makeAltVMConfig},
    {"aix", makePPCAIXTarget, makeAIXNoOptConfig},
    {"aix", makePPCAIXTarget, makeAIXNoSpeculationConfig},
    {"aix", makePPCAIXTarget, makeAIXSpeculationConfig},
    {"sparc", makeSPARCTarget, makeNewFullConfig},
    {"s390", makeS390Target, makeNewFullConfig},
};

using SeedAndArm = std::tuple<uint64_t, size_t>;

class NativeDifferential : public ::testing::TestWithParam<SeedAndArm>
{
};

TEST_P(NativeDifferential, NativeMatchesFastInterpreter)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    const auto [seed, armIdx] = GetParam();
    const Arm &arm = kArms[armIdx];

    GeneratorOptions opts;
    opts.seed = seed;
    std::unique_ptr<Module> mod = generateRandomModule(opts);

    Target target = arm.makeTarget();
    Compiler compiler(target, arm.makeConfig());
    compiler.compile(*mod);

    EquivalenceReport report = compareNativeEngine(*mod, target);
    EXPECT_TRUE(report.equivalent)
        << "seed " << seed << " on " << arm.targetName << " / "
        << arm.makeConfig().name << ": " << report.message;
}

std::string
armName(const ::testing::TestParamInfo<SeedAndArm> &info)
{
    const auto [seed, armIdx] = info.param;
    std::string cfg = kArms[armIdx].makeConfig().name;
    for (char &c : cfg)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return "seed" + std::to_string(seed) + "_" +
           kArms[armIdx].targetName + "_" + cfg;
}

// Seeds 500..700 (200 random programs) × 11 arms = 2200 compiled
// programs executed under both engines — disjoint from the other
// suites' seed ranges.
INSTANTIATE_TEST_SUITE_P(
    Sweep, NativeDifferential,
    ::testing::Combine(::testing::Range<uint64_t>(500, 700),
                       ::testing::Range<size_t>(0, std::size(kArms))),
    armName);

// A smaller sweep re-running a slice of the matrix with fusion off
// (fusion must be invisible to the native tier: records keep their
// srcOp and the compiled code is per-record either way) and on the
// *unoptimized* module shape (every check explicit).
class NativeDifferentialShapes
    : public ::testing::TestWithParam<SeedAndArm>
{
};

TEST_P(NativeDifferentialShapes, FusionOffAndUnoptimizedShapes)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    const auto [seed, armIdx] = GetParam();
    const Arm &arm = kArms[armIdx];

    GeneratorOptions opts;
    opts.seed = seed;
    std::unique_ptr<Module> mod = generateRandomModule(opts);
    Target target = arm.makeTarget();

    EquivalenceReport unopt = compareNativeEngine(*mod, target);
    EXPECT_TRUE(unopt.equivalent)
        << "seed " << seed << " unoptimized on " << arm.targetName
        << ": " << unopt.message;

    Compiler compiler(target, arm.makeConfig());
    compiler.compile(*mod);

    DecodeOptions noFuse;
    noFuse.fuse = false;
    EquivalenceReport plain = compareNativeEngine(*mod, target, noFuse);
    EXPECT_TRUE(plain.equivalent)
        << "seed " << seed << " on " << arm.targetName << " / "
        << arm.makeConfig().name << " (fusion off): " << plain.message;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NativeDifferentialShapes,
    ::testing::Combine(::testing::Range<uint64_t>(500, 520),
                       ::testing::Range<size_t>(0, std::size(kArms))),
    armName);

// ---------------------------------------------------------------------------
// Mixed native / interpreted call stacks
// ---------------------------------------------------------------------------

TEST(NativeMixedDispatch, FilteredFunctionsFallBackPerFunction)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();

    for (uint64_t seed = 500; seed < 510; ++seed) {
        GeneratorOptions opts;
        opts.seed = seed;
        auto mod = generateRandomModule(opts);
        Compiler compiler(target, config);
        compiler.compile(*mod);

        // Alternate functions native / interpreted: calls cross the
        // boundary in both directions.
        NativeEngineOptions alternate;
        alternate.nativeFilter = [](FunctionId id) { return id % 2 == 0; };
        EquivalenceReport mixed =
            compareNativeEngine(*mod, target, {}, alternate);
        EXPECT_TRUE(mixed.equivalent)
            << "seed " << seed << " mixed-dispatch: " << mixed.message;

        // Everything filtered: the engine must degrade to the fast
        // interpreter wholesale (the non-x86-64 code path, on x86-64).
        NativeEngineOptions none;
        none.nativeFilter = [](FunctionId) { return false; };
        EquivalenceReport fallback =
            compareNativeEngine(*mod, target, {}, none);
        EXPECT_TRUE(fallback.equivalent)
            << "seed " << seed << " full-fallback: " << fallback.message;
    }
}

// ---------------------------------------------------------------------------
// Machine-code shape: the implicit check really is zero instructions
// ---------------------------------------------------------------------------

/** main: one checked field read off a parameter-like local ref. */
std::unique_ptr<Module>
buildFieldReadModule(bool throughNull)
{
    auto mod = std::make_unique<Module>();
    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId obj;
    if (throughNull) {
        obj = b.constNull();
    } else {
        obj = b.newObject(0, 24);
        b.putField(obj, 8, b.constInt(41));
    }
    ValueId v = b.getField(obj, 8, Type::I32);
    b.ret(b.binop(Opcode::IAdd, v, b.constInt(1)));
    return mod;
}

TEST(NativeCheckBytes, ImplicitChecksCompileToZeroInstructions)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();
    auto mod = buildFieldReadModule(false);
    Compiler compiler(target, makeNoOptTrapConfig());
    compiler.compile(*mod);

    FunctionId entry = mod->findFunction("main");
    // Pin the baseline backend: these byte-layout assertions describe
    // the per-record lowering, and must not flip when the suite runs
    // under TRAPJIT_NATIVE_BACKEND=optimized.
    NativeEngineOptions baselineOpts;
    baselineOpts.backend = NativeBackend::Baseline;
    NativeEngine engine(*mod, target, {}, nullptr, {}, nullptr,
                        baselineOpts);
    const NativeCode *nc = engine.nativeCode(entry);
    ASSERT_NE(nullptr, nc) << engine.unsupportedReason(entry);
    ASSERT_GT(nc->implicitChecksCompiled, 0u)
        << "trap config did not produce implicit checks";
    EXPECT_EQ(0u, nc->implicitNullCheckBytes);

    // Record-level disassembly check: every implicit NullCheck record
    // is *exactly* the budget preamble — zero check instructions — and
    // every explicit one is preamble + slot load + compare-and-branch.
    auto df = decodeFunction(mod->function(entry), target);
    ASSERT_EQ(df->code.size() + 1, nc->recordOffsets.size());
    size_t implicitSeen = 0;
    for (size_t i = 0; i < df->code.size(); ++i) {
        if (df->code[i].srcOp != Opcode::NullCheck)
            continue;
        uint32_t bytes = nc->recordOffsets[i + 1] - nc->recordOffsets[i];
        if (df->code[i].flavor == CheckFlavor::Implicit) {
            EXPECT_EQ(kNativeBudgetPreambleBytes +
                          kNativeImplicitNullCheckBytes,
                      bytes)
                << "implicit check at record " << i
                << " emitted real instructions";
            ++implicitSeen;
        } else {
            EXPECT_EQ(kNativeBudgetPreambleBytes + 7 /* slot load */ +
                          kNativeExplicitNullCheckBytes,
                      bytes)
                << "explicit check at record " << i;
        }
    }
    EXPECT_GT(implicitSeen, 0u);

    // And the code still runs correctly.
    ExecResult r = engine.run(entry, {});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(42, r.value.i);
}

TEST(NativeCheckBytes, ExplicitChecksCarryTheCompareAndBranch)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();
    auto mod = buildFieldReadModule(false);
    Compiler compiler(target, makeNoOptNoTrapConfig());
    compiler.compile(*mod);

    FunctionId entry = mod->findFunction("main");
    NativeEngineOptions baselineOpts;
    baselineOpts.backend = NativeBackend::Baseline;
    NativeEngine engine(*mod, target, {}, nullptr, {}, nullptr,
                        baselineOpts);
    const NativeCode *nc = engine.nativeCode(entry);
    ASSERT_NE(nullptr, nc) << engine.unsupportedReason(entry);
    EXPECT_EQ(0u, nc->implicitChecksCompiled);
    ASSERT_GT(nc->explicitChecksCompiled, 0u);
    EXPECT_EQ(nc->explicitChecksCompiled * kNativeExplicitNullCheckBytes,
              nc->explicitNullCheckBytes);
}

// ---------------------------------------------------------------------------
// The trap path, for real
// ---------------------------------------------------------------------------

TEST(NativeTrap, GuardPageFaultBecomesTheInterpreterIdenticalNpe)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();
    auto mod = buildFieldReadModule(true);
    Compiler compiler(target, makeNoOptTrapConfig());
    compiler.compile(*mod);

    FunctionId entry = mod->findFunction("main");

    // Both engines must agree on everything observable...
    EquivalenceReport report = compareNativeEngine(*mod, target);
    EXPECT_TRUE(report.equivalent) << report.message;

    // ...and the native run must have taken a *real* hardware trap.
    NativeEngine engine(*mod, target);
    const NativeCode *nc = engine.nativeCode(entry);
    ASSERT_NE(nullptr, nc) << engine.unsupportedReason(entry);
    ASSERT_GT(nc->implicitChecksCompiled, 0u);
    ExecResult r = engine.run(entry, {});
    EXPECT_EQ(ExecResult::Outcome::Threw, r.outcome);
    EXPECT_EQ(ExcKind::NullPointer, r.exception);
    EXPECT_EQ(1u, r.stats.trapsTaken);

    FastInterpreter fast(*mod, target);
    ExecResult fr = fast.run(entry, {});
    EXPECT_EQ(ExecResult::Outcome::Threw, fr.outcome);
    EXPECT_EQ(ExcKind::NullPointer, fr.exception);
    EXPECT_EQ(r.stats.trapsTaken, fr.stats.trapsTaken);
}

// ---------------------------------------------------------------------------
// Instruction-budget parity
// ---------------------------------------------------------------------------

TEST(NativeBudget, BudgetHardFaultMessageMatchesFastInterpreter)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    auto build = [] {
        auto mod = std::make_unique<Module>();
        Function &fn = mod->addFunction("main", Type::I32);
        IRBuilder b(fn);
        b.startBlock();
        ValueId i = fn.addLocal(Type::I32);
        b.move(i, b.constInt(0));
        BasicBlock &head = fn.newBlock();
        BasicBlock &body = fn.newBlock();
        BasicBlock &exit = fn.newBlock();
        b.jump(head);
        b.atEnd(head);
        ValueId cond = b.cmp(Opcode::ICmp, CmpPred::LT, i,
                             b.constInt(1000000));
        b.branch(cond, body, exit);
        b.atEnd(body);
        b.move(i, b.binop(Opcode::IAdd, i, b.constInt(1)));
        b.jump(head);
        b.atEnd(exit);
        b.ret(i);
        return mod;
    };

    Target target = makeIA32WindowsTarget();
    InterpOptions options;
    options.maxInstructions = 100;

    auto mod = build();
    std::string fastMessage;
    std::string nativeMessage;
    uint64_t fastCount = 0;
    uint64_t nativeCount = 0;
    {
        FastInterpreter fast(*mod, target, options);
        try {
            fast.run(mod->findFunction("main"), {});
            FAIL() << "fast engine did not hit the budget";
        } catch (const HardFault &fault) {
            fastMessage = fault.what();
            fastCount = fast.stats().instructions;
        }
    }
    {
        NativeEngine engine(*mod, target, options);
        try {
            engine.run(mod->findFunction("main"), {});
            FAIL() << "native engine did not hit the budget";
        } catch (const HardFault &fault) {
            nativeMessage = fault.what();
            nativeCount = engine.stats().instructions;
        }
    }
    EXPECT_EQ(fastMessage, nativeMessage);
    EXPECT_EQ(fastCount, nativeCount);
}

// ---------------------------------------------------------------------------
// Cache sharing with the compile service
// ---------------------------------------------------------------------------

TEST(NativeCodeCacheSharing, ServicePrecompilesAndEngineReuses)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    GeneratorOptions opts;
    opts.seed = 515151;
    auto mod = generateRandomModule(opts);
    Target target = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();

    CompileServiceOptions serviceOpts;
    serviceOpts.numWorkers = 2;
    CompileService service(target, serviceOpts);
    ServiceReport report = service.compileModule(*mod, config);
    EXPECT_GT(report.counters.functionsNativeCompiled, 0u);
    EXPECT_GE(report.counters.nativeCompileSeconds, 0.0);
    EXPECT_GE(service.nativeCodeCache()->size(),
              report.counters.functionsNativeCompiled);

    // The service precompiles the trace-free variant the bench
    // harnesses execute; an engine running with recordTrace off shares
    // those entries, and a second compile of the identical module
    // compiles nothing new.
    InterpOptions traceFree;
    traceFree.recordTrace = false;
    NativeEngine engine(*mod, target, traceFree, service.decodedCache(),
                        DecodeOptions{}, service.nativeCodeCache());
    ExecResult r = engine.run(mod->findFunction("main"), {});
    (void)r;
    auto again = generateRandomModule(opts);
    ServiceReport second = service.compileModule(*again, config);
    EXPECT_EQ(0u, second.counters.functionsNativeCompiled);
}

// ---------------------------------------------------------------------------
// The big-offset regime: accesses beyond the protected area
// ---------------------------------------------------------------------------

// Figure 5's BigOffset rule: an access whose offset can land past the
// target's protected area must never ride the hardware trap — phase 2
// has to leave (or re-materialize) an explicit check.  The big_offset
// workload profile pins the generator to such offsets (16 KiB — past
// every target's trap area — and the >512 KB kMaxFieldOffset regime),
// so these sweeps hit the rule on every arm instead of relying on the
// occasional draw from the uniform generator.

/** Arms that convert explicit checks into trap-implicit ones. */
const Arm kTrapArms[] = {
    {"ia32", makeIA32WindowsTarget, makeNoOptTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeNewFullConfig},
    {"sparc", makeSPARCTarget, makeNewFullConfig},
    {"s390", makeS390Target, makeNewFullConfig},
};

std::unique_ptr<Module>
buildBigOffsetModule(uint64_t seed)
{
    const WorkloadProfile *preset = findWorkloadProfile("big_offset");
    EXPECT_NE(preset, nullptr);
    WorkloadProfile p = *preset;
    p.seed = seed;
    return generateWorkloadModule(p);
}

// IR-shape half (host-independent, no native tier needed): after any
// trap-converting arm compiles a big-offset module, no field access at
// an offset the target cannot trap on may claim implicit coverage.
TEST(NativeBigOffset, BeyondGuardAccessesStayExplicitUnderTrapArms)
{
    for (const Arm &arm : kTrapArms) {
        Target target = arm.makeTarget();
        for (uint64_t seed = 700; seed < 712; ++seed) {
            auto mod = buildBigOffsetModule(seed);
            Compiler compiler(target, arm.makeConfig());
            compiler.compile(*mod);

            size_t beyondGuard = 0;
            for (FunctionId f = 0; f < mod->numFunctions(); ++f) {
                const Function &fn = mod->function(f);
                for (BlockId bid = 0; bid < fn.numBlocks(); ++bid) {
                    for (const Instruction &inst :
                         fn.block(bid).insts()) {
                        if (inst.op != Opcode::GetField &&
                            inst.op != Opcode::PutField)
                            continue;
                        if (inst.imm < target.trapAreaBytes)
                            continue;
                        ++beyondGuard;
                        EXPECT_FALSE(inst.exceptionSite)
                            << "seed " << seed << " on "
                            << arm.targetName << " / "
                            << arm.makeConfig().name << ": " << fn.name()
                            << " claims a trap at offset " << inst.imm
                            << ", past the " << target.trapAreaBytes
                            << "-byte protected area";
                    }
                }
            }
            // The profile guarantees the regime is actually present.
            EXPECT_GT(beyondGuard, 0u) << "seed " << seed;
        }
    }
}

// Execution half: the compiled big-offset programs must still be
// bit-identical across fast and native engines — the explicit checks
// the rule preserves fire exactly like the interpreter's.
TEST(NativeBigOffset, BigOffsetProgramsMatchAcrossEngines)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    for (const Arm &arm : kTrapArms) {
        Target target = arm.makeTarget();
        for (uint64_t seed = 700; seed < 708; ++seed) {
            auto mod = buildBigOffsetModule(seed);
            Compiler compiler(target, arm.makeConfig());
            compiler.compile(*mod);
            EquivalenceReport report = compareNativeEngine(*mod, target);
            EXPECT_TRUE(report.equivalent)
                << "big_offset seed " << seed << " on " << arm.targetName
                << " / " << arm.makeConfig().name << ": "
                << report.message;
        }
    }
}

// ---------------------------------------------------------------------------
// Optimized backend: regalloc + section-5.4 speculation sweep
// ---------------------------------------------------------------------------

/** compareNativeEngine with the optimized backend pinned. */
EquivalenceReport
compareOptimized(Module &mod, const Target &target)
{
    NativeEngineOptions opts;
    opts.backend = NativeBackend::Optimized;
    return compareNativeEngine(mod, target, {}, opts);
}

class OptimizedDifferential : public ::testing::TestWithParam<SeedAndArm>
{
};

// The same 11-arm matrix as the baseline sweep, with linear-scan
// register allocation, batched budget runs and speculated loads in the
// code under test.  Every deopt side-exit replays on the fast
// interpreter, so bit-identity here covers the whole deopt protocol.
TEST_P(OptimizedDifferential, OptimizedMatchesFastInterpreter)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    const auto [seed, armIdx] = GetParam();
    const Arm &arm = kArms[armIdx];

    GeneratorOptions opts;
    opts.seed = seed;
    std::unique_ptr<Module> mod = generateRandomModule(opts);

    Target target = arm.makeTarget();
    Compiler compiler(target, arm.makeConfig());
    compiler.compile(*mod);

    EquivalenceReport report = compareOptimized(*mod, target);
    EXPECT_TRUE(report.equivalent)
        << "seed " << seed << " on " << arm.targetName << " / "
        << arm.makeConfig().name << " (optimized): " << report.message;
}

// Seeds 800..860 (disjoint from the baseline sweep) × 11 arms.
INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizedDifferential,
    ::testing::Combine(::testing::Range<uint64_t>(800, 860),
                       ::testing::Range<size_t>(0, std::size(kArms))),
    armName);

// Mid-loop deopt, for real: the null_storm profile pushes nulls through
// checked accesses, so under the no-opt trap arms (checks stay explicit
// — exactly what section-5.4 speculation pairs on) speculated loads
// actually trap and the frame must resume on the interpreter with the
// canonical slot file.  At least one seed must take a real deopt or the
// sweep is vacuous.
TEST(OptimizedDeopt, NullStormSpeculatedLoadsTrapAndReplay)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();
    const WorkloadProfile *preset = findWorkloadProfile("null_storm");
    ASSERT_NE(preset, nullptr);

    size_t deopts = 0;
    size_t speculated = 0;
    for (uint64_t seed = 900; seed < 916; ++seed) {
        WorkloadProfile p = *preset;
        p.seed = seed;
        auto mod = generateWorkloadModule(p);
        Compiler compiler(target, makeNoOptTrapConfig());
        compiler.compile(*mod);

        EquivalenceReport report = compareOptimized(*mod, target);
        EXPECT_TRUE(report.equivalent)
            << "null_storm seed " << seed << ": " << report.message;

        NativeEngineOptions opts;
        opts.backend = NativeBackend::Optimized;
        NativeEngine engine(*mod, target, {}, nullptr, {}, nullptr,
                            opts);
        ServiceCounters c;
        engine.run(mod->findFunction("main"), {});
        engine.addOptimizedCounters(c);
        deopts += c.deoptsTaken;
        speculated += c.loadsSpeculated;
    }
    EXPECT_GT(speculated, 0u)
        << "no null_storm seed produced a speculated load";
    EXPECT_GT(deopts, 0u)
        << "no null_storm seed took a deopt side-exit";
}

// The big-offset regime under the optimized backend: accesses past the
// protected area keep their explicit checks (they are never speculated
// — a trap there would not be a guard-page fault), and the programs
// stay bit-identical.
TEST(OptimizedDeopt, BigOffsetProgramsMatchUnderOptimizedBackend)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    for (const Arm &arm : kTrapArms) {
        Target target = arm.makeTarget();
        for (uint64_t seed = 700; seed < 708; ++seed) {
            auto mod = buildBigOffsetModule(seed);
            Compiler compiler(target, arm.makeConfig());
            compiler.compile(*mod);
            EquivalenceReport report = compareOptimized(*mod, target);
            EXPECT_TRUE(report.equivalent)
                << "big_offset seed " << seed << " on " << arm.targetName
                << " / " << arm.makeConfig().name
                << " (optimized): " << report.message;
        }
    }
}

// Mixed dispatch under the optimized backend: deopt replays and
// interpreted callees share one frame protocol.
TEST(OptimizedDeopt, MixedDispatchMatchesUnderOptimizedBackend)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();
    for (uint64_t seed = 800; seed < 808; ++seed) {
        GeneratorOptions opts;
        opts.seed = seed;
        auto mod = generateRandomModule(opts);
        Compiler compiler(target, config);
        compiler.compile(*mod);

        NativeEngineOptions alternate;
        alternate.backend = NativeBackend::Optimized;
        alternate.nativeFilter = [](FunctionId id) { return id % 2 == 0; };
        EquivalenceReport mixed =
            compareNativeEngine(*mod, target, {}, alternate);
        EXPECT_TRUE(mixed.equivalent)
            << "seed " << seed
            << " optimized mixed-dispatch: " << mixed.message;
    }
}

// ---------------------------------------------------------------------------
// Engine selection
// ---------------------------------------------------------------------------

TEST(NativeBackendSelection, EnvVariablePicksOptimizedAndSpeculation)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();

    // Unset env: FromEnv resolves to the baseline.
    ASSERT_EQ(0, unsetenv("TRAPJIT_NATIVE_BACKEND"));
    ASSERT_EQ(0, unsetenv("TRAPJIT_SPECULATE"));
    {
        auto mod = buildFieldReadModule(false);
        Compiler compiler(target, makeNoOptTrapConfig());
        compiler.compile(*mod);
        NativeEngine engine(*mod, target);
        const NativeCode *nc = engine.nativeCode(mod->findFunction("main"));
        ASSERT_NE(nullptr, nc);
        EXPECT_FALSE(nc->optimized);
    }

    // TRAPJIT_NATIVE_BACKEND=optimized selects the optimized backend.
    ASSERT_EQ(0, setenv("TRAPJIT_NATIVE_BACKEND", "optimized", 1));
    {
        auto mod = buildFieldReadModule(false);
        Compiler compiler(target, makeNoOptTrapConfig());
        compiler.compile(*mod);
        NativeEngine engine(*mod, target);
        const NativeCode *nc = engine.nativeCode(mod->findFunction("main"));
        ASSERT_NE(nullptr, nc);
        EXPECT_TRUE(nc->optimized);
        ExecResult r = engine.run(mod->findFunction("main"), {});
        ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
        EXPECT_EQ(42, r.value.i);
    }

    // TRAPJIT_SPECULATE=0 keeps the backend but disables section 5.4.
    ASSERT_EQ(0, setenv("TRAPJIT_SPECULATE", "0", 1));
    {
        auto mod = buildFieldReadModule(false);
        Compiler compiler(target, makeNoOptNoTrapConfig());
        compiler.compile(*mod);
        NativeEngine engine(*mod, target);
        const NativeCode *nc = engine.nativeCode(mod->findFunction("main"));
        ASSERT_NE(nullptr, nc);
        EXPECT_TRUE(nc->optimized);
        EXPECT_EQ(0u, nc->loadsSpeculated);
    }

    ASSERT_EQ(0, unsetenv("TRAPJIT_NATIVE_BACKEND"));
    ASSERT_EQ(0, unsetenv("TRAPJIT_SPECULATE"));
}

TEST(NativeEngineSelection, EnvVariablePicksNative)
{
    ASSERT_EQ(0, setenv("TRAPJIT_INTERP", "native", 1));
    EXPECT_EQ(InterpEngineKind::Native, interpEngineFromEnv());
    ASSERT_EQ(0, unsetenv("TRAPJIT_INTERP"));
    EXPECT_EQ(InterpEngineKind::Fast, interpEngineFromEnv());
    EXPECT_STREQ("native", interpEngineName(InterpEngineKind::Native));
}

} // namespace
} // namespace trapjit
