/**
 * @file
 * The paper's headline claims, as executable regression guards.  These
 * are the shapes EXPERIMENTS.md reports; if a change to the optimizer
 * breaks one of them, the reproduction has regressed even if all the
 * soundness tests still pass.
 */

#include <gtest/gtest.h>

#include "workloads/workload.h"

namespace trapjit
{
namespace
{

double
cyclesOf(const char *workload, const Target &target,
         const PipelineConfig &config)
{
    const Workload *w = findWorkload(workload);
    EXPECT_NE(nullptr, w);
    Compiler compiler(target, config);
    WorkloadRun run = runWorkload(*w, compiler, target);
    EXPECT_TRUE(run.ok) << workload << " under " << config.name;
    return run.cycles;
}

/** Section 5.1: trap utilization alone already improves performance. */
TEST(PaperClaims, HardwareTrapBeatsExplicitChecksEverywhere)
{
    Target ia32 = makeIA32WindowsTarget();
    for (const Workload &w : jbytemarkWorkloads()) {
        double noTrap =
            cyclesOf(w.name.c_str(), ia32, makeNoOptNoTrapConfig());
        double trap =
            cyclesOf(w.name.c_str(), ia32, makeNoOptTrapConfig());
        EXPECT_LE(trap, noTrap) << w.name;
    }
}

/** Section 5.1: the new algorithm beats the old one clearly on the
 *  loop-invariant-reference kernels. */
TEST(PaperClaims, NewAlgorithmBeatsOldOnArrayKernels)
{
    Target ia32 = makeIA32WindowsTarget();
    for (const char *name :
         {"String Sort", "FP Emulation", "Assignment",
          "IDEA encryption", "Neural Net", "LU Decomposition"}) {
        double oldCycles =
            cyclesOf(name, ia32, makeOldNullCheckConfig());
        double newCycles = cyclesOf(name, ia32, makeNewFullConfig());
        EXPECT_LT(newCycles, oldCycles * 0.97)
            << name << ": the new algorithm must win by >= 3%";
    }
}

/** Section 5.1: "the architecture dependent optimization is
 *  particularly effective for mtrt after method inlining". */
TEST(PaperClaims, Phase2BeatsPhase1OnMtrt)
{
    Target ia32 = makeIA32WindowsTarget();
    double phase1 = cyclesOf("mtrt", ia32, makeNewPhase1OnlyConfig());
    double full = cyclesOf("mtrt", ia32, makeNewFullConfig());
    EXPECT_LT(full, phase1 * 0.995)
        << "phase 2 must visibly win on mtrt's inlined accessors";
}

/** Section 5.4: speculation is very effective for Neural Net. */
TEST(PaperClaims, SpeculationHelpsNeuralNetOnAIX)
{
    Target aix = makePPCAIXTarget();
    double noSpec =
        cyclesOf("Neural Net", aix, makeAIXNoSpeculationConfig());
    double spec =
        cyclesOf("Neural Net", aix, makeAIXSpeculationConfig());
    EXPECT_LT(spec, noSpec * 0.95)
        << "speculation must win >= 5% on the Figure 6 loop";
}

/** Section 5.4: Illegal Implicit beats No Speculation everywhere. */
TEST(PaperClaims, IllegalImplicitBeatsNoSpeculation)
{
    Target aix = makePPCAIXTarget();
    Target lying = makeIllegalImplicitAIXTarget();
    for (const Workload &w : specjvmWorkloads()) {
        Compiler noSpec(aix, makeAIXNoSpeculationConfig());
        Compiler illegal(lying, makeAIXIllegalImplicitConfig());
        WorkloadRun a = runWorkload(w, noSpec, aix);
        WorkloadRun b = runWorkload(w, illegal, aix);
        ASSERT_TRUE(a.ok && b.ok) << w.name;
        EXPECT_LE(b.cycles, a.cycles * 1.0001) << w.name;
    }
}

/** Section 5.2 / Figure 10: the Math.* instruction selection gap. */
TEST(PaperClaims, AltVMLosesFourierWithoutIntrinsics)
{
    Target ia32 = makeIA32WindowsTarget();
    double ours = cyclesOf("Fourier", ia32, makeNewFullConfig());
    double altvm = cyclesOf("Fourier", ia32, makeAltVMConfig());
    EXPECT_GT(altvm, ours * 2.0)
        << "without exp/sin/cos selection, Fourier collapses "
           "(the paper's HotSpot shows the same cliff)";
}

/** Section 5.3: the new algorithm's compile-time cost is bounded and
 *  the null-check share is far larger under NEW than OLD. */
TEST(PaperClaims, CompileTimeBreakdownShape)
{
    Target ia32 = makeIA32WindowsTarget();
    const Workload *w = findWorkload("javac");
    double newNull = 0, newTotal = 0, oldNull = 0, oldTotal = 0;
    for (int rep = 0; rep < 10; ++rep) {
        auto m1 = w->build();
        Compiler newJit(ia32, makeNewFullConfig());
        CompileReport r1 = newJit.compile(*m1);
        newNull += r1.timings.nullCheckSeconds;
        newTotal += r1.timings.total();

        auto m2 = w->build();
        Compiler oldJit(ia32, makeOldNullCheckConfig());
        CompileReport r2 = oldJit.compile(*m2);
        oldNull += r2.timings.nullCheckSeconds;
        oldTotal += r2.timings.total();
    }
    EXPECT_GT(newNull, oldNull * 2.0)
        << "the new optimization costs several times the old one";
    EXPECT_LT(newNull / newTotal, 0.6)
        << "but stays a minority of total compilation";
    EXPECT_GT(newTotal, oldTotal)
        << "total compile time increases under the new algorithm";
}

} // namespace
} // namespace trapjit
