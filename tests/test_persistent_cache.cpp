/**
 * @file
 * Tests of the persistent cross-run compile cache
 * (jit/persistent_cache.h) and the code-memory governance it rides
 * with (codegen/native/code_buffer_pool.h, CodeRegistry eviction):
 *
 *  - roundtrip: entries written by one handle are served, bit-equal,
 *    by a fresh handle onto the same directory;
 *  - warm service start: a CompileService restarted on a populated
 *    cache directory compiles NOTHING — every job is a persistent hit;
 *  - crash-safety: a torn segment tail only loses the torn entry,
 *    a flipped payload byte demotes exactly that entry to a miss
 *    (counted corrupt), and a wrong version header self-invalidates
 *    the whole directory instead of serving stale bytes;
 *  - concurrency: 8 writer threads with private handles populate one
 *    shared directory; a fresh handle then sees every entry intact;
 *  - governance: a small code budget forces CodeRegistry to evict
 *    published blocks (functions drop to Cold), execution stays
 *    bit-identical, and evicted functions re-promote on demand.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "codegen/native/code_registry.h"
#include "codegen/native/native_compiler.h"
#include "codegen/native/tiered_engine.h"
#include "ir/module.h"
#include "ir/serializer.h"
#include "jit/compile_service.h"
#include "jit/compiler.h"
#include "support/hash.h"
#include "testing/random_program.h"
#include "testing/workload_gen/workload_gen.h"

#if !defined(__SANITIZE_ADDRESS__) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define __SANITIZE_ADDRESS__ 1
#endif
#endif

namespace trapjit
{
namespace
{

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kAsanActive = true;
#else
constexpr bool kAsanActive = false;
#endif

/** A fresh temp directory, removed by the destructor. */
struct TempDir
{
    explicit TempDir(const std::string &tag)
    {
        path = std::filesystem::temp_directory_path() /
               ("trapjit-test-pcache-" + tag + "-" +
                std::to_string(::getpid()));
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    std::string str() const { return path.string(); }
    std::filesystem::path path;
};

Hash128
key(uint64_t n)
{
    Hasher h;
    h.update(n);
    h.update(~n);
    return h.digest();
}

PersistentCache::Value
value(uint64_t n)
{
    return std::make_shared<const std::string>(
        "payload-" + std::to_string(n) + "-" +
        std::string(64 + n % 7, static_cast<char>('a' + n % 26)));
}

std::vector<std::unique_ptr<Module>>
buildRandomModules(uint64_t first_seed, size_t count)
{
    std::vector<std::unique_ptr<Module>> mods;
    for (size_t i = 0; i < count; ++i) {
        GeneratorOptions opts;
        opts.seed = first_seed + i;
        mods.push_back(generateRandomModule(opts));
    }
    return mods;
}

std::vector<Module *>
pointers(const std::vector<std::unique_ptr<Module>> &mods)
{
    std::vector<Module *> out;
    for (const auto &mod : mods)
        out.push_back(mod.get());
    return out;
}

std::vector<std::string>
perFunctionIR(const std::vector<std::unique_ptr<Module>> &mods)
{
    std::vector<std::string> out;
    for (const auto &mod : mods)
        for (FunctionId f = 0; f < mod->numFunctions(); ++f)
            out.push_back(serializeFunctionToString(mod->function(f)));
    return out;
}

// ---------------------------------------------------------------------
// Roundtrip and reopen
// ---------------------------------------------------------------------

TEST(PersistentCache, RoundtripAcrossHandles)
{
    TempDir dir("roundtrip");
    constexpr uint64_t kEntries = 40;

    {
        auto cache = PersistentCache::open(dir.str());
        ASSERT_NE(nullptr, cache);
        for (uint64_t n = 0; n < kEntries; ++n)
            cache->insert(key(n), value(n));
        EXPECT_EQ(kEntries, cache->size());
        // First writer wins: re-inserting different bytes is a no-op.
        cache->insert(key(0), value(999));
        auto hit = cache->lookup(key(0));
        ASSERT_NE(nullptr, hit);
        EXPECT_EQ(*value(0), *hit);
    }

    // A fresh handle (fresh process, as far as the files know) serves
    // everything back bit-equal and misses unknown keys.
    auto reopened = PersistentCache::open(dir.str());
    ASSERT_NE(nullptr, reopened);
    EXPECT_EQ(kEntries, reopened->size());
    for (uint64_t n = 0; n < kEntries; ++n) {
        auto hit = reopened->lookup(key(n));
        ASSERT_NE(nullptr, hit) << "entry " << n;
        EXPECT_EQ(*value(n), *hit) << "entry " << n;
    }
    EXPECT_EQ(nullptr, reopened->lookup(key(kEntries + 1)));

    PersistentCacheStats stats = reopened->stats();
    EXPECT_EQ(kEntries, stats.hits);
    EXPECT_EQ(1u, stats.misses);
    EXPECT_EQ(0u, stats.corruptEntries);
    EXPECT_GT(stats.bytesMapped, 0u);
}

TEST(PersistentCache, EmptyDirIsNoCache)
{
    EXPECT_EQ(nullptr, PersistentCache::open(""));
}

// ---------------------------------------------------------------------
// Warm service start
// ---------------------------------------------------------------------

TEST(PersistentCache, WarmServiceStartCompilesNothing)
{
    TempDir dir("warmstart");
    Target target = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();
    constexpr uint64_t kSeed = 77;
    constexpr size_t kModules = 4;

    CompileServiceOptions options;
    options.numWorkers = 4;
    options.cacheDir = dir.str();

    std::vector<std::string> coldIR;
    size_t totalFns = 0;
    {
        CompileService cold(target, options);
        ASSERT_NE(nullptr, cold.persistentCache());
        auto mods = buildRandomModules(kSeed, kModules);
        auto ptrs = pointers(mods);
        for (Module *mod : ptrs)
            totalFns += mod->numFunctions();
        ServiceReport rep = cold.compileModules(ptrs, config);
        EXPECT_GT(rep.counters.functionsCompiled, 0u);
        EXPECT_EQ(0u, rep.counters.persistentHits);
        EXPECT_GT(rep.counters.persistentMisses, 0u);
        coldIR = perFunctionIR(mods);
    }

    // The restart: a brand-new service (cold in-memory cache) on the
    // same directory must not run the pipeline at all.
    CompileService warm(target, options);
    ASSERT_NE(nullptr, warm.persistentCache());
    auto mods = buildRandomModules(kSeed, kModules);
    auto ptrs = pointers(mods);
    ServiceReport rep = warm.compileModules(ptrs, config);
    EXPECT_EQ(0u, rep.counters.functionsCompiled);
    EXPECT_EQ(totalFns, rep.counters.cacheHits);
    EXPECT_GT(rep.counters.persistentHits, 0u);
    EXPECT_GT(rep.counters.bytesMapped, 0u);
    EXPECT_EQ(coldIR, perFunctionIR(mods));
}

TEST(PersistentCache, DisabledPersistentTierIgnoresDir)
{
    TempDir dir("disabled");
    Target target = makeIA32WindowsTarget();

    CompileServiceOptions options;
    options.numWorkers = 2;
    options.cacheDir = dir.str();
    options.enablePersistent = false;
    CompileService service(target, options);
    EXPECT_EQ(nullptr, service.persistentCache());

    auto mods = buildRandomModules(5, 2);
    auto ptrs = pointers(mods);
    ServiceReport rep =
        service.compileModules(ptrs, makeNewFullConfig());
    EXPECT_EQ(0u, rep.counters.persistentHits);
    EXPECT_EQ(0u, rep.counters.persistentMisses);
    // Nothing was written: the directory holds no cache files.
    EXPECT_FALSE(std::filesystem::exists(dir.path / "segment.tjs"));
}

// ---------------------------------------------------------------------
// Crash-safety and corruption
// ---------------------------------------------------------------------

TEST(PersistentCache, TruncatedTailLosesOnlyTheTornEntry)
{
    TempDir dir("torn");
    constexpr uint64_t kEntries = 12;
    {
        auto cache = PersistentCache::open(dir.str());
        ASSERT_NE(nullptr, cache);
        for (uint64_t n = 0; n + 1 < kEntries; ++n)
            cache->insert(key(n), value(n));
    }

    // A crash mid-append tears the single write(): the segment gains a
    // record header plus part of the payload, and — crucially — the
    // index never learns about it (the slot and the coveredBytes
    // watermark publish only after the append completes).  Craft
    // exactly that tail by hand for the last key.
    std::filesystem::path seg = dir.path / "segment.tjs";
    uint64_t cleanSize = std::filesystem::file_size(seg);
    {
        Hash128 k = key(kEntries - 1);
        PersistentCache::Value v = value(kEntries - 1);
        Hash128 sum = hashBytes(*v);
        std::string record(40 + v->size(), '\0');
        uint8_t *p = reinterpret_cast<uint8_t *>(record.data());
        const uint32_t magic = 0x4E454A54; // "TJEN"
        const uint32_t size = static_cast<uint32_t>(v->size());
        std::memcpy(p + 0, &magic, 4);
        std::memcpy(p + 4, &size, 4);
        std::memcpy(p + 8, &k.hi, 8);
        std::memcpy(p + 16, &k.lo, 8);
        std::memcpy(p + 24, &sum.hi, 8);
        std::memcpy(p + 32, &sum.lo, 8);
        std::memcpy(p + 40, v->data(), v->size());
        std::ofstream out(seg, std::ios::binary | std::ios::app);
        ASSERT_TRUE(out.is_open());
        out.write(record.data(),
                  static_cast<std::streamsize>(record.size() - 5));
    }
    ASSERT_GT(std::filesystem::file_size(seg), cleanSize);

    // Reopen: the tail scan stops at the torn record and repairs the
    // file by truncating it; every completed entry is unaffected.
    auto reopened = PersistentCache::open(dir.str());
    ASSERT_NE(nullptr, reopened);
    EXPECT_EQ(kEntries - 1, reopened->size());
    EXPECT_EQ(cleanSize, std::filesystem::file_size(seg));
    for (uint64_t n = 0; n + 1 < kEntries; ++n) {
        auto hit = reopened->lookup(key(n));
        ASSERT_NE(nullptr, hit) << "entry " << n;
        EXPECT_EQ(*value(n), *hit) << "entry " << n;
    }
    EXPECT_EQ(nullptr, reopened->lookup(key(kEntries - 1)));

    // The retried append (what the restarted producer would do) lands
    // on the repaired tail and is served to later handles.
    reopened->insert(key(kEntries - 1), value(kEntries - 1));
    auto third = PersistentCache::open(dir.str());
    ASSERT_NE(nullptr, third);
    EXPECT_EQ(kEntries, third->size());
    auto hit = third->lookup(key(kEntries - 1));
    ASSERT_NE(nullptr, hit);
    EXPECT_EQ(*value(kEntries - 1), *hit);
}

TEST(PersistentCache, FlippedPayloadByteDemotesThatEntryToAMiss)
{
    TempDir dir("bitrot");
    constexpr uint64_t kEntries = 8;
    uint64_t firstPayloadAt = 0;
    {
        auto cache = PersistentCache::open(dir.str());
        ASSERT_NE(nullptr, cache);
        // Segment layout: 24-byte file header, then per entry a
        // 40-byte header followed by the payload.
        firstPayloadAt = 24 + 40;
        for (uint64_t n = 0; n < kEntries; ++n)
            cache->insert(key(n), value(n));
    }

    // Flip one byte inside entry 0's payload.
    {
        std::fstream seg(dir.path / "segment.tjs",
                         std::ios::in | std::ios::out |
                             std::ios::binary);
        ASSERT_TRUE(seg.is_open());
        seg.seekg(static_cast<std::streamoff>(firstPayloadAt + 3));
        char c = 0;
        seg.get(c);
        seg.seekp(static_cast<std::streamoff>(firstPayloadAt + 3));
        seg.put(static_cast<char>(c ^ 0x40));
    }

    auto reopened = PersistentCache::open(dir.str());
    ASSERT_NE(nullptr, reopened);
    // Checksums validate lazily: the damaged entry turns into a miss
    // on its first lookup and is counted corrupt, never served.
    EXPECT_EQ(nullptr, reopened->lookup(key(0)));
    PersistentCacheStats stats = reopened->stats();
    EXPECT_EQ(1u, stats.corruptEntries);
    // Its neighbors are untouched.
    for (uint64_t n = 1; n < kEntries; ++n) {
        auto hit = reopened->lookup(key(n));
        ASSERT_NE(nullptr, hit) << "entry " << n;
        EXPECT_EQ(*value(n), *hit) << "entry " << n;
    }
}

TEST(PersistentCache, WrongVersionHeaderSelfInvalidates)
{
    TempDir dir("version");
    {
        auto cache = PersistentCache::open(dir.str());
        ASSERT_NE(nullptr, cache);
        for (uint64_t n = 0; n < 6; ++n)
            cache->insert(key(n), value(n));
    }

    // Stamp a future format version into the segment header (bytes
    // 4..7) — an old binary reading a new cache, or vice versa.
    {
        std::fstream seg(dir.path / "segment.tjs",
                         std::ios::in | std::ios::out |
                             std::ios::binary);
        ASSERT_TRUE(seg.is_open());
        seg.seekp(4);
        uint32_t version = 99;
        seg.write(reinterpret_cast<const char *>(&version),
                  sizeof version);
    }

    // The mismatch must wipe the directory, not serve stale bytes.
    auto reopened = PersistentCache::open(dir.str());
    ASSERT_NE(nullptr, reopened);
    EXPECT_EQ(0u, reopened->size());
    EXPECT_EQ(nullptr, reopened->lookup(key(0)));

    // ... and the fresh directory is fully functional.
    reopened->insert(key(100), value(100));
    auto third = PersistentCache::open(dir.str());
    ASSERT_NE(nullptr, third);
    EXPECT_EQ(1u, third->size());
    auto hit = third->lookup(key(100));
    ASSERT_NE(nullptr, hit);
    EXPECT_EQ(*value(100), *hit);
}

// ---------------------------------------------------------------------
// Concurrent population of one shared directory
// ---------------------------------------------------------------------

TEST(PersistentCache, EightWritersShareOneDirectory)
{
    TempDir dir("shared");
    constexpr size_t kThreads = 8;
    constexpr uint64_t kSharedKeys = 24;   ///< every thread writes these
    constexpr uint64_t kPrivateKeys = 16;  ///< per-thread disjoint range

    // Each thread opens its own handle — flock is per-open-file-
    // description, so these exclude each other exactly like eight
    // separate processes would.
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&dir, t] {
            auto cache = PersistentCache::open(dir.str());
            ASSERT_NE(nullptr, cache);
            for (uint64_t n = 0; n < kSharedKeys; ++n)
                cache->insert(key(n), value(n));
            uint64_t base = 1000 + t * kPrivateKeys;
            for (uint64_t n = 0; n < kPrivateKeys; ++n)
                cache->insert(key(base + n), value(base + n));
        });
    }
    for (std::thread &th : threads)
        th.join();

    // A fresh handle sees exactly one copy of every key, all valid.
    auto reopened = PersistentCache::open(dir.str());
    ASSERT_NE(nullptr, reopened);
    EXPECT_EQ(kSharedKeys + kThreads * kPrivateKeys, reopened->size());
    for (uint64_t n = 0; n < kSharedKeys; ++n) {
        auto hit = reopened->lookup(key(n));
        ASSERT_NE(nullptr, hit) << "shared entry " << n;
        EXPECT_EQ(*value(n), *hit) << "shared entry " << n;
    }
    for (size_t t = 0; t < kThreads; ++t) {
        uint64_t base = 1000 + t * kPrivateKeys;
        for (uint64_t n = 0; n < kPrivateKeys; ++n) {
            auto hit = reopened->lookup(key(base + n));
            ASSERT_NE(nullptr, hit) << "thread " << t << " entry " << n;
            EXPECT_EQ(*value(base + n), *hit);
        }
    }
    EXPECT_EQ(0u, reopened->stats().corruptEntries);
}

TEST(PersistentCache, TwoServicesPopulateOneDirConcurrently)
{
    TempDir dir("svc-shared");
    Target target = makeIA32WindowsTarget();
    PipelineConfig config = makeNewFullConfig();
    constexpr uint64_t kSeed = 300;
    constexpr size_t kModules = 3;

    CompileServiceOptions options;
    options.numWorkers = 4;
    options.cacheDir = dir.str();
    options.predecode = false;
    options.precompileNative = false;

    // Two services (private in-memory caches, private persistent
    // handles) compile the same batch at once: flock serializes their
    // appends, first writer wins per key.
    std::thread racer([&] {
        CompileService service(target, options);
        auto mods = buildRandomModules(kSeed, kModules);
        auto ptrs = pointers(mods);
        service.compileModules(ptrs, config);
    });
    std::vector<std::string> oneIR;
    {
        CompileService service(target, options);
        auto mods = buildRandomModules(kSeed, kModules);
        auto ptrs = pointers(mods);
        service.compileModules(ptrs, config);
        oneIR = perFunctionIR(mods);
    }
    racer.join();

    // A third, warm service start serves the whole batch from disk.
    CompileService warm(target, options);
    auto mods = buildRandomModules(kSeed, kModules);
    auto ptrs = pointers(mods);
    ServiceReport rep = warm.compileModules(ptrs, config);
    EXPECT_EQ(0u, rep.counters.functionsCompiled);
    EXPECT_EQ(oneIR, perFunctionIR(mods));
}

// ---------------------------------------------------------------------
// Code-budget governance: eviction and re-promotion
// ---------------------------------------------------------------------

TEST(CodeGovernance, BudgetEvictsOldestBlocksAndTheyRepromote)
{
    if (!nativeTierSupported())
        GTEST_SKIP() << "native tier requires x86-64 Linux";
    if (kAsanActive)
        GTEST_SKIP() << "guard-page SIGSEGV recovery is incompatible "
                        "with ASan";

    Target target = makeIA32WindowsTarget();
    const WorkloadProfile *preset = findWorkloadProfile("call_web");
    ASSERT_NE(nullptr, preset);
    WorkloadProfile p = *preset;
    p.seed = 61;
    auto mod = generateWorkloadModule(p);
    Compiler compiler(target, makeNewFullConfig());
    compiler.compile(*mod);
    FunctionId entry = mod->findFunction("main");

    auto registry = std::make_shared<CodeRegistry>(mod->numFunctions());
    // A budget of one byte: every publish is over budget, so each
    // publish evicts all previously published blocks (the block just
    // published is never evicted — there must always be a tier to run).
    registry->setCodeBudget(1);

    TieredOptions opts;
    opts.threshold = 1u << 30; // promotion driven explicitly below
    opts.synchronous = true;
    TieredEngine engine(*mod, target, {}, nullptr, {}, opts, registry,
                        nullptr);

    ExecResult ref = engine.run(entry, {});

    for (FunctionId f = 0; f < mod->numFunctions(); ++f)
        engine.promoteNow(f);

    // Under a one-byte budget at most the last-published block can
    // remain; everything else was evicted through the invalidation
    // path and sits Cold again.
    EXPECT_GT(registry->blocksEvicted(), 0u);
    size_t published = 0;
    for (FunctionId f = 0; f < mod->numFunctions(); ++f)
        if (registry->state(f) == TierState::Published)
            ++published;
    EXPECT_LE(published, 1u);

    // Execution falls back to the interpreter for evicted functions
    // with identical observables.
    engine.reset();
    ExecResult after = engine.run(entry, {});
    EXPECT_EQ(ref.outcome, after.outcome);
    EXPECT_EQ(ref.value.i, after.value.i);

    // An evicted function re-promotes on demand (possibly evicting the
    // current resident in turn) — the lifecycle is a cycle, not a
    // one-way door.
    uint64_t evictedBefore = registry->blocksEvicted();
    engine.promoteNow(entry);
    EXPECT_EQ(TierState::Published, registry->state(entry));
    EXPECT_GE(registry->blocksEvicted(), evictedBefore);
    engine.reset();
    ExecResult again = engine.run(entry, {});
    EXPECT_EQ(ref.outcome, again.outcome);
    EXPECT_EQ(ref.value.i, again.value.i);

    // A generous budget stops evicting.
    registry->setCodeBudget(1ull << 30);
    uint64_t evictedAt = registry->blocksEvicted();
    for (FunctionId f = 0; f < mod->numFunctions(); ++f)
        engine.promoteNow(f);
    EXPECT_EQ(evictedAt, registry->blocksEvicted());
    EXPECT_GT(registry->publishedCodeBytes(), 0u);
}

} // namespace
} // namespace trapjit
