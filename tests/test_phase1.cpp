/**
 * @file
 * Unit tests of the architecture independent phase (Section 4.1),
 * including the paper's worked examples:
 *  - Figure 3: a partially redundant check at a merge moves into the
 *    non-checking predecessor, so each path checks exactly once;
 *  - Figure 4: a loop-invariant check hoists in front of the loop;
 *  - side-effect and try-region barriers stop the motion;
 *  - the pass is idempotent.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/module.h"
#include "ir/verifier.h"
#include "opt/nullcheck/phase1.h"

namespace trapjit
{
namespace
{

Target ia32 = makeIA32WindowsTarget();

size_t
countChecksIn(const BasicBlock &bb, ValueId of = kNoValue)
{
    size_t n = 0;
    for (const Instruction &inst : bb.insts())
        if (inst.op == Opcode::NullCheck &&
            (of == kNoValue || inst.a == of))
            ++n;
    return n;
}

size_t
totalChecks(const Function &fn)
{
    size_t n = 0;
    for (size_t b = 0; b < fn.numBlocks(); ++b)
        n += countChecksIn(fn.block(static_cast<BlockId>(b)));
    return n;
}

bool
runPhase1(Function &fn)
{
    static Module dummy; // phase 1 never touches the module
    fn.recomputeCFG();
    PassContext ctx{dummy, ia32, false};
    NullCheckPhase1 pass;
    return pass.runOnFunction(fn, ctx);
}

/**
 * Figure 3: left path checks `a` then both paths merge into a block
 * that checks `a` again before an access.  The paper's figure inserts
 * on the right path (one check per path); our implementation finds the
 * strictly better placement — the merge access makes the check fully
 * anticipated at the split, so a single check before the branch covers
 * both paths.
 */
TEST(Phase1, Figure3PartialRedundancy)
{
    Module mod;
    Function &fn = mod.addFunction("fig3", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId cond = fn.addParam(Type::I32, "cond");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &left = fn.newBlock();
    BasicBlock &right = fn.newBlock();
    BasicBlock &merge = fn.newBlock();
    b.atEnd(entry);
    b.branch(cond, left, right);
    b.atEnd(left);
    ValueId v1 = b.getField(a, 8, Type::I32); // check + access
    (void)v1;
    b.jump(merge);
    b.atEnd(right);
    b.jump(merge); // no check on this path
    b.atEnd(merge);
    ValueId v2 = b.getField(a, 8, Type::I32); // partially redundant
    b.ret(v2);

    EXPECT_TRUE(runPhase1(fn));
    EXPECT_TRUE(verifyFunction(fn).ok());

    EXPECT_EQ(0u, countChecksIn(fn.block(merge.id())))
        << "the merge check must be eliminated";
    EXPECT_EQ(1u, countChecksIn(fn.block(entry.id())))
        << "fully anticipated: one check before the split";
    EXPECT_EQ(1u, totalChecks(fn))
        << "at most one dynamic check per path (here: exactly one "
           "total, better than the paper's figure)";
}

/**
 * Figure 4: `nullcheck a` inside a do-while loop, with `a` loop
 * invariant, hoists to the block before the loop; the in-loop check
 * disappears.
 */
TEST(Phase1, Figure4LoopInvariantHoisting)
{
    Module mod;
    Function &fn = mod.addFunction("fig4", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId n = fn.addParam(Type::I32, "n");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &body = fn.newBlock();
    BasicBlock &exit = fn.newBlock();
    ValueId i = fn.addLocal(Type::I32, "i");
    b.atEnd(entry);
    ValueId zero = b.constInt(0);
    b.move(i, zero);
    b.jump(body);
    b.atEnd(body);
    ValueId v = b.getField(a, 8, Type::I32); // nullcheck a + load
    ValueId i2 = b.binop(Opcode::IAdd, i, v);
    b.move(i, i2);
    ValueId more = b.cmp(Opcode::ICmp, CmpPred::LT, i, n);
    b.branch(more, body, exit);
    b.atEnd(exit);
    b.ret(i);

    EXPECT_TRUE(runPhase1(fn));
    EXPECT_TRUE(verifyFunction(fn).ok());

    EXPECT_EQ(0u, countChecksIn(fn.block(body.id())))
        << "the loop body must be check-free";
    EXPECT_EQ(1u, countChecksIn(fn.block(entry.id())))
        << "the check was hoisted in front of the loop";
}

/** A write to the checked variable blocks upward motion. */
TEST(Phase1, OverwriteBlocksHoisting)
{
    Module mod;
    Function &fn = mod.addFunction("overwrite", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId bp = fn.addParam(Type::Ref, "b");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &next = fn.newBlock();
    b.atEnd(entry);
    b.jump(next);
    b.atEnd(next);
    ValueId r = fn.addLocal(Type::Ref, "r");
    b.move(r, a);
    b.move(r, bp); // overwrite
    ValueId v = b.getField(r, 8, Type::I32);
    b.ret(v);

    runPhase1(fn);
    EXPECT_TRUE(verifyFunction(fn).ok());
    EXPECT_EQ(0u, countChecksIn(fn.block(entry.id())))
        << "the check of r may not move above r's definition";
    EXPECT_EQ(1u, countChecksIn(fn.block(next.id())));
}

/** A call (side effect) blocks upward motion out of the loop. */
TEST(Phase1, SideEffectBeforeCheckBlocksHoisting)
{
    Module mod;
    Function &callee = mod.addFunction("callee", Type::Void);
    {
        IRBuilder cb(callee);
        cb.startBlock();
        cb.ret();
    }
    Function &fn = mod.addFunction("main", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId n = fn.addParam(Type::I32, "n");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &body = fn.newBlock();
    BasicBlock &exit = fn.newBlock();
    ValueId i = fn.addLocal(Type::I32, "i");
    b.atEnd(entry);
    b.move(i, b.constInt(0));
    b.jump(body);
    b.atEnd(body);
    // The call precedes the check in every iteration: the check cannot
    // move above it.
    b.callStatic(callee.id(), {}, Type::Void);
    ValueId v = b.getField(a, 8, Type::I32);
    ValueId i2 = b.binop(Opcode::IAdd, i, v);
    b.move(i, i2);
    ValueId more = b.cmp(Opcode::ICmp, CmpPred::LT, i, n);
    b.branch(more, body, exit);
    b.atEnd(exit);
    b.ret(i);

    runPhase1(fn);
    EXPECT_TRUE(verifyFunction(fn).ok());
    EXPECT_EQ(0u, countChecksIn(fn.block(entry.id())));
    EXPECT_EQ(1u, countChecksIn(fn.block(body.id())))
        << "the check stays inside the loop behind the call";
}

/** Checks never move across a try-region boundary (Edge_try). */
TEST(Phase1, TryBoundaryBlocksMotion)
{
    Module mod;
    Function &fn = mod.addFunction("tryb", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &handler = fn.newBlock();
    TryRegionId region = fn.addTryRegion(handler.id(), ExcKind::CatchAll);
    BasicBlock &body = fn.newBlock(region);
    b.atEnd(entry);
    b.jump(body);
    b.atEnd(body);
    ValueId v = b.getField(a, 8, Type::I32); // inside the try region
    b.ret(v);
    b.atEnd(handler);
    b.ret(b.constInt(-1));

    runPhase1(fn);
    EXPECT_TRUE(verifyFunction(fn).ok());
    EXPECT_EQ(0u, countChecksIn(fn.block(entry.id())))
        << "the check may not leave the try region";
    EXPECT_EQ(1u, countChecksIn(fn.block(body.id())));
}

/** `this` is known non-null: its checks vanish entirely. */
TEST(Phase1, ThisParameterChecksEliminated)
{
    Module mod;
    Function &fn = mod.addFunction("inst", Type::I32, true);
    ValueId self = fn.addParam(Type::Ref, "this");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v1 = b.getField(self, 8, Type::I32);
    ValueId v2 = b.getField(self, 16, Type::I32);
    ValueId sum = b.binop(Opcode::IAdd, v1, v2);
    b.ret(sum);

    runPhase1(fn);
    EXPECT_EQ(0u, totalChecks(fn));
}

/** Allocation establishes non-nullness. */
TEST(Phase1, NewObjectChecksEliminated)
{
    Module mod;
    ClassId cls = mod.addClass("C");
    mod.addField(cls, "f", Type::I32);
    Function &fn = mod.addFunction("alloc", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId obj = b.newObject(cls, mod.cls(cls).instanceSize);
    ValueId v = b.getField(obj, 8, Type::I32);
    b.ret(v);

    runPhase1(fn);
    EXPECT_EQ(0u, totalChecks(fn));
}

/** The ifnonnull edge fact (Section 4.1.2 Edge(m, n)). */
TEST(Phase1, IfNonNullEdgeEliminatesCheck)
{
    Module mod;
    Function &fn = mod.addFunction("ifnn", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &isNull = fn.newBlock();
    BasicBlock &nonNull = fn.newBlock();
    b.atEnd(entry);
    b.ifNull(a, isNull, nonNull);
    b.atEnd(isNull);
    b.ret(b.constInt(-1));
    b.atEnd(nonNull);
    ValueId v = b.getField(a, 8, Type::I32);
    b.ret(v);

    runPhase1(fn);
    EXPECT_EQ(0u, totalChecks(fn))
        << "the ifnull fall-through proves non-nullness";
}

/** Running the pass twice must not change the result again. */
TEST(Phase1, Idempotent)
{
    Module mod;
    Function &fn = mod.addFunction("idem", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId n = fn.addParam(Type::I32, "n");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &body = fn.newBlock();
    BasicBlock &exit = fn.newBlock();
    ValueId i = fn.addLocal(Type::I32, "i");
    b.atEnd(entry);
    b.move(i, b.constInt(0));
    b.jump(body);
    b.atEnd(body);
    ValueId v = b.getField(a, 8, Type::I32);
    ValueId i2 = b.binop(Opcode::IAdd, i, v);
    b.move(i, i2);
    ValueId more = b.cmp(Opcode::ICmp, CmpPred::LT, i, n);
    b.branch(more, body, exit);
    b.atEnd(exit);
    b.ret(i);

    runPhase1(fn);
    size_t after1 = totalChecks(fn);
    bool changed = runPhase1(fn);
    EXPECT_FALSE(changed);
    EXPECT_EQ(after1, totalChecks(fn));
}

/** Copy-aware elimination: a check of a copy of a checked value. */
TEST(Phase1, CopyAwareElimination)
{
    Module mod;
    Function &fn = mod.addFunction("copy", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v1 = b.getField(a, 8, Type::I32); // checks a
    ValueId r = fn.addLocal(Type::Ref, "r");
    b.move(r, a);
    ValueId v2 = b.getField(r, 8, Type::I32); // check of the copy
    ValueId sum = b.binop(Opcode::IAdd, v1, v2);
    b.ret(sum);

    runPhase1(fn);
    EXPECT_EQ(1u, totalChecks(fn))
        << "the copy's check is covered by the original's";
}

} // namespace
} // namespace trapjit
