/**
 * @file
 * Unit tests of the architecture dependent phase (Section 4.2):
 *  - Figure 7: the one-sided-access diamond — implicit on the accessing
 *    path, explicit at the latest point of the other;
 *  - trap coverage rules: big-offset fields and write-only-trap targets
 *    keep explicit checks;
 *  - substitutable elimination (4.2.2);
 *  - must-equal copies carry checks implicitly (the inlined-receiver
 *    shape of Figure 1);
 *  - overwrites force materialization.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/module.h"
#include "ir/verifier.h"
#include "opt/nullcheck/check_coverage.h"
#include "opt/nullcheck/phase2.h"

namespace trapjit
{
namespace
{

Target ia32 = makeIA32WindowsTarget();
Target aixLying = makeIllegalImplicitAIXTarget();

struct Counts
{
    size_t explicitChecks = 0;
    size_t implicitChecks = 0;
    size_t markedSites = 0;
};

Counts
countAll(const Function &fn)
{
    Counts counts;
    for (size_t b = 0; b < fn.numBlocks(); ++b) {
        for (const Instruction &inst :
             fn.block(static_cast<BlockId>(b)).insts()) {
            if (inst.op == Opcode::NullCheck) {
                if (inst.flavor == CheckFlavor::Explicit)
                    ++counts.explicitChecks;
                else
                    ++counts.implicitChecks;
            }
            if (inst.exceptionSite)
                ++counts.markedSites;
        }
    }
    return counts;
}

bool
runPhase2(Function &fn, const Target &target)
{
    static Module dummy;
    fn.recomputeCFG();
    PassContext ctx{dummy, target, false};
    NullCheckPhase2 pass;
    return pass.runOnFunction(fn, ctx);
}

/** The trivial case: check directly before a trapping access. */
TEST(Phase2, AdjacentCheckBecomesImplicit)
{
    Module mod;
    Function &fn = mod.addFunction("adj", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v = b.getField(a, 8, Type::I32);
    b.ret(v);

    runPhase2(fn, ia32);
    EXPECT_TRUE(verifyFunction(fn).ok());
    Counts counts = countAll(fn);
    EXPECT_EQ(0u, counts.explicitChecks);
    EXPECT_EQ(1u, counts.implicitChecks);
    EXPECT_EQ(1u, counts.markedSites);
    EXPECT_TRUE(checkNullGuardCoverage(fn, ia32).empty());
}

/**
 * Figure 7: `nullcheck a` before a branch; only the left path accesses
 * a slot of `a`.  The check moves down: implicit at the left access,
 * explicit at the right path's latest point.
 */
TEST(Phase2, Figure7OneSidedAccess)
{
    Module mod;
    Function &fn = mod.addFunction("fig7", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId i = fn.addParam(Type::I32, "i");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &left = fn.newBlock();
    BasicBlock &right = fn.newBlock();
    BasicBlock &merge = fn.newBlock();
    ValueId result = fn.addLocal(Type::I32, "result");

    b.atEnd(entry);
    b.nullCheck(a); // the Figure 1 / Figure 7 inlining check
    ValueId zero = b.constInt(0);
    ValueId neg = b.cmp(Opcode::ICmp, CmpPred::LT, i, zero);
    b.branch(neg, right, left);

    b.atEnd(left);
    Instruction gf; // raw access: the check above guards it
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = a;
    gf.imm = 8;
    b.emit(gf);
    b.move(result, gf.dst);
    b.jump(merge);

    b.atEnd(right);
    b.move(result, i); // no slot of a touched
    b.jump(merge);

    b.atEnd(merge);
    b.ret(result);

    runPhase2(fn, ia32);
    EXPECT_TRUE(verifyFunction(fn).ok());

    // Left: implicit (marked access).  Right: explicit at its end.
    bool leftMarked = false;
    for (const Instruction &inst : fn.block(left.id()).insts())
        if (inst.op == Opcode::GetField && inst.exceptionSite)
            leftMarked = true;
    EXPECT_TRUE(leftMarked);

    size_t rightExplicit = 0;
    for (const Instruction &inst : fn.block(right.id()).insts())
        if (inst.op == Opcode::NullCheck &&
            inst.flavor == CheckFlavor::Explicit)
            ++rightExplicit;
    EXPECT_EQ(1u, rightExplicit)
        << "the non-accessing path keeps an explicit check at its "
           "latest point";

    for (const Instruction &inst : fn.block(entry.id()).insts())
        EXPECT_NE(Opcode::NullCheck, inst.op)
            << "the original check moved out of the entry";
    EXPECT_TRUE(checkNullGuardCoverage(fn, ia32).empty());
}

/** A big-offset field access cannot carry an implicit check. */
TEST(Phase2, BigOffsetStaysExplicit)
{
    Module mod;
    Function &fn = mod.addFunction("big", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v = b.getField(a, 8192, Type::I32); // beyond the 4 KiB page
    b.ret(v);

    runPhase2(fn, ia32);
    Counts counts = countAll(fn);
    EXPECT_EQ(1u, counts.explicitChecks)
        << "Figure 5: the offset is outside the protected area";
    EXPECT_EQ(0u, counts.markedSites);
    EXPECT_TRUE(checkNullGuardCoverage(fn, ia32).empty());
}

/** On a write-only-trap target, reads keep explicit checks. */
TEST(Phase2, ReadsStayExplicitWhenOnlyWritesTrap)
{
    // Compile against the honest AIX model (phase 2 would normally be
    // skipped there; running it must still be conservative).
    Target aix = makePPCAIXTarget();
    Module mod;
    Function &fn = mod.addFunction("aixread", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v = b.getField(a, 8, Type::I32);
    b.ret(v);

    runPhase2(fn, aix);
    Counts counts = countAll(fn);
    EXPECT_EQ(1u, counts.explicitChecks);
    EXPECT_EQ(0u, counts.markedSites);
}

/** ... but writes do trap there. */
TEST(Phase2, WritesBecomeImplicitOnAIX)
{
    Target aix = makePPCAIXTarget();
    Module mod;
    Function &fn = mod.addFunction("aixwrite", Type::Void);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    b.putField(a, 8, x);
    b.ret();

    runPhase2(fn, aix);
    Counts counts = countAll(fn);
    EXPECT_EQ(0u, counts.explicitChecks);
    EXPECT_EQ(1u, counts.markedSites);
}

/** The lying Illegal Implicit target marks reads too. */
TEST(Phase2, IllegalImplicitTargetMarksReads)
{
    Module mod;
    Function &fn = mod.addFunction("illegal", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v = b.getField(a, 8, Type::I32);
    b.ret(v);

    runPhase2(fn, aixLying);
    Counts counts = countAll(fn);
    EXPECT_EQ(0u, counts.explicitChecks);
    EXPECT_EQ(1u, counts.markedSites)
        << "the compiler believes reads trap";
}

/**
 * 4.2.2: an explicit check materialized at a block exit (because the
 * pending fact dies on one outgoing edge) is substitutable — and thus
 * deleted — when every successor path re-checks the variable through a
 * trapping access before any side effect.
 */
TEST(Phase2, SubstitutableEliminatedByLaterCoverage)
{
    Module mod;
    Function &fn = mod.addFunction("subst", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId cond = fn.addParam(Type::I32, "cond");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &bPath = fn.newBlock();
    BasicBlock &cPath = fn.newBlock();
    b.atEnd(entry);
    b.nullCheck(a);
    b.branch(cond, bPath, cPath);
    // B has two predecessors (entry and C), so the pending fact dies on
    // the entry->B edge and would materialize at entry's exit — unless
    // 4.2.2 proves it substitutable by the accesses below.
    b.atEnd(cPath);
    ValueId v1 = b.getField(a, 8, Type::I32);
    (void)v1;
    b.jump(bPath);
    b.atEnd(bPath);
    ValueId v2 = b.getField(a, 8, Type::I32);
    b.ret(v2);

    runPhase2(fn, ia32);
    EXPECT_TRUE(verifyFunction(fn).ok());
    Counts counts = countAll(fn);
    EXPECT_EQ(0u, counts.explicitChecks)
        << "every path re-checks through a trap, so the materialized "
           "explicit check is substitutable";
    EXPECT_EQ(2u, counts.markedSites);
    EXPECT_TRUE(checkNullGuardCoverage(fn, ia32).empty());
}

/**
 * The dual guard: a check may NOT be substituted by a later check when
 * a non-trapping access of the variable sits in between — the access
 * would execute unguarded.
 */
TEST(Phase2, SubstitutionBlockedByInterveningAccess)
{
    Module mod;
    Function &fn = mod.addFunction("nosubst", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v1 = b.getField(a, 8192, Type::I32); // big offset: explicit
    ValueId v2 = b.getField(a, 8200, Type::I32); // big offset: explicit
    ValueId sum = b.binop(Opcode::IAdd, v1, v2);
    b.ret(sum);

    runPhase2(fn, ia32);
    EXPECT_TRUE(verifyFunction(fn).ok());
    Counts counts = countAll(fn);
    // Phase 2 alone performs no forward redundancy elimination (that is
    // phase 1 / Whaley), so both accesses keep their explicit guards.
    EXPECT_EQ(2u, counts.explicitChecks);
    EXPECT_EQ(0u, counts.markedSites);
    EXPECT_TRUE(checkNullGuardCoverage(fn, ia32).empty());
}

/** A must-equal copy's trapping access carries the original's check. */
TEST(Phase2, MustEqualCopyCarriesCheckImplicitly)
{
    Module mod;
    Function &fn = mod.addFunction("copy", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    b.startBlock();
    b.nullCheck(a); // call-site check (Figure 1)
    ValueId r = fn.addLocal(Type::Ref, "r");
    b.move(r, a); // inlined receiver copy
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = r;
    gf.imm = 8;
    b.emit(gf);
    b.ret(gf.dst);

    runPhase2(fn, ia32);
    Counts counts = countAll(fn);
    EXPECT_EQ(0u, counts.explicitChecks)
        << "the copy's access traps iff the original is null";
    EXPECT_EQ(1u, counts.markedSites);
    EXPECT_TRUE(checkNullGuardCoverage(fn, ia32).empty());
}

/** An overwrite of the checked variable forces materialization. */
TEST(Phase2, OverwriteForcesExplicitMaterialization)
{
    Module mod;
    Function &fn = mod.addFunction("ovw", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId c = fn.addParam(Type::Ref, "c");
    IRBuilder b(fn);
    b.startBlock();
    ValueId r = fn.addLocal(Type::Ref, "r");
    b.move(r, a);
    b.nullCheck(r);
    b.move(r, c); // r redefined: the pending check must fire before
    ValueId v = b.getField(r, 8, Type::I32);
    b.ret(v);

    runPhase2(fn, ia32);
    EXPECT_TRUE(verifyFunction(fn).ok());
    // The check of the OLD r materializes explicitly before the move;
    // the new r's access carries its own implicit check.
    const auto &insts = fn.entry().insts();
    bool sawExplicitBeforeMove = false;
    for (size_t i = 0; i + 1 < insts.size(); ++i) {
        if (insts[i].op == Opcode::NullCheck &&
            insts[i].flavor == CheckFlavor::Explicit &&
            insts[i + 1].op == Opcode::Move) {
            sawExplicitBeforeMove = true;
        }
    }
    EXPECT_TRUE(sawExplicitBeforeMove);
    EXPECT_TRUE(checkNullGuardCoverage(fn, ia32).empty());
}

/** Checks do not move forward across a side effect. */
TEST(Phase2, SideEffectStopsForwardMotion)
{
    Module mod;
    Function &fn = mod.addFunction("se", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId w = fn.addParam(Type::Ref, "w");
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    b.nullCheck(a);
    b.putField(w, 8, x); // a memory write: the NPE must precede it
    ValueId v = b.getField(a, 8, Type::I32);
    b.ret(v);

    runPhase2(fn, ia32);
    EXPECT_TRUE(verifyFunction(fn).ok());
    // The check of `a` must still execute before the putfield; the
    // getfield of `a` afterwards may carry its own implicit check, but
    // an explicit nullcheck of a must appear before the store.
    const auto &insts = fn.entry().insts();
    bool checkBeforeStore = false;
    for (const Instruction &inst : insts) {
        if (inst.op == Opcode::NullCheck && inst.a == a &&
            inst.flavor == CheckFlavor::Explicit) {
            checkBeforeStore = true;
        }
        if (inst.op == Opcode::PutField)
            break;
    }
    EXPECT_TRUE(checkBeforeStore);
    EXPECT_TRUE(checkNullGuardCoverage(fn, ia32).empty());
}

} // namespace
} // namespace trapjit
