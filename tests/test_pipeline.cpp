/**
 * @file
 * Tests of the JIT driver layer: configuration presets, compile-time
 * accounting, the coverage guarantee across every preset, and the heap
 * and workload registries.
 */

#include <gtest/gtest.h>

#include "jit/compiler.h"
#include "opt/nullcheck/check_coverage.h"
#include "runtime/heap.h"
#include "workloads/workload.h"

namespace trapjit
{
namespace
{

TEST(Pipeline, PresetsHaveExpectedKnobs)
{
    EXPECT_FALSE(makeNoOptNoTrapConfig().useLocalLowering);
    EXPECT_TRUE(makeNoOptTrapConfig().useLocalLowering);
    EXPECT_TRUE(makeOldNullCheckConfig().useWhaley);
    EXPECT_FALSE(makeOldNullCheckConfig().usePhase1);
    EXPECT_TRUE(makeNewPhase1OnlyConfig().usePhase1);
    EXPECT_FALSE(makeNewPhase1OnlyConfig().usePhase2);
    EXPECT_TRUE(makeNewFullConfig().usePhase2);

    // Section 5.4: phase 2 is skipped on AIX; speculation is the knob.
    EXPECT_FALSE(makeAIXSpeculationConfig().usePhase2);
    EXPECT_TRUE(makeAIXSpeculationConfig().enableSpeculation);
    EXPECT_FALSE(makeAIXNoSpeculationConfig().enableSpeculation);
    EXPECT_TRUE(makeAIXIllegalImplicitConfig().usePhase2);

    EXPECT_FALSE(makeAltVMConfig().enableIntrinsics);
}

TEST(Pipeline, CompileReportSplitsNullCheckTime)
{
    Target ia32 = makeIA32WindowsTarget();
    const Workload *w = findWorkload("javac");
    ASSERT_NE(nullptr, w);

    auto mod = w->build();
    Compiler newJit(ia32, makeNewFullConfig());
    CompileReport report = newJit.compile(*mod);
    EXPECT_GT(report.timings.nullCheckSeconds, 0.0);
    EXPECT_GT(report.timings.otherSeconds, 0.0);
    EXPECT_EQ(mod->numFunctions(), report.functionsCompiled);

    // The old algorithm spends less time on null checks (Table 4).
    auto mod2 = w->build();
    Compiler oldJit(ia32, makeOldNullCheckConfig());
    CompileReport oldReport = oldJit.compile(*mod2);
    EXPECT_LT(oldReport.timings.nullCheckSeconds,
              report.timings.nullCheckSeconds);
}

TEST(Pipeline, EveryPresetKeepsWorkloadsCovered)
{
    Target ia32 = makeIA32WindowsTarget();
    Target aix = makePPCAIXTarget();
    Target lying = makeIllegalImplicitAIXTarget();

    struct Case
    {
        const Target *target;
        PipelineConfig config;
    };
    std::vector<Case> cases = {
        {&ia32, makeAltVMConfig()},
        {&aix, makeAIXSpeculationConfig()},
        {&aix, makeAIXNoSpeculationConfig()},
        {&lying, makeAIXIllegalImplicitConfig()},
    };
    const Workload *w = findWorkload("mtrt");
    ASSERT_NE(nullptr, w);
    for (const Case &c : cases) {
        auto mod = w->build();
        Compiler compiler(*c.target, c.config);
        compiler.compile(*mod);
        for (FunctionId f = 0; f < mod->numFunctions(); ++f) {
            // Coverage is judged against the *compile* target (the
            // lying target believes reads trap; that is the point of
            // the Illegal Implicit experiment).
            auto violations = checkNullGuardCoverage(
                mod->function(f), compiler.target());
            for (const auto &v : violations)
                ADD_FAILURE()
                    << c.config.name << ": " << v.description;
        }
    }
}

TEST(Workloads, RegistryIsComplete)
{
    EXPECT_EQ(10u, jbytemarkWorkloads().size());
    EXPECT_EQ(7u, specjvmWorkloads().size());
    EXPECT_NE(nullptr, findWorkload("Neural Net"));
    EXPECT_NE(nullptr, findWorkload("javac"));
    EXPECT_EQ(nullptr, findWorkload("no such benchmark"));
}

TEST(Heap, AllocationLayoutAndDigest)
{
    Heap heap(1 << 20);
    Address obj = heap.allocateObject(3, 24);
    ASSERT_NE(0u, obj);
    EXPECT_GE(obj, kHeapBase);
    EXPECT_EQ(3u, heap.classOf(obj));

    Address arr = heap.allocateArray(Type::I32, 10);
    ASSERT_NE(0u, arr);
    EXPECT_EQ(10, heap.arrayLength(arr));
    EXPECT_GT(arr, obj);

    uint64_t before = heap.digest();
    heap.writeI32(arr + kArrayDataOffset, 42);
    EXPECT_NE(before, heap.digest());

    heap.reset();
    EXPECT_EQ(0u, heap.bytesAllocated());
}

TEST(Heap, ExhaustionReturnsNull)
{
    Heap heap(4096);
    Address a = heap.allocateArray(Type::I64, 100); // 808 bytes
    EXPECT_NE(0u, a);
    Address b = heap.allocateArray(Type::I64, 10000); // too big
    EXPECT_EQ(0u, b);
}

TEST(Heap, AllocationsAreDeterministic)
{
    // Observable-equivalence comparisons rely on identical allocation
    // addresses across runs.
    Heap h1(1 << 16), h2(1 << 16);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(h1.allocateObject(1, 16 + 8 * i),
                  h2.allocateObject(1, 16 + 8 * i));
}

} // namespace
} // namespace trapjit
