/**
 * @file
 * Unit tests of scalar replacement (Figures 4 and 6, including read
 * speculation on write-only-trap targets) and the bounds check
 * optimization that iterates with it.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "ir/builder.h"
#include "ir/module.h"
#include "ir/verifier.h"
#include "opt/bounds/bounds_check_elimination.h"
#include "opt/copy_propagation.h"
#include "opt/dead_code.h"
#include "opt/local_cse.h"
#include "opt/nullcheck/phase1.h"
#include "opt/scalar/scalar_replacement.h"
#include "workloads/kernel_util.h"

namespace trapjit
{
namespace
{

Target ia32 = makeIA32WindowsTarget();
Target aix = makePPCAIXTarget();

template <typename PassT>
bool
runPass(Function &fn, const Target &target, bool speculation = false)
{
    static Module dummy;
    fn.recomputeCFG();
    PassContext ctx{dummy, target, speculation};
    PassT pass;
    return pass.runOnFunction(fn, ctx);
}

size_t
countInBlock(const Function &fn, BlockId block, Opcode op)
{
    size_t n = 0;
    for (const Instruction &inst : fn.block(block).insts())
        if (inst.op == op)
            ++n;
    return n;
}

/**
 * Figure 4 end state: with the check hoisted (phase 1), scalar
 * replacement promotes the loop-invariant field to a temp — the loop
 * body keeps the store but loses the load.
 */
TEST(ScalarReplacement, PromotesInvariantFieldAfterPhase1)
{
    Module mod;
    Function &fn = mod.addFunction("fig4", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId n = fn.addParam(Type::I32, "n");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &body = fn.newBlock();
    BasicBlock &exit = fn.newBlock();
    ValueId i = fn.addLocal(Type::I32, "i");
    b.atEnd(entry);
    b.move(i, b.constInt(0));
    b.jump(body);
    b.atEnd(body);
    // i = a.f * 2; a.f = i  (read + write of the same invariant field)
    ValueId v = b.getField(a, 8, Type::I32);
    ValueId two = b.constInt(2);
    ValueId doubled = b.binop(Opcode::IMul, v, two);
    b.putField(a, 8, doubled);
    ValueId i2 = b.binop(Opcode::IAdd, i, b.constInt(1));
    b.move(i, i2);
    ValueId more = b.cmp(Opcode::ICmp, CmpPred::LT, i, n);
    b.branch(more, body, exit);
    b.atEnd(exit);
    b.ret(i);

    runPass<NullCheckPhase1>(fn, ia32); // hoists the checks
    EXPECT_TRUE(runPass<ScalarReplacement>(fn, ia32));
    EXPECT_TRUE(verifyFunction(fn).ok());

    EXPECT_EQ(0u, countInBlock(fn, body.id(), Opcode::GetField))
        << "the in-loop load is replaced by the temp";
    EXPECT_EQ(1u, countInBlock(fn, body.id(), Opcode::PutField))
        << "the store stays (precise exceptions)";
}

/** Without a hoisted check, promotion is blocked on read-trap targets. */
TEST(ScalarReplacement, BlockedWithoutGuardOnReadTrapTarget)
{
    Module mod;
    Function &fn = mod.addFunction("blocked", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId n = fn.addParam(Type::I32, "n");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &body = fn.newBlock();
    BasicBlock &exit = fn.newBlock();
    ValueId i = fn.addLocal(Type::I32, "i");
    b.atEnd(entry);
    b.move(i, b.constInt(0));
    b.jump(body);
    b.atEnd(body);
    ValueId v = b.getField(a, 8, Type::I32);
    ValueId i2 = b.binop(Opcode::IAdd, i, v);
    b.move(i, i2);
    ValueId more = b.cmp(Opcode::ICmp, CmpPred::LT, i, n);
    b.branch(more, body, exit);
    b.atEnd(exit);
    b.ret(i);

    // No phase 1: the check stays in the loop, so hoisting the load
    // would be speculation — illegal when reads trap.
    EXPECT_FALSE(runPass<ScalarReplacement>(fn, ia32));
    EXPECT_EQ(1u, countInBlock(fn, body.id(), Opcode::GetField));
}

/**
 * Figure 6: on AIX the store at the loop top pins the checks inside
 * the loop, but read *speculation* may hoist the loads anyway.
 */
TEST(ScalarReplacement, SpeculationHoistsReadsOnAIX)
{
    auto build = [](Module &mod) -> Function & {
        Function &fn = mod.addFunction("fig6", Type::I32);
        ValueId a = fn.addParam(Type::Ref, "a");
        ValueId out = fn.addParam(Type::Ref, "out"); // int array
        ValueId n = fn.addParam(Type::I32, "n");
        IRBuilder b(fn);
        BasicBlock &entry = b.startBlock();
        BasicBlock &body = fn.newBlock();
        BasicBlock &exit = fn.newBlock();
        ValueId i = fn.addLocal(Type::I32, "i");
        ValueId acc = fn.addLocal(Type::I32, "acc");
        b.atEnd(entry);
        b.move(i, b.constInt(0));
        b.move(acc, b.constInt(0));
        b.jump(body);
        b.atEnd(body);
        // Store first (out[0] = acc): barriers that pin the checks in
        // the loop.  An int element store cannot alias a.f (type-based
        // disambiguation), so only the null safety of `a` is at stake.
        ValueId zero = b.constInt(0);
        b.arrayStore(out, zero, acc, Type::I32);
        ValueId v = b.getField(a, 8, Type::I32); // invariant read
        ValueId acc2 = b.binop(Opcode::IAdd, acc, v);
        b.move(acc, acc2);
        ValueId i2 = b.binop(Opcode::IAdd, i, b.constInt(1));
        b.move(i, i2);
        ValueId more = b.cmp(Opcode::ICmp, CmpPred::LT, i, n);
        b.branch(more, body, exit);
        b.atEnd(exit);
        b.ret(acc);
        return fn;
    };

    auto countGetFields = [](const Function &fn) {
        size_t n = 0;
        // Body blocks are the ones inside the loop (id 1 in this IR).
        for (const Instruction &inst : fn.block(1).insts())
            if (inst.op == Opcode::GetField)
                ++n;
        return n;
    };
    auto countSpeculative = [](const Function &fn) {
        size_t n = 0;
        for (size_t blk = 0; blk < fn.numBlocks(); ++blk)
            for (const Instruction &inst :
                 fn.block(static_cast<BlockId>(blk)).insts())
                if (inst.speculative)
                    ++n;
        return n;
    };

    // Phase 1 cannot hoist the check of `a` (the store barrier precedes
    // it in every iteration), so without speculation the field load
    // stays in the loop.
    {
        Module mod;
        Function &fn = build(mod);
        runPass<NullCheckPhase1>(fn, aix);
        runPass<ScalarReplacement>(fn, aix, /*speculation=*/false);
        EXPECT_EQ(1u, countGetFields(fn));
        EXPECT_EQ(0u, countSpeculative(fn));
    }
    // With speculation the read hoists and is tagged speculative.
    {
        Module mod;
        Function &fn = build(mod);
        runPass<NullCheckPhase1>(fn, aix);
        runPass<ScalarReplacement>(fn, aix, /*speculation=*/true);
        EXPECT_EQ(0u, countGetFields(fn))
            << "the read moved above its stuck check";
        EXPECT_EQ(1u, countSpeculative(fn));
        EXPECT_TRUE(verifyFunction(fn).ok());
    }
    // Speculation is refused where reads trap.
    {
        Module mod;
        Function &fn = build(mod);
        runPass<NullCheckPhase1>(fn, ia32);
        runPass<ScalarReplacement>(fn, ia32, /*speculation=*/true);
        EXPECT_EQ(1u, countGetFields(fn));
        EXPECT_EQ(0u, countSpeculative(fn));
    }
}

/** A call inside the loop blocks field promotion (Section 5.4). */
TEST(ScalarReplacement, CallInLoopBlocksPromotion)
{
    Module mod;
    Function &callee = mod.addFunction("callee", Type::Void);
    {
        IRBuilder cb(callee);
        cb.startBlock();
        cb.ret();
    }
    Function &fn = mod.addFunction("call", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId n = fn.addParam(Type::I32, "n");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &body = fn.newBlock();
    BasicBlock &exit = fn.newBlock();
    ValueId i = fn.addLocal(Type::I32, "i");
    b.atEnd(entry);
    b.move(i, b.constInt(0));
    b.jump(body);
    b.atEnd(body);
    ValueId v = b.getField(a, 8, Type::I32);
    b.callStatic(callee.id(), {}, Type::Void); // clobbers everything
    ValueId i2 = b.binop(Opcode::IAdd, i, v);
    b.move(i, i2);
    ValueId more = b.cmp(Opcode::ICmp, CmpPred::LT, i, n);
    b.branch(more, body, exit);
    b.atEnd(exit);
    b.ret(i);

    runPass<NullCheckPhase1>(fn, ia32);
    runPass<ScalarReplacement>(fn, ia32);
    EXPECT_EQ(1u, countInBlock(fn, body.id(), Opcode::GetField))
        << "the callee may write the field";
}

/** Bounds pass: the b[i] read-modify-write duplicate check dies. */
TEST(BoundsCheck, ReadModifyWriteDeduped)
{
    Module mod;
    Function &fn = mod.addFunction("rmw", Type::Void);
    ValueId arr = fn.addParam(Type::Ref, "arr");
    ValueId i = fn.addParam(Type::I32, "i");
    IRBuilder b(fn);
    b.startBlock();
    // b[i] = b[i] + 1, fully expanded by hand with a shared length.
    ValueId len = b.arrayLength(arr);
    b.boundCheck(i, len);
    Instruction ld;
    ld.op = Opcode::ArrayLoad;
    ld.dst = fn.addTemp(Type::I32);
    ld.a = arr;
    ld.b = i;
    ld.elemType = Type::I32;
    b.emit(ld);
    ValueId one = b.constInt(1);
    ValueId inc = b.binop(Opcode::IAdd, ld.dst, one);
    b.boundCheck(i, len); // redundant
    Instruction st;
    st.op = Opcode::ArrayStore;
    st.a = arr;
    st.b = i;
    st.c = inc;
    st.elemType = Type::I32;
    b.emit(st);
    b.ret();

    EXPECT_TRUE(runPass<BoundsCheckElimination>(fn, ia32));
    size_t checks = 0;
    for (const Instruction &inst : fn.entry().insts())
        if (inst.op == Opcode::BoundCheck)
            ++checks;
    EXPECT_EQ(1u, checks);
}

/** Redefining the index kills the bounds fact. */
TEST(BoundsCheck, IndexRedefinitionBlocksElimination)
{
    Module mod;
    Function &fn = mod.addFunction("redef", Type::Void);
    ValueId arr = fn.addParam(Type::Ref, "arr");
    IRBuilder b(fn);
    b.startBlock();
    ValueId len = b.arrayLength(arr);
    ValueId i = fn.addLocal(Type::I32, "i");
    b.move(i, b.constInt(1));
    b.boundCheck(i, len);
    ValueId i2 = b.binop(Opcode::IAdd, i, b.constInt(1));
    b.move(i, i2);
    b.boundCheck(i, len); // different value of i: must stay
    b.ret();

    runPass<BoundsCheckElimination>(fn, ia32);
    size_t checks = 0;
    for (const Instruction &inst : fn.entry().insts())
        if (inst.op == Opcode::BoundCheck)
            ++checks;
    EXPECT_EQ(2u, checks);
}

/**
 * The Figure 2 iteration end-to-end: after phase 1 + bounds + scalar
 * (run twice), a multidimensional row access has its row pointer,
 * length and bounds check hoisted out of the inner loop.
 */
TEST(Iteration, RowAccessFullyHoistedAfterTwoRounds)
{
    Module mod;
    Function &fn = mod.addFunction("rows", Type::I32);
    ValueId matrix = fn.addParam(Type::Ref, "m");
    ValueId row = fn.addParam(Type::I32, "r");
    ValueId n = fn.addParam(Type::I32, "n");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    ValueId acc = fn.addLocal(Type::I32, "acc");
    ValueId j = fn.addLocal(Type::I32, "j");
    b.atEnd(entry);
    b.move(acc, b.constInt(0));
    CountedLoop loop(b, j, b.constInt(0), n);
    // acc += m[r][j]: the row fetch m[r] is inner-loop invariant.
    ValueId rowRef = b.arrayLoad(matrix, row, Type::Ref);
    ValueId v = b.arrayLoad(rowRef, j, Type::I32);
    ValueId acc2 = b.binop(Opcode::IAdd, acc, v);
    b.move(acc, acc2);
    loop.close();
    b.ret(acc);

    static Module dummy;
    PassContext ctx{dummy, ia32, false};
    for (int round = 0; round < 2; ++round) {
        fn.recomputeCFG();
        LocalCSE cse;
        cse.runOnFunction(fn, ctx);
        CopyPropagation cp;
        cp.runOnFunction(fn, ctx);
        NullCheckPhase1 p1;
        p1.runOnFunction(fn, ctx);
        BoundsCheckElimination bce;
        bce.runOnFunction(fn, ctx);
        ScalarReplacement sr;
        sr.runOnFunction(fn, ctx);
        DeadCodeElimination dce;
        dce.runOnFunction(fn, ctx);
    }
    EXPECT_TRUE(verifyFunction(fn).ok());

    // Find the inner loop body (the block with the IAdd into acc) and
    // assert it no longer fetches the row.
    size_t bodyRowLoads = 0;
    for (size_t blk = 0; blk < fn.numBlocks(); ++blk) {
        const BasicBlock &bb = fn.block(static_cast<BlockId>(blk));
        bool isBody = false;
        for (const Instruction &inst : bb.insts())
            if (inst.op == Opcode::IAdd && inst.a == acc)
                isBody = true;
        if (!isBody)
            continue;
        for (const Instruction &inst : bb.insts())
            if (inst.op == Opcode::ArrayLoad &&
                inst.elemType == Type::Ref)
                ++bodyRowLoads;
    }
    EXPECT_EQ(0u, bodyRowLoads)
        << "the row pointer load must leave the inner loop";
}

} // namespace
} // namespace trapjit
