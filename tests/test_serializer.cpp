/**
 * @file
 * Round-trip tests of the module serializer: every workload and a
 * sweep of random programs must serialize, parse back, verify, and
 * behave identically (event-for-event) to the original.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "ir/serializer.h"
#include "ir/verifier.h"
#include "support/diagnostics.h"
#include "jit/stats.h"
#include "testing/random_program.h"
#include "workloads/workload.h"

namespace trapjit
{
namespace
{

Target ia32 = makeIA32WindowsTarget();

/** Execute main and return (outcome, value, cycles, digest). */
struct RunResult
{
    ExecResult result;
    uint64_t digest;
};

RunResult
runMain(Module &mod)
{
    Interpreter interp(mod, ia32);
    RunResult rr{interp.run(mod.findFunction("main"), {}), 0};
    rr.digest = interp.heap().digest();
    return rr;
}

TEST(Serializer, RoundTripsTextExactly)
{
    const Workload *w = findWorkload("mtrt");
    auto mod = w->build();
    std::string once = serializeModuleToString(*mod);
    auto parsed = deserializeModuleFromString(once);
    std::string twice = serializeModuleToString(*parsed);
    EXPECT_EQ(once, twice) << "serialize(parse(s)) must equal s";
}

TEST(Serializer, RoundTripPreservesStructure)
{
    const Workload *w = findWorkload("Huffman Compression");
    auto mod = w->build();
    auto parsed =
        deserializeModuleFromString(serializeModuleToString(*mod));

    ASSERT_EQ(mod->numFunctions(), parsed->numFunctions());
    ASSERT_EQ(mod->numClasses(), parsed->numClasses());
    CheckStats a = collectCheckStats(*mod);
    CheckStats b = collectCheckStats(*parsed);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.explicitNullChecks, b.explicitNullChecks);
    EXPECT_EQ(a.boundChecks, b.boundChecks);
    EXPECT_TRUE(verifyModule(*parsed).ok());
}

TEST(Serializer, RoundTripPreservesBehaviorOnWorkloads)
{
    for (const Workload &w : specjvmWorkloads()) {
        auto mod = w.build();
        auto parsed =
            deserializeModuleFromString(serializeModuleToString(*mod));
        RunResult original = runMain(*mod);
        RunResult reparsed = runMain(*parsed);
        ASSERT_EQ(original.result.outcome, reparsed.result.outcome)
            << w.name;
        EXPECT_EQ(original.result.value.i, reparsed.result.value.i)
            << w.name;
        EXPECT_EQ(original.result.stats.cycles,
                  reparsed.result.stats.cycles)
            << w.name;
        EXPECT_EQ(original.digest, reparsed.digest) << w.name;
    }
}

TEST(Serializer, RoundTripPreservesOptimizedCode)
{
    // Serialize AFTER compilation: flavors, marks and speculative flags
    // must survive.
    Target aix = makePPCAIXTarget();
    const Workload *w = findWorkload("Neural Net");
    auto mod = w->build();
    Compiler compiler(aix, makeAIXSpeculationConfig());
    compiler.compile(*mod);

    auto parsed =
        deserializeModuleFromString(serializeModuleToString(*mod));
    CheckStats a = collectCheckStats(*mod);
    CheckStats b = collectCheckStats(*parsed);
    EXPECT_EQ(a.explicitNullChecks, b.explicitNullChecks);
    EXPECT_EQ(a.implicitNullChecks, b.implicitNullChecks);
    EXPECT_EQ(a.markedExceptionSites, b.markedExceptionSites);
    EXPECT_EQ(a.speculativeReads, b.speculativeReads);

    Interpreter i1(*mod, aix), i2(*parsed, aix);
    ExecResult r1 = i1.run(mod->findFunction("main"), {});
    ExecResult r2 = i2.run(parsed->findFunction("main"), {});
    EXPECT_EQ(r1.value.i, r2.value.i);
    EXPECT_EQ(r1.stats.cycles, r2.stats.cycles);
}

class SerializerRandom : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SerializerRandom, RoundTripsRandomPrograms)
{
    GeneratorOptions opts;
    opts.seed = GetParam();
    auto mod = generateRandomModule(opts);
    std::string once = serializeModuleToString(*mod);
    auto parsed = deserializeModuleFromString(once);
    EXPECT_EQ(once, serializeModuleToString(*parsed));
    EXPECT_TRUE(verifyModule(*parsed).ok());

    RunResult original = runMain(*mod);
    RunResult reparsed = runMain(*parsed);
    ASSERT_EQ(original.result.outcome, reparsed.result.outcome);
    EXPECT_EQ(original.result.exception, reparsed.result.exception);
    if (original.result.outcome == ExecResult::Outcome::Returned)
        EXPECT_EQ(original.result.value.i, reparsed.result.value.i);
    EXPECT_EQ(original.digest, reparsed.digest);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerializerRandom,
                         ::testing::Range<uint64_t>(1, 16));

TEST(Serializer, RejectsMalformedInput)
{
    EXPECT_THROW(deserializeModuleFromString("not a module"),
                 UsageError);
    EXPECT_THROW(deserializeModuleFromString(
                     "trapjit-module v1\nbogus record\n"),
                 UsageError);
}

TEST(Serializer, FunctionRoundTripsStandalone)
{
    const Workload *w = findWorkload("mtrt");
    auto mod = w->build();
    for (FunctionId f = 0; f < mod->numFunctions(); ++f) {
        std::string once =
            serializeFunctionToString(mod->function(f));
        auto parsed = deserializeFunctionFromString(once, f);
        ASSERT_NE(parsed, nullptr);
        EXPECT_EQ(parsed->id(), f);
        EXPECT_EQ(serializeFunctionToString(*parsed), once)
            << "function " << f << " round-trip not exact";
    }
}

TEST(Serializer, FunctionParserRejectsGarbage)
{
    EXPECT_THROW(deserializeFunctionFromString("inst op=nop", 0),
                 UsageError);
    EXPECT_THROW(deserializeFunctionFromString("", 0), UsageError);
}

} // namespace
} // namespace trapjit
