/**
 * @file
 * Unit tests of the support layer: the table printer, diagnostics,
 * the event trace, the cost model, and the target factory properties.
 */

#include <gtest/gtest.h>

#include <sstream>

#include <atomic>
#include <thread>
#include <unordered_map>

#include "arch/target.h"
#include "interp/cost_model.h"
#include "interp/event_trace.h"
#include "support/diagnostics.h"
#include "support/hash.h"
#include "support/job_queue.h"
#include "support/table.h"

namespace trapjit
{
namespace
{

TEST(TextTable, AlignsColumnsAndFormatsNumbers)
{
    TextTable table({"name", "value"});
    table.addRow({"x", TextTable::num(1.5, 2)});
    table.addRow({"longer", TextTable::pct(12.345)});
    std::ostringstream os;
    table.print(os);
    std::string text = os.str();
    EXPECT_NE(std::string::npos, text.find("| name"));
    EXPECT_NE(std::string::npos, text.find("1.50"));
    EXPECT_NE(std::string::npos, text.find("12.3%"));
    // Header separator present.
    EXPECT_NE(std::string::npos, text.find("|-"));
}

TEST(TextTable, RejectsWrongArity)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only one"}), InternalError);
}

TEST(Diagnostics, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(TRAPJIT_PANIC("internal ", 42), InternalError);
    EXPECT_THROW(TRAPJIT_FATAL("usage ", 7), UsageError);
    try {
        TRAPJIT_PANIC("with context ", 1);
    } catch (const InternalError &err) {
        std::string what = err.what();
        EXPECT_NE(std::string::npos, what.find("with context 1"));
        EXPECT_NE(std::string::npos, what.find("test_support.cpp"));
    }
}

TEST(EventTrace, FirstDifferenceFindsDivergence)
{
    EventTrace a, b;
    a.recordWrite(100, 1, 4);
    b.recordWrite(100, 1, 4);
    EXPECT_EQ(-1, EventTrace::firstDifference(a, b));
    a.recordWrite(104, 2, 4);
    b.recordWrite(104, 3, 4);
    EXPECT_EQ(1, EventTrace::firstDifference(a, b));
}

TEST(EventTrace, LengthMismatchIsDifference)
{
    EventTrace a, b;
    a.recordAllocation(0x1000, 16);
    EXPECT_EQ(0, EventTrace::firstDifference(a, b));
    EXPECT_EQ(0, EventTrace::firstDifference(b, a));
}

TEST(EventTrace, DisabledTraceRecordsNothing)
{
    EventTrace trace;
    trace.setEnabled(false);
    trace.recordWrite(1, 2, 4);
    trace.recordEscapedException(ExcKind::NullPointer);
    EXPECT_TRUE(trace.events().empty());
}

TEST(CostModel, ChecksCostWhatTheTargetSays)
{
    Target ia32 = makeIA32WindowsTarget();
    Target ppc = makePPCAIXTarget();

    Instruction check;
    check.op = Opcode::NullCheck;
    check.flavor = CheckFlavor::Explicit;
    EXPECT_DOUBLE_EQ(2.0, instructionCost(check, ia32))
        << "test+branch on IA32";
    EXPECT_DOUBLE_EQ(1.0, instructionCost(check, ppc))
        << "one-cycle conditional trap on PowerPC";

    check.flavor = CheckFlavor::Implicit;
    EXPECT_DOUBLE_EQ(0.0, instructionCost(check, ia32))
        << "an implicit check emits nothing";

    Instruction nop;
    nop.op = Opcode::Nop;
    EXPECT_DOUBLE_EQ(0.0, instructionCost(nop, ia32));
}

TEST(Targets, TrapModelsMatchThePaper)
{
    Target ia32 = makeIA32WindowsTarget();
    EXPECT_TRUE(ia32.trapsOnRead);
    EXPECT_TRUE(ia32.trapsOnWrite);
    EXPECT_FALSE(ia32.allowsReadSpeculation());
    EXPECT_TRUE(ia32.hasExpInstruction);

    Target aix = makePPCAIXTarget();
    EXPECT_FALSE(aix.trapsOnRead) << "AIX reads of page zero succeed";
    EXPECT_TRUE(aix.trapsOnWrite);
    EXPECT_TRUE(aix.allowsReadSpeculation());
    EXPECT_FALSE(aix.hasExpInstruction);

    Target lying = makeIllegalImplicitAIXTarget();
    EXPECT_TRUE(lying.trapsOnRead) << "the lie of Section 5.4";
    EXPECT_TRUE(lying.readOfNullPageYieldsZero)
        << "the honest runtime behavior is preserved";

    Target sparc = makeSPARCTarget();
    EXPECT_TRUE(sparc.trapsOnRead && sparc.trapsOnWrite)
        << "LaTTe assumes all accesses trap";
}

TEST(Targets, TrapCoverageQueries)
{
    Target ia32 = makeIA32WindowsTarget();
    Target aix = makePPCAIXTarget();

    Instruction read;
    read.op = Opcode::GetField;
    read.a = 0;
    read.imm = 16;
    EXPECT_TRUE(ia32.trapCovers(read));
    EXPECT_FALSE(aix.trapCovers(read)) << "reads do not trap on AIX";

    Instruction write;
    write.op = Opcode::PutField;
    write.a = 0;
    write.b = 1;
    write.imm = 16;
    EXPECT_TRUE(ia32.trapCovers(write));
    EXPECT_TRUE(aix.trapCovers(write));

    read.imm = 1 << 20; // far beyond any protected page
    EXPECT_FALSE(ia32.trapCovers(read)) << "Figure 5 big offset";

    Instruction aload;
    aload.op = Opcode::ArrayLoad;
    aload.a = 0;
    aload.b = 1;
    EXPECT_FALSE(ia32.trapCovers(aload))
        << "element offsets are dynamic, never trap-covered";

    Instruction vcall;
    vcall.op = Opcode::Call;
    vcall.callKind = CallKind::Virtual;
    vcall.args = {0};
    EXPECT_TRUE(ia32.trapCovers(vcall)) << "vtable load at the header";
    vcall.callKind = CallKind::Special;
    EXPECT_FALSE(ia32.trapCovers(vcall))
        << "a devirtualized call touches no slot (Figure 1)";
}

TEST(Targets, SpeculationSafetyIsOffsetBounded)
{
    Target aix = makePPCAIXTarget();
    EXPECT_TRUE(aix.readIsSpeculationSafe(0));
    EXPECT_TRUE(aix.readIsSpeculationSafe(aix.trapAreaBytes - 4));
    EXPECT_FALSE(aix.readIsSpeculationSafe(aix.trapAreaBytes))
        << "beyond the first page, AIX reads DO fault";
    EXPECT_FALSE(aix.readIsSpeculationSafe(-1));
}

// -- 128-bit FNV-1a hash -----------------------------------------------

TEST(Hash, MatchesKnownFNV1a128Vectors)
{
    // The offset basis is the hash of the empty string by definition.
    EXPECT_EQ(hashBytes("").toHex(),
              "6c62272e07bb014262b821756295c58d");
    EXPECT_NE(hashBytes("a"), hashBytes("b"));
    EXPECT_NE(hashBytes("ab"), hashBytes("ba"));
}

TEST(Hash, IncrementalEqualsOneShot)
{
    Hasher split;
    split.update(std::string_view("hello "));
    split.update(std::string_view("world"));
    EXPECT_EQ(split.digest(), hashBytes("hello world"));

    // Field framing matters: the uint64 update is not a no-op.
    Hasher framed;
    framed.update(static_cast<uint64_t>(11));
    framed.update(std::string_view("hello world"));
    EXPECT_NE(framed.digest(), hashBytes("hello world"));
}

TEST(Hash, UsableAsUnorderedMapKey)
{
    std::unordered_map<Hash128, int, Hash128Hasher> map;
    map[hashBytes("x")] = 1;
    map[hashBytes("y")] = 2;
    map[hashBytes("x")] = 3;
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map[hashBytes("x")], 3);
}

// -- Job queue / worker pool -------------------------------------------

TEST(WorkerPool, RunsEverySubmittedJobExactlyOnce)
{
    std::atomic<int> counter{0};
    {
        WorkerPool pool(4);
        EXPECT_EQ(pool.numWorkers(), 4u);
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter] { ++counter; });
        // Destructor drains the queue and joins the workers.
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(WorkerPool, LatchReleasesAfterAllJobs)
{
    constexpr int kJobs = 32;
    std::atomic<int> done{0};
    CompletionLatch latch(kJobs);
    WorkerPool pool(2);
    for (int i = 0; i < kJobs; ++i)
        pool.submit([&] {
            ++done;
            latch.countDown();
        });
    latch.wait();
    EXPECT_EQ(done.load(), kJobs);
}

} // namespace
} // namespace trapjit
