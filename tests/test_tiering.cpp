/**
 * @file
 * Differential + lifecycle suite for the profile-guided tiered engine
 * (codegen/native/tiered_engine.h).
 *
 * The tiered engine starts every function in the fast interpreter and
 * promotes hot ones to tiered native blocks mid-run, linking direct
 * rel32 calls between published blocks.  Its claim is the strongest in
 * the repo: every observable — heap bytes, exception (HardFault
 * message included), EventTrace, semantic counters — is bit-identical
 * to the fast interpreter *regardless of when promotion happens*,
 * including across invalidation and re-promotion.  This suite holds it
 * to that:
 *
 *  1. a parametrized sweep: 200 random programs × the full 11-arm
 *     config matrix, each compiled program executed under the fast
 *     interpreter and the tiered engine with a threshold of 2 and
 *     synchronous promotion, so functions tier up in the middle of the
 *     case and frames cross interp -> native -> interp both ways;
 *  2. a policy sweep over the other promotion regimes: background
 *     workers (nondeterministic publish instants must be invisible),
 *     linking off (every cross-block call through the slow stub), and
 *     threshold 1 (everything promotes on first call);
 *  3. directed lifecycle tests: promote -> invalidate -> re-promote
 *     with bit-identical results at every stage, re-tiering driven by
 *     the interpreter's own hotness counters after invalidation, and
 *     the tiering counters (functionsPromoted, slotsPatched,
 *     blocksLinked, blocksInvalidated, tierUpLatencySeconds);
 *  4. an 8-thread promotion stress: engines sharing one CodeRegistry
 *     and TierController race promotions while the main thread
 *     invalidates published blocks under them;
 *  5. auditNativeTrapSites re-run on every block the registry
 *     published (the controller already gates publishing on it; this
 *     checks the published artifacts directly).
 *
 * Execution tests skip where the native tier cannot run (non-x86-64,
 * ASan); the engine-selection and option-parsing tests run anywhere.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdlib>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "analysis/audit/audit.h"
#include "codegen/native/code_registry.h"
#include "codegen/native/native_compiler.h"
#include "codegen/native/native_engine.h"
#include "codegen/native/tiered_engine.h"
#include "interp/decoded_program.h"
#include "interp/fast_interpreter.h"
#include "ir/module.h"
#include "jit/compile_service.h"
#include "jit/compiler.h"
#include "jit/stats.h"
#include "jit/tier_controller.h"
#include "testing/equivalence.h"
#include "testing/random_program.h"
#include "testing/workload_gen/workload_gen.h"

#if !defined(__SANITIZE_ADDRESS__) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define __SANITIZE_ADDRESS__ 1
#endif
#endif

namespace trapjit
{
namespace
{

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kAsanActive = true;
#else
constexpr bool kAsanActive = false;
#endif

#define TRAPJIT_REQUIRE_NATIVE_TIER()                                        \
    do {                                                                     \
        if (!nativeTierSupported())                                          \
            GTEST_SKIP() << "native tier requires x86-64 Linux";             \
        if (kAsanActive)                                                     \
            GTEST_SKIP()                                                     \
                << "guard-page SIGSEGV recovery is incompatible with ASan";  \
    } while (0)

struct Arm
{
    const char *targetName;
    Target (*makeTarget)();
    PipelineConfig (*makeConfig)();
};

// The same 11-arm (target, pipeline) matrix as the other differential
// suites.
const Arm kArms[] = {
    {"ia32", makeIA32WindowsTarget, makeNoOptNoTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeNoOptTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeOldNullCheckConfig},
    {"ia32", makeIA32WindowsTarget, makeNewPhase1OnlyConfig},
    {"ia32", makeIA32WindowsTarget, makeNewFullConfig},
    {"ia32", makeIA32WindowsTarget, makeAltVMConfig},
    {"aix", makePPCAIXTarget, makeAIXNoOptConfig},
    {"aix", makePPCAIXTarget, makeAIXNoSpeculationConfig},
    {"aix", makePPCAIXTarget, makeAIXSpeculationConfig},
    {"sparc", makeSPARCTarget, makeNewFullConfig},
    {"s390", makeS390Target, makeNewFullConfig},
};

using SeedAndArm = std::tuple<uint64_t, size_t>;

std::string
armName(const ::testing::TestParamInfo<SeedAndArm> &info)
{
    const auto [seed, armIdx] = info.param;
    std::string cfg = kArms[armIdx].makeConfig().name;
    for (char &c : cfg)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return "seed" + std::to_string(seed) + "_" +
           kArms[armIdx].targetName + "_" + cfg;
}

// ---------------------------------------------------------------------------
// 1. The mid-case promotion sweep
// ---------------------------------------------------------------------------

class TieredDifferential : public ::testing::TestWithParam<SeedAndArm>
{
};

TEST_P(TieredDifferential, TieredMatchesFastInterpreterMidPromotion)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    const auto [seed, armIdx] = GetParam();
    const Arm &arm = kArms[armIdx];

    GeneratorOptions opts;
    opts.seed = seed;
    std::unique_ptr<Module> mod = generateRandomModule(opts);

    Target target = arm.makeTarget();
    Compiler compiler(target, arm.makeConfig());
    compiler.compile(*mod);

    // Defaults: threshold 2, synchronous — promotion happens mid-case.
    EquivalenceReport report = compareTieredEngine(*mod, target);
    EXPECT_TRUE(report.equivalent)
        << "seed " << seed << " on " << arm.targetName << " / "
        << arm.makeConfig().name << ": " << report.message;
}

// Seeds 500..700 (200 random programs) × 11 arms: the identical
// corpus the plain native sweep runs, so any divergence isolates to
// the tiering machinery rather than the program shape.
INSTANTIATE_TEST_SUITE_P(
    Sweep, TieredDifferential,
    ::testing::Combine(::testing::Range<uint64_t>(500, 700),
                       ::testing::Range<size_t>(0, std::size(kArms))),
    armName);

// ---------------------------------------------------------------------------
// 2. The other promotion policies
// ---------------------------------------------------------------------------

class TieredPolicies : public ::testing::TestWithParam<SeedAndArm>
{
};

TEST_P(TieredPolicies, BackgroundLinkOffAndEagerPoliciesMatch)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    const auto [seed, armIdx] = GetParam();
    const Arm &arm = kArms[armIdx];

    GeneratorOptions opts;
    opts.seed = seed;
    std::unique_ptr<Module> mod = generateRandomModule(opts);
    Target target = arm.makeTarget();
    Compiler compiler(target, arm.makeConfig());
    compiler.compile(*mod);

    // Background workers: *when* a block publishes relative to the
    // executing frames is scheduler-dependent; the observables must
    // not be.
    TieredOptions background;
    background.threshold = 1;
    background.synchronous = false;
    background.workers = 2;
    EquivalenceReport bg = compareTieredEngine(*mod, target, {}, background);
    EXPECT_TRUE(bg.equivalent)
        << "seed " << seed << " on " << arm.targetName << " / "
        << arm.makeConfig().name << " (background): " << bg.message;

    // Linking off: every cross-block call stays on the per-site slow
    // stub, entering published callees through trapjitTieredSlowCall.
    TieredOptions unlinked;
    unlinked.threshold = 2;
    unlinked.synchronous = true;
    unlinked.linkBlocks = false;
    EquivalenceReport nolink =
        compareTieredEngine(*mod, target, {}, unlinked);
    EXPECT_TRUE(nolink.equivalent)
        << "seed " << seed << " on " << arm.targetName << " / "
        << arm.makeConfig().name << " (no linking): " << nolink.message;

    // Threshold 1: everything tiers up at first touch — the all-native
    // extreme of the policy space.
    TieredOptions eager;
    eager.threshold = 1;
    eager.synchronous = true;
    EquivalenceReport all = compareTieredEngine(*mod, target, {}, eager);
    EXPECT_TRUE(all.equivalent)
        << "seed " << seed << " on " << arm.targetName << " / "
        << arm.makeConfig().name << " (eager): " << all.message;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, TieredPolicies,
    ::testing::Combine(::testing::Range<uint64_t>(500, 520),
                       ::testing::Range<size_t>(0, std::size(kArms))),
    armName);

// ---------------------------------------------------------------------------
// Directed lifecycle tests
// ---------------------------------------------------------------------------

/** Everything the engines promise to keep bit-identical. */
struct Observed
{
    ExecResult::Outcome outcome;
    ExcKind exception;
    int64_t valueI;
    uint64_t valueF; ///< bit pattern, NaN-exact
    uint64_t instructions;
    uint64_t calls;
    uint64_t allocations;
    uint64_t trapsTaken;
    uint64_t heapDigest;
    std::vector<Event> events;

    bool operator==(const Observed &) const = default;
};

Observed
observe(const ExecResult &r, const Heap &heap, const EventTrace &trace,
        const ExecStats &stats)
{
    Observed o;
    o.outcome = r.outcome;
    o.exception = r.exception;
    o.valueI = r.value.i;
    o.valueF = std::bit_cast<uint64_t>(r.value.f);
    o.instructions = stats.instructions;
    o.calls = stats.calls;
    o.allocations = stats.allocations;
    o.trapsTaken = stats.trapsTaken;
    o.heapDigest = heap.digest();
    o.events = trace.events();
    return o;
}

/** A fixed call-web workload: multi-function, loops, static calls. */
std::unique_ptr<Module>
buildCallWebModule(uint64_t seed)
{
    const WorkloadProfile *preset = findWorkloadProfile("call_web");
    EXPECT_NE(preset, nullptr);
    WorkloadProfile p = *preset;
    p.seed = seed;
    auto mod = generateWorkloadModule(p);
    Target target = makeIA32WindowsTarget();
    Compiler compiler(target, makeNewFullConfig());
    compiler.compile(*mod);
    return mod;
}

Observed
referenceRun(const Module &mod, const Target &target)
{
    FastInterpreter fast(mod, target);
    ExecResult r = fast.run(mod.findFunction("main"), {});
    return observe(r, fast.heap(), fast.trace(), fast.stats());
}

Observed
tieredRun(TieredEngine &engine, const Module &mod)
{
    engine.reset();
    ExecResult r = engine.run(mod.findFunction("main"), {});
    return observe(r, engine.heap(), engine.trace(), engine.stats());
}

TEST(TieredLifecycle, PromoteInvalidateRepromoteStaysBitIdentical)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();

    for (uint64_t seed : {11u, 12u, 13u}) {
        auto mod = buildCallWebModule(seed);
        FunctionId entry = mod->findFunction("main");
        Observed ref = referenceRun(*mod, target);

        // Threshold high enough that nothing promotes on its own: every
        // transition below is driven explicitly.
        TieredOptions manual;
        manual.threshold = 1u << 30;
        manual.synchronous = true;
        TieredEngine engine(*mod, target, {}, nullptr, {}, manual);
        const CodeRegistry &registry = *engine.registry();

        // Cold: pure interpretation.
        EXPECT_EQ(ref, tieredRun(engine, *mod)) << "seed " << seed;
        EXPECT_EQ(TierState::Cold, registry.state(entry));

        // Promote everything; main at least must publish.
        for (FunctionId f = 0; f < mod->numFunctions(); ++f)
            engine.promoteNow(f);
        ASSERT_EQ(TierState::Published, registry.state(entry))
            << "seed " << seed;
        ASSERT_NE(nullptr, registry.published(entry));
        EXPECT_EQ(ref, tieredRun(engine, *mod))
            << "seed " << seed << " after promotion";

        // Invalidate every published block: states return to Cold, the
        // published pointers clear, and execution falls back to the
        // interpreter with identical observables.
        size_t invalidated = 0;
        for (FunctionId f = 0; f < mod->numFunctions(); ++f) {
            if (registry.state(f) != TierState::Published)
                continue;
            engine.invalidate(f);
            ++invalidated;
            EXPECT_EQ(TierState::Cold, registry.state(f));
            EXPECT_EQ(nullptr, registry.published(f));
        }
        ASSERT_GT(invalidated, 0u);
        EXPECT_EQ(invalidated, registry.blocksInvalidated());
        EXPECT_EQ(ref, tieredRun(engine, *mod))
            << "seed " << seed << " after invalidation";

        // Re-promote: the full cycle must be repeatable.
        engine.promoteNow(entry);
        ASSERT_EQ(TierState::Published, registry.state(entry));
        EXPECT_EQ(ref, tieredRun(engine, *mod))
            << "seed " << seed << " after re-promotion";
    }
}

TEST(TieredLifecycle, InterpreterHotnessRetiersAfterInvalidation)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();
    auto mod = buildCallWebModule(21);
    FunctionId entry = mod->findFunction("main");
    Observed ref = referenceRun(*mod, target);

    TieredOptions opts;
    opts.threshold = 2;
    opts.synchronous = true;
    TieredEngine engine(*mod, target, {}, nullptr, {}, opts);
    const CodeRegistry &registry = *engine.registry();

    // Two runs cross the threshold (each run is one root call of main
    // plus its back-edges), promoting main via the interpreter's own
    // counters.
    EXPECT_EQ(ref, tieredRun(engine, *mod));
    EXPECT_EQ(ref, tieredRun(engine, *mod));
    ASSERT_EQ(TierState::Published, registry.state(entry));

    // Invalidate: hotness resets with it, so re-tiering needs fresh
    // heat — and then happens again, through the same counters.
    engine.invalidate(entry);
    ASSERT_EQ(TierState::Cold, registry.state(entry));
    EXPECT_EQ(ref, tieredRun(engine, *mod));
    EXPECT_EQ(ref, tieredRun(engine, *mod));
    EXPECT_EQ(TierState::Published, registry.state(entry))
        << "invalidated function did not re-tier from interpreter heat";
    EXPECT_EQ(ref, tieredRun(engine, *mod));
}

TEST(TieredLifecycle, TieringCountersFlowIntoServiceCounters)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();
    auto mod = buildCallWebModule(31);

    TieredOptions opts;
    opts.threshold = 1;
    opts.synchronous = true;
    TieredEngine engine(*mod, target, {}, nullptr, {}, opts);
    Observed ref = referenceRun(*mod, target);
    EXPECT_EQ(ref, tieredRun(engine, *mod));

    ServiceCounters counters;
    engine.addTieringCounters(counters);
    EXPECT_GT(counters.functionsPromoted, 0u);
    EXPECT_GE(counters.tierUpLatencySeconds, 0.0);
    // call_web publishes several blocks with static calls between
    // them: publishing must have patched direct links.
    EXPECT_GT(counters.slotsPatched, 0u);
    EXPECT_GT(counters.blocksLinked, 0u);
    EXPECT_EQ(0u, counters.blocksInvalidated);

    FunctionId entry = mod->findFunction("main");
    engine.invalidate(entry);
    ServiceCounters after;
    engine.addTieringCounters(after);
    EXPECT_EQ(1u, after.blocksInvalidated);
    // Unlinking retargets inbound slots back to their stubs, so the
    // patch counter keeps growing on invalidation.
    EXPECT_GE(after.slotsPatched, counters.slotsPatched);
}

// ---------------------------------------------------------------------------
// 4. Concurrent promotion stress
// ---------------------------------------------------------------------------

TEST(TieredStress, EightEnginesRacePromotionsUnderInvalidation)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();
    auto mod = buildCallWebModule(41);
    Observed ref = referenceRun(*mod, target);

    constexpr size_t kThreads = 8;
    constexpr int kRunsPerThread = 12;

    auto registry = std::make_shared<CodeRegistry>(mod->numFunctions());
    auto decoded = std::make_shared<DecodedProgramCache>();
    TierControllerOptions copts;
    copts.synchronous = false;
    copts.workers = 2;
    auto controller = std::make_shared<TierController>(
        *mod, target, registry, decoded, DecodeOptions{}, copts);

    TieredOptions opts;
    opts.threshold = 1;
    opts.synchronous = false;

    // Engines are built (and their signal-handler refcount taken) on
    // this thread; each is then driven by exactly one worker thread.
    std::vector<std::unique_ptr<TieredEngine>> engines;
    for (size_t t = 0; t < kThreads; ++t)
        engines.push_back(std::make_unique<TieredEngine>(
            *mod, target, InterpOptions{}, decoded, DecodeOptions{}, opts,
            registry, controller));

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kRunsPerThread; ++i)
                if (!(tieredRun(*engines[t], *mod) == ref))
                    ++mismatches;
        });
    }

    // Rip published blocks out from under the running engines: both
    // rel32 targets are valid at every instant and invalidated blocks
    // stay alive (graveyard), so in-flight frames finish correctly and
    // later calls fall back to the interpreter until re-promotion.
    for (int round = 0; round < 50; ++round) {
        for (FunctionId f = 0; f < mod->numFunctions(); ++f)
            registry->invalidate(f);
        std::this_thread::yield();
    }

    for (std::thread &th : threads)
        th.join();
    controller->drain();

    EXPECT_EQ(0, mismatches.load())
        << "concurrent promotion/invalidation changed observables";
    EXPECT_GT(controller->functionsPromoted(), 0u);
    EXPECT_GT(registry->blocksInvalidated(), 0u);
}

// ---------------------------------------------------------------------------
// 5. Trap-site audit of every published block
// ---------------------------------------------------------------------------

TEST(TieredAudit, EveryPublishedBlockPassesTrapSiteAudit)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();

    for (uint64_t seed = 540; seed < 550; ++seed) {
        GeneratorOptions gopts;
        gopts.seed = seed;
        auto mod = generateRandomModule(gopts);
        Compiler compiler(target, makeNewFullConfig());
        compiler.compile(*mod);

        TieredOptions opts;
        opts.threshold = 1;
        opts.synchronous = true;
        TieredEngine engine(*mod, target, {}, nullptr, {}, opts);
        try {
            engine.run(mod->findFunction("main"), {});
        } catch (const HardFault &) {
            // Budget/depth faults are legitimate program outcomes for
            // random seeds; published blocks still exist to audit.
        }

        const CodeRegistry &registry = *engine.registry();
        size_t audited = 0;
        for (FunctionId f = 0; f < mod->numFunctions(); ++f) {
            const NativeCode *nc = registry.published(f);
            if (nc == nullptr)
                continue;
            auto df = decodeFunction(mod->function(f), target, {});
            AuditReport report =
                auditNativeTrapSites(mod->function(f), target, *df, *nc);
            EXPECT_EQ(0u, report.errorCount())
                << "seed " << seed << " fn " << mod->function(f).name()
                << ": " << report.format();
            ++audited;
        }
        EXPECT_GT(audited, 0u) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------------
// Decode sharing: one decode per function per process, not per engine
// ---------------------------------------------------------------------------

// The native engine's per-function fast-interp fallback used to decode
// privately when constructed without a cache; it now always routes
// through a DecodedProgramCache, so a cache shared with the compile
// service (or the tier controller, or sibling engines) means the
// decode happens at most once process-wide.  ExecStats.functionsDecoded
// counts decode-cache *misses*, so zero means every lookup was served.

TEST(TieredDecodeSharing, NoRedundantDecodeAcrossServiceAndEngines)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    GeneratorOptions opts;
    opts.seed = 515151;
    auto mod = generateRandomModule(opts);
    Target target = makeIA32WindowsTarget();
    FunctionId entry = mod->findFunction("main");

    CompileServiceOptions sopts;
    sopts.numWorkers = 2;
    CompileService service(target, sopts);
    ServiceReport report = service.compileModule(*mod, makeNewFullConfig());
    ASSERT_GT(report.counters.functionsPredecoded, 0u);

    // Everything forced onto the fallback interpreter: the decode the
    // service already did must be the one the fallback executes from.
    NativeEngineOptions allInterp;
    allInterp.nativeFilter = [](FunctionId) { return false; };
    NativeEngine fallback(*mod, target, {}, service.decodedCache(), {},
                          nullptr, allInterp);
    fallback.run(entry, {});
    EXPECT_EQ(0u, fallback.stats().functionsDecoded)
        << "fallback interpreter re-decoded service-predecoded functions";

    // Mixed native/interpreted dispatch through the same shared cache.
    NativeEngine native(*mod, target, {}, service.decodedCache());
    native.run(entry, {});
    EXPECT_EQ(0u, native.stats().functionsDecoded);

    // Sibling engines sharing a fresh cache: the first pays each
    // decode once, the second none.
    auto cache = std::make_shared<DecodedProgramCache>();
    NativeEngine first(*mod, target, {}, cache);
    first.run(entry, {});
    EXPECT_GT(first.stats().functionsDecoded, 0u);
    NativeEngine second(*mod, target, {}, cache);
    second.run(entry, {});
    EXPECT_EQ(0u, second.stats().functionsDecoded);

    // The tiered engine shares its decode cache with its controller,
    // so even promotion compiles decode nothing new.
    TieredOptions topts;
    topts.threshold = 1;
    topts.synchronous = true;
    TieredEngine tiered(*mod, target, {}, service.decodedCache(), {},
                        topts);
    tiered.run(entry, {});
    EXPECT_EQ(0u, tiered.stats().functionsDecoded);
}

// The optimized backend's deopt side-exits resume frames on the
// fallback interpreter mid-function.  That replay must execute from the
// same shared DecodedProgramCache entry the compile used — a re-decode
// on the deopt path would double the decode cost of exactly the runs
// that are already paying for a trap.
TEST(TieredDecodeSharing, DeoptReplayDoesNotRedecode)
{
    TRAPJIT_REQUIRE_NATIVE_TIER();
    Target target = makeIA32WindowsTarget();
    const WorkloadProfile *preset = findWorkloadProfile("null_storm");
    ASSERT_NE(preset, nullptr);

    size_t deopts = 0;
    for (uint64_t seed = 900; seed < 916; ++seed) {
        WorkloadProfile p = *preset;
        p.seed = seed;
        auto mod = generateWorkloadModule(p);
        Compiler compiler(target, makeNoOptTrapConfig());
        compiler.compile(*mod);
        FunctionId entry = mod->findFunction("main");

        // First engine populates the shared cache (pays the decodes).
        auto cache = std::make_shared<DecodedProgramCache>();
        NativeEngineOptions opts;
        opts.backend = NativeBackend::Optimized;
        {
            NativeEngine warm(*mod, target, {}, cache, {}, nullptr,
                              opts);
            warm.run(entry, {});
        }

        // Second engine shares it; its run deopts (null_storm pushes
        // nulls through speculated loads) and the replay must not
        // decode anything.
        NativeEngine engine(*mod, target, {}, cache, {}, nullptr, opts);
        engine.run(entry, {});
        deopts += engine.deoptsTaken();
        EXPECT_EQ(0u, engine.stats().functionsDecoded)
            << "seed " << seed
            << ": the deopt replay re-decoded a cached function";
    }
    // The sweep is only meaningful if deopt side-exits actually ran.
    EXPECT_GT(deopts, 0u) << "no null_storm seed took a deopt";
}

// ---------------------------------------------------------------------------
// Engine selection + option parsing (host-independent)
// ---------------------------------------------------------------------------

TEST(TieredSelection, EnvVariablePicksTiered)
{
    ASSERT_EQ(0, setenv("TRAPJIT_INTERP", "tiered", 1));
    EXPECT_EQ(InterpEngineKind::Tiered, interpEngineFromEnv());
    ASSERT_EQ(0, unsetenv("TRAPJIT_INTERP"));
    EXPECT_EQ(InterpEngineKind::Fast, interpEngineFromEnv());
    EXPECT_STREQ("tiered", interpEngineName(InterpEngineKind::Tiered));
}

TEST(TieredSelection, OptionsParseFromEnvironment)
{
    ASSERT_EQ(0, setenv("TRAPJIT_TIER_THRESHOLD", "17", 1));
    ASSERT_EQ(0, setenv("TRAPJIT_TIER_SYNC", "1", 1));
    TieredOptions opts = tieredOptionsFromEnv();
    EXPECT_EQ(17u, opts.threshold);
    EXPECT_TRUE(opts.synchronous);

    ASSERT_EQ(0, setenv("TRAPJIT_TIER_SYNC", "0", 1));
    ASSERT_EQ(0, setenv("TRAPJIT_TIER_THRESHOLD", "garbage", 1));
    opts = tieredOptionsFromEnv();
    EXPECT_EQ(TieredOptions{}.threshold, opts.threshold);
    EXPECT_FALSE(opts.synchronous);

    ASSERT_EQ(0, unsetenv("TRAPJIT_TIER_THRESHOLD"));
    ASSERT_EQ(0, unsetenv("TRAPJIT_TIER_SYNC"));
    opts = tieredOptionsFromEnv();
    EXPECT_EQ(TieredOptions{}.threshold, opts.threshold);
    EXPECT_FALSE(opts.synchronous);
}

} // namespace
} // namespace trapjit
