/**
 * @file
 * Tests of the real hardware-trap runtime: a PROT_NONE page plus a
 * SIGSEGV handler implementing null checks with zero hot-path cost —
 * the actual mechanism the paper's JIT uses on Windows and AIX.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "arch/target.h"
#include "codegen/native/native_engine.h"
#include "interp/fast_interpreter.h"
#include "interp/interpreter.h"
#include "ir/builder.h"
#include "jit/compiler.h"
#include "runtime/trap_runtime.h"
#include "testing/equivalence.h"
#include "testing/workload_gen/workload_gen.h"

#if !defined(__SANITIZE_ADDRESS__) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define __SANITIZE_ADDRESS__ 1
#endif
#endif

namespace trapjit
{
namespace
{

TEST(TrapRuntime, ReadOfProtectedPageTrapsToNull)
{
    TrapRuntime runtime;
    uintptr_t simNull = runtime.simNull();

    // A "field read at offset 8" through the null reference.
    auto result = runtime.guardedReadI32(simNull + 8);
    EXPECT_FALSE(result.has_value()) << "the access must trap";
    EXPECT_EQ(1u, runtime.trapsTaken());
}

TEST(TrapRuntime, ReadOfRealMemorySucceeds)
{
    TrapRuntime runtime;
    int32_t cell = 12345;
    auto result =
        runtime.guardedReadI32(reinterpret_cast<uintptr_t>(&cell));
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(12345, *result);
    EXPECT_EQ(0u, runtime.trapsTaken());
}

TEST(TrapRuntime, WriteTrapsAndRecovers)
{
    TrapRuntime runtime;
    EXPECT_FALSE(runtime.guardedWriteI32(runtime.simNull() + 16, 7));
    int32_t cell = 0;
    EXPECT_TRUE(runtime.guardedWriteI32(
        reinterpret_cast<uintptr_t>(&cell), 7));
    EXPECT_EQ(7, cell);
    EXPECT_EQ(1u, runtime.trapsTaken());
}

TEST(TrapRuntime, RepeatedTrapsAllRecover)
{
    TrapRuntime runtime;
    for (int i = 0; i < 50; ++i) {
        auto result = runtime.guardedReadI32(runtime.simNull() + 4 * i);
        EXPECT_FALSE(result.has_value());
    }
    EXPECT_EQ(50u, runtime.trapsTaken());
}

TEST(TrapRuntime, ConcurrentTrapsRecoverIndependently)
{
    // The thread-safety contract: traps taken simultaneously on many
    // threads recover on *their own* thread (thread-local jump buffer,
    // per-thread SA_ONSTACK alternate stack) without cross-talk.  Each
    // thread interleaves faulting and non-faulting accesses so a
    // recovery delivered to the wrong thread would misclassify one of
    // them immediately.
    TrapRuntime runtime;
    constexpr int kThreads = 8;
    constexpr int kIters = 200;
    std::atomic<int> mistakes{0};
    std::atomic<bool> go{false};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&runtime, &mistakes, &go, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            int32_t cell = t;
            for (int i = 0; i < kIters; ++i) {
                auto trapped =
                    runtime.guardedReadI32(runtime.simNull() + 8 * t + 4);
                if (trapped.has_value())
                    mistakes.fetch_add(1, std::memory_order_relaxed);
                auto fine = runtime.guardedReadI32(
                    reinterpret_cast<uintptr_t>(&cell));
                if (!fine.has_value() || *fine != t)
                    mistakes.fetch_add(1, std::memory_order_relaxed);
                if (!runtime.guardedWriteI32(
                        reinterpret_cast<uintptr_t>(&cell), t))
                    mistakes.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (std::thread &th : threads)
        th.join();

    EXPECT_EQ(0, mistakes.load());
    EXPECT_EQ(static_cast<uint64_t>(kThreads) * kIters,
              runtime.trapsTaken());
}

TEST(TrapRuntime, ConcurrentEnginesRunTrapHeavyKernelsInIsolation)
{
    // The full-stack version of ConcurrentTrapsRecoverIndependently:
    // eight mutator threads simultaneously execute *different*
    // fuzz-generated trap-heavy programs on all three engines
    // (reference, fast, native where available — the native threads
    // take real guard-page SIGSEGVs), and every thread must reproduce
    // the exact single-threaded result — outcome, exception, return value, trap
    // count and final heap bytes.  Cross-thread trap delivery would
    // corrupt one of them instantly.
    constexpr int kThreads = 8;
    constexpr int kItersPerThread = 6;

#if defined(__SANITIZE_ADDRESS__)
    constexpr bool nativeUsable = false;
#else
    constexpr bool nativeUsable = nativeTierSupported();
#endif

    Target target = makeIA32WindowsTarget();
    const WorkloadProfile *storm = findWorkloadProfile("null_storm");
    ASSERT_NE(storm, nullptr);

    struct Expected
    {
        std::unique_ptr<Module> mod;
        FunctionId entry = kNoFunction;
        ExecResult result;
        uint64_t heapDigest = 0;
    };
    std::vector<Expected> cases(kThreads);
    uint64_t expectedTraps = 0;
    for (int t = 0; t < kThreads; ++t) {
        WorkloadProfile p = *storm;
        p.seed = 420 + static_cast<uint64_t>(t);
        cases[t].mod = generateWorkloadModule(p);
        Compiler compiler(target, makeNewFullConfig());
        compiler.compile(*cases[t].mod);
        cases[t].entry = cases[t].mod->findFunction("main");
        Interpreter ref(*cases[t].mod, target);
        cases[t].result = ref.run(cases[t].entry, {});
        cases[t].heapDigest = ref.heap().digest();
        expectedTraps += cases[t].result.stats.trapsTaken;
    }
    // The regime must actually exercise the trap path.
    ASSERT_GT(expectedTraps, 0u);

    std::atomic<int> mistakes{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const Expected &want = cases[t];
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kItersPerThread; ++i) {
                ExecResult got;
                uint64_t digest = 0;
                const int engine = t % 3;
                if (engine == 0) {
                    Interpreter ref(*want.mod, target);
                    got = ref.run(want.entry, {});
                    digest = ref.heap().digest();
                } else if (engine == 1 || !nativeUsable) {
                    FastInterpreter fast(*want.mod, target);
                    got = fast.run(want.entry, {});
                    digest = fast.heap().digest();
                } else {
                    NativeEngine native(*want.mod, target);
                    got = native.run(want.entry, {});
                    digest = native.heap().digest();
                }
                const bool ok =
                    got.outcome == want.result.outcome &&
                    got.exception == want.result.exception &&
                    (got.outcome != ExecResult::Outcome::Returned ||
                     got.value.i == want.result.value.i) &&
                    got.stats.trapsTaken ==
                        want.result.stats.trapsTaken &&
                    digest == want.heapDigest;
                if (!ok)
                    mistakes.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(0, mistakes.load());
}

TEST(TrapRuntime, TrapCoverageMatchesPageBounds)
{
    TrapRuntime runtime;
    // In-page offsets are trap-covered; beyond the page they are not —
    // the Figure 5 "BigOffset requires an explicit check" rule.
    EXPECT_TRUE(runtime.trapCoversAddress(runtime.simNull()));
    EXPECT_TRUE(runtime.trapCoversAddress(runtime.simNull() +
                                          runtime.trapAreaBytes() - 1));
    EXPECT_FALSE(runtime.trapCoversAddress(runtime.simNull() +
                                           runtime.trapAreaBytes()));
}

// ---------------------------------------------------------------------------
// Trap semantics on the fast path
// ---------------------------------------------------------------------------
//
// The pre-decoded engine bakes each memory access's trap verdict
// (exception site? trap-covered offset? speculation-safe read?) into
// flag bits at decode time instead of consulting the Target per access.
// These tests pin every edge of that decision table to the reference
// interpreter's behavior — same exception, same counters, and for
// miscompiles the same HardFault message.

/** A marked (implicit-check) getfield of `null.field(offset)`. */
std::unique_ptr<Module>
buildMarkedNullRead(int64_t offset, bool marked, bool speculative)
{
    auto mod = std::make_unique<Module>();
    Function &fn = mod->addFunction("main", Type::I32);
    IRBuilder b(fn);
    b.startBlock();
    ValueId nil = b.constNull();
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = nil;
    gf.imm = offset;
    gf.exceptionSite = marked;
    gf.speculative = speculative;
    b.emit(gf);
    b.ret(gf.dst);
    return mod;
}

TEST(FastPathTrapSemantics, ImplicitCheckNPEMatchesReference)
{
    auto mod = buildMarkedNullRead(8, /*marked=*/true,
                                   /*speculative=*/false);
    Target ia32 = makeIA32WindowsTarget();
    EquivalenceReport report = compareEngines(*mod, ia32);
    EXPECT_TRUE(report.equivalent) << report.message;

    FastInterpreter fast(*mod, ia32);
    ExecResult r = fast.run(mod->findFunction("main"), {});
    ASSERT_EQ(ExecResult::Outcome::Threw, r.outcome);
    EXPECT_EQ(ExcKind::NullPointer, r.exception);
    EXPECT_EQ(1u, r.stats.trapsTaken);
}

TEST(FastPathTrapSemantics, SpeculativeNullReadYieldsZeroOnAIX)
{
    auto mod = buildMarkedNullRead(8, /*marked=*/false,
                                   /*speculative=*/true);
    Target aix = makePPCAIXTarget();
    EquivalenceReport report = compareEngines(*mod, aix);
    EXPECT_TRUE(report.equivalent) << report.message;

    FastInterpreter fast(*mod, aix);
    ExecResult r = fast.run(mod->findFunction("main"), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(0, r.value.i);
    EXPECT_EQ(1u, r.stats.speculativeReadsOfNull);
    EXPECT_EQ(0u, r.stats.trapsTaken);
}

TEST(FastPathTrapSemantics, SpeculativeNullReadFaultsIdenticallyOnIA32)
{
    // The same speculative shape is a miscompile where reads through
    // the null page trap; both engines must agree on the exact fault.
    auto mod = buildMarkedNullRead(8, /*marked=*/false,
                                   /*speculative=*/true);
    Target ia32 = makeIA32WindowsTarget();
    EquivalenceReport report = compareEngines(*mod, ia32);
    EXPECT_TRUE(report.equivalent)
        << "both engines should hard-fault identically: "
        << report.message;

    std::string fastMessage;
    try {
        FastInterpreter fast(*mod, ia32);
        fast.run(mod->findFunction("main"), {});
        FAIL() << "speculative null read must fault on ia32";
    } catch (const HardFault &fault) {
        fastMessage = fault.what();
    }
    try {
        Interpreter ref(*mod, ia32);
        ref.run(mod->findFunction("main"), {});
        FAIL() << "speculative null read must fault on ia32";
    } catch (const HardFault &fault) {
        EXPECT_EQ(std::string(fault.what()), fastMessage);
    }
}

TEST(FastPathTrapSemantics, IllegalImplicitReadSilentZeroMatches)
{
    // Section 5.4 "Illegal Implicit": a marked *read* on a target that
    // only traps writes loses the NPE and silently yields zero.  The
    // decode-time kDecodedIllegalZero flag must reproduce this exactly.
    auto mod = buildMarkedNullRead(8, /*marked=*/true,
                                   /*speculative=*/false);
    Target aix = makePPCAIXTarget();
    EquivalenceReport report = compareEngines(*mod, aix);
    EXPECT_TRUE(report.equivalent) << report.message;

    FastInterpreter fast(*mod, aix);
    ExecResult r = fast.run(mod->findFunction("main"), {});
    ASSERT_EQ(ExecResult::Outcome::Returned, r.outcome);
    EXPECT_EQ(0, r.value.i);
    EXPECT_EQ(0u, r.stats.trapsTaken);
}

TEST(FastPathTrapSemantics, HardFaultMessagesMatchReference)
{
    // Unmarked null dereference (plain miscompile) and a marked access
    // beyond the protected page (Figure 5 BigOffset rule): in both
    // cases the engines must throw HardFault with the same text.
    Target ia32 = makeIA32WindowsTarget();
    struct Shape
    {
        int64_t offset;
        bool marked;
    };
    for (const Shape &shape : {Shape{8, false}, Shape{8192, true}}) {
        auto mod = buildMarkedNullRead(shape.offset, shape.marked,
                                       /*speculative=*/false);
        EquivalenceReport report = compareEngines(*mod, ia32);
        EXPECT_TRUE(report.equivalent)
            << "offset " << shape.offset << " marked " << shape.marked
            << ": " << report.message;

        std::string refMessage;
        std::string fastMessage;
        try {
            Interpreter ref(*mod, ia32);
            ref.run(mod->findFunction("main"), {});
        } catch (const HardFault &fault) {
            refMessage = fault.what();
        }
        try {
            FastInterpreter fast(*mod, ia32);
            fast.run(mod->findFunction("main"), {});
        } catch (const HardFault &fault) {
            fastMessage = fault.what();
        }
        EXPECT_FALSE(refMessage.empty());
        EXPECT_EQ(refMessage, fastMessage);
    }
}

} // namespace
} // namespace trapjit
