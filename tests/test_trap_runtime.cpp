/**
 * @file
 * Tests of the real hardware-trap runtime: a PROT_NONE page plus a
 * SIGSEGV handler implementing null checks with zero hot-path cost —
 * the actual mechanism the paper's JIT uses on Windows and AIX.
 */

#include <gtest/gtest.h>

#include "runtime/trap_runtime.h"

namespace trapjit
{
namespace
{

TEST(TrapRuntime, ReadOfProtectedPageTrapsToNull)
{
    TrapRuntime runtime;
    uintptr_t simNull = runtime.simNull();

    // A "field read at offset 8" through the null reference.
    auto result = runtime.guardedReadI32(simNull + 8);
    EXPECT_FALSE(result.has_value()) << "the access must trap";
    EXPECT_EQ(1u, runtime.trapsTaken());
}

TEST(TrapRuntime, ReadOfRealMemorySucceeds)
{
    TrapRuntime runtime;
    int32_t cell = 12345;
    auto result =
        runtime.guardedReadI32(reinterpret_cast<uintptr_t>(&cell));
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(12345, *result);
    EXPECT_EQ(0u, runtime.trapsTaken());
}

TEST(TrapRuntime, WriteTrapsAndRecovers)
{
    TrapRuntime runtime;
    EXPECT_FALSE(runtime.guardedWriteI32(runtime.simNull() + 16, 7));
    int32_t cell = 0;
    EXPECT_TRUE(runtime.guardedWriteI32(
        reinterpret_cast<uintptr_t>(&cell), 7));
    EXPECT_EQ(7, cell);
    EXPECT_EQ(1u, runtime.trapsTaken());
}

TEST(TrapRuntime, RepeatedTrapsAllRecover)
{
    TrapRuntime runtime;
    for (int i = 0; i < 50; ++i) {
        auto result = runtime.guardedReadI32(runtime.simNull() + 4 * i);
        EXPECT_FALSE(result.has_value());
    }
    EXPECT_EQ(50u, runtime.trapsTaken());
}

TEST(TrapRuntime, TrapCoverageMatchesPageBounds)
{
    TrapRuntime runtime;
    // In-page offsets are trap-covered; beyond the page they are not —
    // the Figure 5 "BigOffset requires an explicit check" rule.
    EXPECT_TRUE(runtime.trapCoversAddress(runtime.simNull()));
    EXPECT_TRUE(runtime.trapCoversAddress(runtime.simNull() +
                                          runtime.trapAreaBytes() - 1));
    EXPECT_FALSE(runtime.trapCoversAddress(runtime.simNull() +
                                           runtime.trapAreaBytes()));
}

} // namespace
} // namespace trapjit
