/**
 * @file
 * Regression tests for PipelineConfig::verifyAfterEachPass: a pipeline
 * built with the flag runs the IR verifier before the first pass and
 * after every pass, so a corrupted module is rejected with an
 * InternalError naming the boundary — instead of silently flowing into
 * later passes or the backend.
 */

#include <gtest/gtest.h>

#include "ir/serializer.h"
#include "jit/compile_service.h"
#include "jit/compiler.h"
#include "support/diagnostics.h"
#include "testing/random_program.h"

namespace trapjit
{
namespace
{

std::unique_ptr<Module>
makeModule(uint64_t seed)
{
    GeneratorOptions opts;
    opts.seed = seed;
    return generateRandomModule(opts);
}

/**
 * Damage a module in a way recomputeCFG tolerates but the verifier
 * catches: point a non-terminator operand at a value id that does not
 * exist in the function.
 */
void
corrupt(Module &mod)
{
    for (FunctionId f = 0; f < mod.numFunctions(); ++f) {
        Function &fn = mod.function(f);
        for (size_t b = 0; b < fn.numBlocks(); ++b) {
            for (Instruction &inst :
                 fn.block(static_cast<BlockId>(b)).insts()) {
                if (inst.a == kNoValue)
                    continue;
                inst.a = static_cast<ValueId>(fn.numValues() + 9999);
                return;
            }
        }
    }
    FAIL() << "generated module has no instruction to corrupt";
}

TEST(VerifyAfterEachPass, CatchesCorruptedInputModule)
{
    auto mod = makeModule(42);
    corrupt(*mod);

    PipelineConfig config = makeNewFullConfig();
    config.verifyAfterEachPass = true;
    Compiler compiler(makeIA32WindowsTarget(), config);
    EXPECT_THROW(compiler.compile(*mod), InternalError);
}

TEST(VerifyAfterEachPass, CatchesCorruptionThroughTheService)
{
    auto mod = makeModule(42);
    corrupt(*mod);

    PipelineConfig config = makeNewFullConfig();
    config.verifyAfterEachPass = true;
    CompileServiceOptions options;
    options.numWorkers = 4;
    CompileService service(makeIA32WindowsTarget(), options);
    // The worker's exception must cross the thread boundary and come
    // out of compileModule on the calling thread.
    EXPECT_THROW(service.compileModule(*mod, config), InternalError);
}

TEST(VerifyAfterEachPass, DoesNotChangeCompilationOutput)
{
    PipelineConfig plain = makeNewFullConfig();
    PipelineConfig checked = makeNewFullConfig();
    checked.verifyAfterEachPass = true;
    Target target = makeIA32WindowsTarget();

    auto a = makeModule(9);
    auto b = makeModule(9);
    Compiler(target, plain).compile(*a);
    Compiler(target, checked).compile(*b);
    EXPECT_EQ(serializeModuleToString(*a), serializeModuleToString(*b));

    // The fingerprint ignores the flag: verification is observationally
    // free, so cached artifacts stay shareable across the two modes.
    EXPECT_EQ(configFingerprint(plain), configFingerprint(checked));
}

} // namespace
} // namespace trapjit
