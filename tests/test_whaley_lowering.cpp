/**
 * @file
 * Unit tests of the baseline machinery: Whaley's forward-only
 * elimination (the "Old Null Check" algorithm) and the naive
 * hardware-trap peephole used by the non-phase-2 configurations.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/module.h"
#include "opt/nullcheck/local_trap_lowering.h"
#include "opt/nullcheck/whaley.h"

namespace trapjit
{
namespace
{

Target ia32 = makeIA32WindowsTarget();

size_t
countChecks(const Function &fn, CheckFlavor flavor)
{
    size_t n = 0;
    for (size_t b = 0; b < fn.numBlocks(); ++b)
        for (const Instruction &inst :
             fn.block(static_cast<BlockId>(b)).insts())
            if (inst.op == Opcode::NullCheck && inst.flavor == flavor)
                ++n;
    return n;
}

template <typename PassT>
bool
runPass(Function &fn, const Target &target)
{
    static Module dummy;
    fn.recomputeCFG();
    PassContext ctx{dummy, target, false};
    PassT pass;
    return pass.runOnFunction(fn, ctx);
}

TEST(Whaley, EliminatesStraightLineRedundancy)
{
    Module mod;
    Function &fn = mod.addFunction("w", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v1 = b.getField(a, 8, Type::I32);
    ValueId v2 = b.getField(a, 16, Type::I32); // redundant check
    ValueId sum = b.binop(Opcode::IAdd, v1, v2);
    b.ret(sum);

    EXPECT_TRUE(runPass<WhaleyNullCheckElimination>(fn, ia32));
    EXPECT_EQ(1u, countChecks(fn, CheckFlavor::Explicit));
}

TEST(Whaley, CannotRemoveLoopInvariantCheck)
{
    // The Section 2.2 drawback: the first in-loop check survives
    // because the loop-entry path has no prior check.
    Module mod;
    Function &fn = mod.addFunction("w", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId n = fn.addParam(Type::I32, "n");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &body = fn.newBlock();
    BasicBlock &exit = fn.newBlock();
    ValueId i = fn.addLocal(Type::I32, "i");
    b.atEnd(entry);
    b.move(i, b.constInt(0));
    b.jump(body);
    b.atEnd(body);
    ValueId v = b.getField(a, 8, Type::I32);
    ValueId i2 = b.binop(Opcode::IAdd, i, v);
    b.move(i, i2);
    ValueId more = b.cmp(Opcode::ICmp, CmpPred::LT, i, n);
    b.branch(more, body, exit);
    b.atEnd(exit);
    b.ret(i);

    runPass<WhaleyNullCheckElimination>(fn, ia32);
    size_t inLoop = 0;
    for (const Instruction &inst : fn.block(body.id()).insts())
        if (inst.op == Opcode::NullCheck)
            ++inLoop;
    EXPECT_EQ(1u, inLoop)
        << "forward-only analysis must keep the in-loop check";
}

TEST(Whaley, MergeRequiresBothPaths)
{
    Module mod;
    Function &fn = mod.addFunction("w", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId cond = fn.addParam(Type::I32, "c");
    IRBuilder b(fn);
    BasicBlock &entry = b.startBlock();
    BasicBlock &left = fn.newBlock();
    BasicBlock &right = fn.newBlock();
    BasicBlock &merge = fn.newBlock();
    b.atEnd(entry);
    b.branch(cond, left, right);
    b.atEnd(left);
    ValueId v1 = b.getField(a, 8, Type::I32);
    (void)v1;
    b.jump(merge);
    b.atEnd(right);
    b.jump(merge);
    b.atEnd(merge);
    ValueId v2 = b.getField(a, 8, Type::I32);
    b.ret(v2);

    runPass<WhaleyNullCheckElimination>(fn, ia32);
    size_t inMerge = 0;
    for (const Instruction &inst : fn.block(merge.id()).insts())
        if (inst.op == Opcode::NullCheck)
            ++inMerge;
    EXPECT_EQ(1u, inMerge)
        << "one path lacks a check, so the merge check must stay "
           "(Figure 3's motivation)";
}

TEST(Lowering, AdjacentTrappingAccessConverts)
{
    Module mod;
    Function &fn = mod.addFunction("l", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v = b.getField(a, 8, Type::I32);
    b.ret(v);

    EXPECT_TRUE(runPass<LocalTrapLowering>(fn, ia32));
    EXPECT_EQ(0u, countChecks(fn, CheckFlavor::Explicit));
    EXPECT_EQ(1u, countChecks(fn, CheckFlavor::Implicit));
}

TEST(Lowering, BigOffsetDoesNotConvert)
{
    Module mod;
    Function &fn = mod.addFunction("l", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v = b.getField(a, 8192, Type::I32);
    b.ret(v);

    runPass<LocalTrapLowering>(fn, ia32);
    EXPECT_EQ(1u, countChecks(fn, CheckFlavor::Explicit));
}

TEST(Lowering, StopsAtSideEffect)
{
    Module mod;
    Function &fn = mod.addFunction("l", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId w = fn.addParam(Type::Ref, "w");
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    b.nullCheck(a);
    b.putField(w, 8, x); // barrier between check and access
    Instruction gf;
    gf.op = Opcode::GetField;
    gf.dst = fn.addTemp(Type::I32);
    gf.a = a;
    gf.imm = 8;
    b.emit(gf);
    b.ret(gf.dst);

    runPass<LocalTrapLowering>(fn, ia32);
    // The check of a must stay explicit (the NPE must precede the
    // store); w's own check may convert onto the putfield.
    size_t explicitOfA = 0;
    for (const Instruction &inst : fn.entry().insts())
        if (inst.op == Opcode::NullCheck && inst.a == a &&
            inst.flavor == CheckFlavor::Explicit)
            ++explicitOfA;
    EXPECT_EQ(1u, explicitOfA);
}

TEST(Lowering, StopsAtAccessOfMayAliasCopy)
{
    Module mod;
    Function &fn = mod.addFunction("l", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    IRBuilder b(fn);
    b.startBlock();
    ValueId r = fn.addLocal(Type::Ref, "r");
    b.move(r, a);
    b.nullCheck(a);
    // The copy's access would dereference the same reference before the
    // deferred trap; the scan must stop.
    Instruction gf1;
    gf1.op = Opcode::GetField;
    gf1.dst = fn.addTemp(Type::I32);
    gf1.a = r;
    gf1.imm = 8;
    b.emit(gf1);
    Instruction gf2;
    gf2.op = Opcode::GetField;
    gf2.dst = fn.addTemp(Type::I32);
    gf2.a = a;
    gf2.imm = 8;
    b.emit(gf2);
    ValueId sum = b.binop(Opcode::IAdd, gf1.dst, gf2.dst);
    b.ret(sum);

    runPass<LocalTrapLowering>(fn, ia32);
    EXPECT_EQ(1u, countChecks(fn, CheckFlavor::Explicit))
        << "deferring past the copy's access would leave it unguarded";
}

TEST(Lowering, WriteOnlyTrapTargetConvertsOnlyWrites)
{
    Target aix = makePPCAIXTarget();
    Module mod;
    Function &fn = mod.addFunction("l", Type::I32);
    ValueId a = fn.addParam(Type::Ref, "a");
    ValueId w = fn.addParam(Type::Ref, "w");
    ValueId x = fn.addParam(Type::I32, "x");
    IRBuilder b(fn);
    b.startBlock();
    ValueId v = b.getField(a, 8, Type::I32); // read: stays explicit
    b.putField(w, 8, x);                     // write: converts
    b.ret(v);

    runPass<LocalTrapLowering>(fn, aix);
    size_t explicitChecks = countChecks(fn, CheckFlavor::Explicit);
    size_t implicitChecks = countChecks(fn, CheckFlavor::Implicit);
    EXPECT_EQ(1u, explicitChecks);
    EXPECT_EQ(1u, implicitChecks);
}

} // namespace
} // namespace trapjit
