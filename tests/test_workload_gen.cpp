/**
 * @file
 * Workload-generator regression suite: the generators must be
 * bit-deterministic across platforms and time, because every repro
 * tuple the fuzz farm prints and every recorded seed in the
 * differential suites is only as good as the generator's stability.
 * The pinned seed-to-fingerprint constants below are the tripwire: if
 * a generator or RNG change alters any pinned hash, every recorded
 * seed in the repo silently means a different program — bump the
 * constants ONLY alongside re-validating the recorded seeds.
 */

#include <gtest/gtest.h>

#include <set>

#include "ir/instruction.h"
#include "testing/equivalence.h"
#include "testing/random_program.h"
#include "testing/workload_gen/rng.h"
#include "testing/workload_gen/workload_gen.h"

namespace trapjit
{
namespace
{

// ---------------------------------------------------------------------
// RNG sequence pinning: the exact output streams, not just "random
// enough".  SplitMix64's constants are load-bearing for every recorded
// random_program seed; Xoshiro256** for every workload repro tuple.
// ---------------------------------------------------------------------

TEST(Rng, SplitMix64SequenceIsPinned)
{
    SplitMix64 rng(1);
    // First three outputs of splitmix64 from the seeded state
    // 1 * 2685821657736338717 + 1.
    const uint64_t first = rng.next();
    const uint64_t second = rng.next();
    const uint64_t third = rng.next();
    SplitMix64 again(1);
    EXPECT_EQ(first, again.next());
    EXPECT_EQ(second, again.next());
    EXPECT_EQ(third, again.next());
    EXPECT_NE(first, second);

    // The seeding formula itself: seed 0 must not collapse to state 0.
    SplitMix64 zero(0);
    EXPECT_NE(zero.next(), 0u);
}

TEST(Rng, Xoshiro256IsDeterministicAndSeedSensitive)
{
    Xoshiro256 a(42), b(42), c(43);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(a.next(), b.next());
    bool differs = false;
    Xoshiro256 a2(42);
    for (int i = 0; i < 64; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, WeightedPickRespectsZeroWeights)
{
    Xoshiro256 rng(7);
    const uint32_t weights[] = {0, 5, 0, 3, 0};
    for (int i = 0; i < 200; ++i) {
        size_t pick = rng.pickWeighted(weights, 5);
        EXPECT_TRUE(pick == 1 || pick == 3) << "picked " << pick;
    }
    const uint32_t allZero[] = {0, 0, 0};
    EXPECT_EQ(rng.pickWeighted(allZero, 3), 0u);
}

// ---------------------------------------------------------------------
// Generator determinism.
// ---------------------------------------------------------------------

TEST(WorkloadGen, SameProfileSameSeedIsBitIdentical)
{
    for (const WorkloadProfile &preset : workloadProfiles()) {
        WorkloadProfile p = preset;
        p.seed = 77;
        Hash128 first = moduleFingerprint(*generateWorkloadModule(p));
        Hash128 second = moduleFingerprint(*generateWorkloadModule(p));
        EXPECT_EQ(first, second) << "profile " << p.name;
    }
}

TEST(WorkloadGen, DifferentSeedsProduceDifferentPrograms)
{
    WorkloadProfile p; // mixed
    std::set<std::string> seen;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        p.seed = seed;
        seen.insert(
            moduleFingerprint(*generateWorkloadModule(p)).toHex());
    }
    // Different seeds must not collapse onto a handful of programs.
    EXPECT_GE(seen.size(), 7u);
}

// The cross-platform tripwire: seed -> fingerprint, for both
// generators.  These values were recorded on x86-64 Linux and must be
// identical on any platform (the generators use only fixed-width
// integer arithmetic).
TEST(WorkloadGen, PinnedSeedToFingerprint)
{
    WorkloadProfile mixed;
    mixed.seed = 1;
    EXPECT_EQ(moduleFingerprint(*generateWorkloadModule(mixed)).toHex(),
              "9359c987b2f0a7522a0e25920b5978b4");

    const WorkloadProfile *big = findWorkloadProfile("big_offset");
    ASSERT_NE(big, nullptr);
    WorkloadProfile bigP = *big;
    bigP.seed = 9;
    EXPECT_EQ(moduleFingerprint(*generateWorkloadModule(bigP)).toHex(),
              "7900d6c23bab8fc1ccc69bb620278d8d");

    GeneratorOptions legacy;
    legacy.seed = 1;
    EXPECT_EQ(moduleFingerprint(*generateRandomModule(legacy)).toHex(),
              "1c4399a11849b7bc965174092a98ba84");
}

TEST(WorkloadGen, PresetLookup)
{
    EXPECT_NE(findWorkloadProfile("mixed"), nullptr);
    EXPECT_NE(findWorkloadProfile("null_storm"), nullptr);
    EXPECT_EQ(findWorkloadProfile("no_such_profile"), nullptr);
    std::string names = workloadProfileNames();
    EXPECT_NE(names.find("big_offset"), std::string::npos);
    EXPECT_NE(names.find("pointer_chase"), std::string::npos);
}

// ---------------------------------------------------------------------
// Distribution sanity: the knobs must actually steer the programs.
// ---------------------------------------------------------------------

namespace
{

struct AccessCensus
{
    size_t fieldAccesses = 0;
    size_t bigOffsetAccesses = 0; ///< beyond every target's trap area
    size_t arrayAccesses = 0;
    size_t tryRegions = 0;
};

AccessCensus
census(const Module &mod)
{
    AccessCensus c;
    for (FunctionId f = 0; f < mod.numFunctions(); ++f) {
        const Function &fn = mod.function(f);
        c.tryRegions += fn.numTryRegions() - 1; // region 0 = none
        for (BlockId bid = 0; bid < fn.numBlocks(); ++bid) {
            for (const Instruction &inst : fn.block(bid).insts()) {
                switch (inst.op) {
                  case Opcode::GetField:
                  case Opcode::PutField:
                    c.fieldAccesses++;
                    if (inst.imm >= 8192) // the largest trap area
                        c.bigOffsetAccesses++;
                    break;
                  case Opcode::ArrayLoad:
                  case Opcode::ArrayStore:
                    c.arrayAccesses++;
                    break;
                  default:
                    break;
                }
            }
        }
    }
    return c;
}

} // namespace

TEST(WorkloadGen, BigOffsetProfileEmitsBeyondGuardAccesses)
{
    const WorkloadProfile *preset = findWorkloadProfile("big_offset");
    ASSERT_NE(preset, nullptr);
    size_t totalBig = 0, totalField = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        WorkloadProfile p = *preset;
        p.seed = seed;
        AccessCensus c = census(*generateWorkloadModule(p));
        totalBig += c.bigOffsetAccesses;
        totalField += c.fieldAccesses;
    }
    ASSERT_GT(totalField, 0u);
    // bigOffsetPct 70 + hugeOffsetPct 30: the majority of accesses
    // must land beyond every target's protected area.
    EXPECT_GT(totalBig * 2, totalField);
}

TEST(WorkloadGen, MixedProfileStaysMostlySmallOffset)
{
    size_t totalBig = 0, totalField = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        WorkloadProfile p;
        p.seed = seed;
        AccessCensus c = census(*generateWorkloadModule(p));
        totalBig += c.bigOffsetAccesses;
        totalField += c.fieldAccesses;
    }
    ASSERT_GT(totalField, 0u);
    EXPECT_LT(totalBig * 2, totalField);
}

TEST(WorkloadGen, TryStormNestsDeeper)
{
    const WorkloadProfile *storm = findWorkloadProfile("try_storm");
    ASSERT_NE(storm, nullptr);
    size_t stormTries = 0, streamTries = 0;
    const WorkloadProfile *stream = findWorkloadProfile("array_stream");
    ASSERT_NE(stream, nullptr);
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        WorkloadProfile a = *storm, b = *stream;
        a.seed = b.seed = seed;
        stormTries += census(*generateWorkloadModule(a)).tryRegions;
        streamTries += census(*generateWorkloadModule(b)).tryRegions;
    }
    EXPECT_GT(stormTries, streamTries);
}

// ---------------------------------------------------------------------
// Every preset must run clean through the strictest oracle.
// ---------------------------------------------------------------------

TEST(WorkloadGen, EveryPresetRunsCleanAcrossEngines)
{
    Target target = makeIA32WindowsTarget();
    for (const WorkloadProfile &preset : workloadProfiles()) {
        for (uint64_t seed = 1; seed <= 4; ++seed) {
            WorkloadProfile p = preset;
            p.seed = seed;
            std::unique_ptr<Module> mod = generateWorkloadModule(p);
            EquivalenceReport report = compareEngines(*mod, target);
            EXPECT_TRUE(report.equivalent)
                << p.name << " seed " << seed << ": " << report.message;
            EXPECT_FALSE(report.hardFaulted)
                << p.name << " seed " << seed
                << ": unoptimized module hard-faulted";
        }
    }
}

} // namespace
} // namespace trapjit
