/**
 * @file
 * Integration tests over the synthetic workloads: every workload must
 * verify, be fully check-covered, return the same checksum under every
 * semantics-preserving configuration, and show the monotone cost
 * structure the paper's tables rely on (optimizing never makes the
 * simulated cycle count worse, and each phase never increases the
 * number of dynamically executed explicit checks).
 */

#include <gtest/gtest.h>

#include "ir/verifier.h"
#include "opt/nullcheck/check_coverage.h"
#include "workloads/workload.h"

namespace trapjit
{
namespace
{

std::vector<const Workload *>
allWorkloads()
{
    std::vector<const Workload *> all;
    for (const Workload &w : jbytemarkWorkloads())
        all.push_back(&w);
    for (const Workload &w : specjvmWorkloads())
        all.push_back(&w);
    return all;
}

std::vector<PipelineConfig>
mainConfigs()
{
    return {makeNoOptNoTrapConfig(), makeNoOptTrapConfig(),
            makeOldNullCheckConfig(), makeNewPhase1OnlyConfig(),
            makeNewFullConfig()};
}

class WorkloadTest : public ::testing::TestWithParam<const Workload *>
{
};

TEST_P(WorkloadTest, BuildsAndVerifies)
{
    const Workload &w = *GetParam();
    auto mod = w.build();
    VerifyResult result = verifyModule(*mod);
    EXPECT_TRUE(result.ok()) << result.message();
}

TEST_P(WorkloadTest, ReferenceRunReturns)
{
    const Workload &w = *GetParam();
    Target target = makeIA32WindowsTarget();
    Compiler noop(target, makeNoOptNoTrapConfig());
    WorkloadRun run = runWorkload(w, noop, target);
    EXPECT_TRUE(run.ok) << w.name << " threw " << excName(run.exception);
}

TEST_P(WorkloadTest, ChecksumAgreesAcrossConfigsIA32)
{
    const Workload &w = *GetParam();
    Target target = makeIA32WindowsTarget();
    int64_t expected = 0;
    bool first = true;
    for (const PipelineConfig &config : mainConfigs()) {
        Compiler compiler(target, config);
        WorkloadRun run = runWorkload(w, compiler, target);
        ASSERT_TRUE(run.ok)
            << w.name << " under " << config.name << " threw "
            << excName(run.exception);
        if (first) {
            expected = run.checksum;
            first = false;
        } else {
            EXPECT_EQ(expected, run.checksum)
                << w.name << " under " << config.name;
        }
    }
}

TEST_P(WorkloadTest, VerifiesAndCoveredAfterEveryConfigIA32)
{
    const Workload &w = *GetParam();
    Target target = makeIA32WindowsTarget();
    for (const PipelineConfig &config : mainConfigs()) {
        auto mod = w.build();
        Compiler compiler(target, config);
        compiler.compile(*mod);
        VerifyResult ver = verifyModule(*mod);
        ASSERT_TRUE(ver.ok())
            << w.name << " under " << config.name << "\n"
            << ver.message();
        for (size_t f = 0; f < mod->numFunctions(); ++f) {
            auto violations = checkNullGuardCoverage(
                mod->function(static_cast<FunctionId>(f)), target);
            for (const auto &v : violations)
                ADD_FAILURE() << w.name << " under " << config.name
                              << ": " << v.description;
        }
    }
}

TEST_P(WorkloadTest, OptimizationNeverSlowsDown)
{
    const Workload &w = *GetParam();
    Target target = makeIA32WindowsTarget();

    auto cyclesUnder = [&](const PipelineConfig &config) {
        Compiler compiler(target, config);
        WorkloadRun run = runWorkload(w, compiler, target);
        EXPECT_TRUE(run.ok) << config.name;
        return run.cycles;
    };

    double noTrap = cyclesUnder(makeNoOptNoTrapConfig());
    double trap = cyclesUnder(makeNoOptTrapConfig());
    double whaley = cyclesUnder(makeOldNullCheckConfig());
    double phase1 = cyclesUnder(makeNewPhase1OnlyConfig());
    double full = cyclesUnder(makeNewFullConfig());

    // The guaranteed partial order.  Notes:
    //  - phase1-only is NOT required to beat Whaley: hoisting can strand
    //    checks away from any trapping access, which is exactly the
    //    Figure 7 phenomenon phase 2 exists to fix (Section 3.3);
    //  - busy-code-motion insertion can cost a fraction of a percent on
    //    partially anticipated paths (full lazy-code-motion lateness
    //    would be needed to eliminate that), hence the 1% tolerance
    //    against Whaley.
    EXPECT_LE(trap, noTrap * 1.0001) << w.name;
    EXPECT_LE(whaley, trap * 1.0001) << w.name;
    EXPECT_LE(phase1, noTrap * 1.0001) << w.name;
    EXPECT_LE(full, whaley * 1.01) << w.name;
    EXPECT_LE(full, phase1 * 1.0001) << w.name;
}

TEST_P(WorkloadTest, PhasesReduceDynamicExplicitChecks)
{
    const Workload &w = *GetParam();
    Target target = makeIA32WindowsTarget();

    auto checksUnder = [&](const PipelineConfig &config) {
        Compiler compiler(target, config);
        WorkloadRun run = runWorkload(w, compiler, target);
        EXPECT_TRUE(run.ok) << config.name;
        return run.stats.explicitNullChecks;
    };

    uint64_t noTrap = checksUnder(makeNoOptNoTrapConfig());
    uint64_t trap = checksUnder(makeNoOptTrapConfig());
    uint64_t whaley = checksUnder(makeOldNullCheckConfig());
    uint64_t phase1 = checksUnder(makeNewPhase1OnlyConfig());
    uint64_t full = checksUnder(makeNewFullConfig());

    // Same caveat as the cycle ordering: phase 1 may strand a handful
    // of hoisted checks where no trapping access can absorb them.
    EXPECT_LE(trap, noTrap) << w.name;
    EXPECT_LE(whaley, trap) << w.name;
    EXPECT_LE(phase1, noTrap) << w.name;
    EXPECT_LE(full, whaley + 8) << w.name;
    EXPECT_LE(full, phase1) << w.name;
}

TEST_P(WorkloadTest, AIXSpeculationNeverSlowsDown)
{
    const Workload &w = *GetParam();
    Target aix = makePPCAIXTarget();

    auto cyclesUnder = [&](const PipelineConfig &config) {
        Compiler compiler(aix, config);
        WorkloadRun run = runWorkload(w, compiler, aix);
        EXPECT_TRUE(run.ok) << config.name;
        return run.cycles;
    };

    double noOpt = cyclesUnder(makeAIXNoOptConfig());
    double noSpec = cyclesUnder(makeAIXNoSpeculationConfig());
    double spec = cyclesUnder(makeAIXSpeculationConfig());

    // Section 5.4 ordering: optimization helps, speculation only adds.
    EXPECT_LE(noSpec, noOpt * 1.0001) << w.name;
    EXPECT_LE(spec, noSpec * 1.0001) << w.name;

    // And speculative loads only ever appear in the speculation arm.
    Compiler noSpecCompiler(aix, makeAIXNoSpeculationConfig());
    auto mod = w.build();
    noSpecCompiler.compile(*mod);
    for (FunctionId f = 0; f < mod->numFunctions(); ++f) {
        for (size_t blk = 0; blk < mod->function(f).numBlocks(); ++blk) {
            for (const Instruction &inst :
                 mod->function(f)
                     .block(static_cast<BlockId>(blk))
                     .insts()) {
                EXPECT_FALSE(inst.speculative)
                    << w.name << ": speculative load without the "
                    << "speculation knob";
            }
        }
    }
}

TEST_P(WorkloadTest, ChecksumAgreesAcrossAIXConfigs)
{
    const Workload &w = *GetParam();
    Target aix = makePPCAIXTarget();
    std::vector<PipelineConfig> configs = {
        makeAIXNoOptConfig(), makeAIXNoSpeculationConfig(),
        makeAIXSpeculationConfig()};
    int64_t expected = 0;
    bool first = true;
    for (const PipelineConfig &config : configs) {
        Compiler compiler(aix, config);
        WorkloadRun run = runWorkload(w, compiler, aix);
        ASSERT_TRUE(run.ok)
            << w.name << " under " << config.name << " threw "
            << excName(run.exception);
        if (first) {
            expected = run.checksum;
            first = false;
        } else {
            EXPECT_EQ(expected, run.checksum)
                << w.name << " under " << config.name;
        }
    }

    // The Illegal Implicit arm compiles against the lying target but
    // must still run (the kernels never dereference null, so its
    // spec violation is latent).
    Target lying = makeIllegalImplicitAIXTarget();
    Compiler illegal(lying, makeAIXIllegalImplicitConfig());
    WorkloadRun run = runWorkload(w, illegal, aix);
    ASSERT_TRUE(run.ok) << w.name << " under Illegal Implicit threw "
                        << excName(run.exception);
    EXPECT_EQ(expected, run.checksum) << w.name << " (illegal implicit)";
}

std::string
workloadName(const ::testing::TestParamInfo<const Workload *> &info)
{
    std::string name = info.param->name;
    for (char &c : name)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::ValuesIn(allWorkloads()),
                         workloadName);

} // namespace
} // namespace trapjit
