/**
 * @file
 * trapjit-fuzz: the multi-threaded differential fuzz driver.
 *
 * Sweeps generated workloads through every execution engine and every
 * pipeline arm (testing/fuzz/fuzz_farm.h), printing throughput and a
 * minimized repro line for any divergence.  Exit status is 0 only for
 * a clean sweep — CI runs this with a time budget and fixed seeds.
 *
 *   trapjit-fuzz [--cases N] [--seed S] [--threads N]
 *                [--profile NAME[,NAME...]] [--arm LABEL[,LABEL...]]
 *                [--time-budget SECONDS] [--json FILE]
 *                [--cache-dir DIR]
 *                [--no-native] [--no-optimized] [--no-tiered]
 *                [--no-service] [-v]
 *   trapjit-fuzz --repro seed=S,profile=P,arm=A
 *   trapjit-fuzz --mutate MUTATION   (exit 0 iff the bug is CAUGHT)
 *
 * Environment fallbacks (flags win): TRAPJIT_FUZZ_SEED,
 * TRAPJIT_FUZZ_CASES, TRAPJIT_FUZZ_THREADS, TRAPJIT_FUZZ_PROFILE.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "testing/fuzz/fuzz_farm.h"

namespace trapjit
{
namespace
{

void
usage()
{
    std::cout
        << "usage: trapjit-fuzz [options]\n"
        << "  --cases N            (seed, profile) cases; each is\n"
        << "                       crossed with every arm (default 500)\n"
        << "  --seed S             first seed (default 1)\n"
        << "  --threads N          mutator threads (default 4)\n"
        << "  --profile P[,P...]   profiles: " << workloadProfileNames()
        << ",random\n"
        << "  --arm A[,A...]       arms: " << fuzzArmLabels() << "\n"
        << "  --time-budget SEC    stop claiming cases after SEC\n"
        << "  --json FILE          write a BENCH-style JSON report\n"
        << "  --cache-dir DIR      persistent-cache soundness oracle:\n"
        << "                       compile through an on-disk cache in\n"
        << "                       DIR and replay every case warm; any\n"
        << "                       pipeline compile or IR byte diff on\n"
        << "                       the replay is a divergence\n"
        << "  --no-native          skip the fast-vs-native oracle\n"
        << "  --no-optimized       skip the fast-vs-optimized oracle\n"
        << "                       (regalloc + speculated-load deopts)\n"
        << "  --no-tiered          skip the fast-vs-tiered oracle\n"
        << "                       (mid-case promotion at threshold 2)\n"
        << "  --no-service         sequential Compiler per case\n"
        << "  --repro seed=S,profile=P,arm=A   rerun one case\n"
        << "  --mutate NAME        inject a known optimizer bug and\n"
        << "                       expect the farm to catch it; one of\n"
        << "                       " << mutationNames() << "\n"
        << "  -v                   progress to stderr\n";
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

bool
parseRepro(const std::string &spec, uint64_t &seed, std::string &profile,
           std::string &arm)
{
    bool haveSeed = false, haveArm = false;
    profile = "mixed";
    for (const std::string &part : splitCommas(spec)) {
        size_t eq = part.find('=');
        if (eq == std::string::npos)
            return false;
        std::string key = part.substr(0, eq);
        std::string value = part.substr(eq + 1);
        if (key == "seed") {
            seed = std::strtoull(value.c_str(), nullptr, 10);
            haveSeed = true;
        } else if (key == "profile") {
            profile = value;
        } else if (key == "arm") {
            arm = value;
            haveArm = true;
        } else {
            return false;
        }
    }
    return haveSeed && haveArm;
}

void
writeJson(const std::string &path, const FuzzResult &result,
          const FuzzOptions &opts)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "trapjit-fuzz: cannot write " << path << "\n";
        return;
    }
    const FuzzStats &s = result.stats;
    out << "{\n"
        << "  \"bench\": \"fuzz\",\n"
        << "  \"cases\": " << s.casesRun << ",\n"
        << "  \"arms\": "
        << (opts.arms.empty() ? fuzzArms().size() : opts.arms.size())
        << ",\n"
        << "  \"threads\": " << opts.threads << ",\n"
        << "  \"modules_built\": " << s.modulesBuilt << ",\n"
        << "  \"functions_compiled\": " << s.functionsCompiled << ",\n"
        << "  \"native_comparisons\": " << s.nativeComparisons << ",\n"
        << "  \"optimized_comparisons\": " << s.optimizedComparisons
        << ",\n"
        << "  \"tiered_comparisons\": " << s.tieredComparisons << ",\n"
        << "  \"persistent_comparisons\": " << s.persistentComparisons
        << ",\n"
        << "  \"traps_taken\": " << s.trapsTaken << ",\n"
        << "  \"instructions\": " << s.instructionsExecuted << ",\n"
        << "  \"audit_findings\": " << s.auditFindings << ",\n"
        << "  \"divergences\": " << result.divergences.size() << ",\n"
        << "  \"elapsed_seconds\": " << s.elapsedSeconds << ",\n"
        << "  \"cases_per_second\": " << s.casesPerSecond() << ",\n"
        << "  \"traps_per_second\": " << s.trapsPerSecond() << ",\n"
        << "  \"compiles_per_second\": " << s.compilesPerSecond() << "\n"
        << "}\n";
}

void
printSummary(const FuzzResult &result)
{
    const FuzzStats &s = result.stats;
    std::printf("trapjit-fuzz: %llu cases in %.2fs "
                "(%.0f cases/s, %.0f traps/s, %.0f compiles/s)\n",
                static_cast<unsigned long long>(s.casesRun),
                s.elapsedSeconds, s.casesPerSecond(), s.trapsPerSecond(),
                s.compilesPerSecond());
    std::printf("  modules=%llu compiled=%llu native-cmp=%llu "
                "optimized-cmp=%llu tiered-cmp=%llu "
                "persistent-cmp=%llu traps=%llu instructions=%llu\n",
                static_cast<unsigned long long>(s.modulesBuilt),
                static_cast<unsigned long long>(s.functionsCompiled),
                static_cast<unsigned long long>(s.nativeComparisons),
                static_cast<unsigned long long>(s.optimizedComparisons),
                static_cast<unsigned long long>(s.tieredComparisons),
                static_cast<unsigned long long>(
                    s.persistentComparisons),
                static_cast<unsigned long long>(s.trapsTaken),
                static_cast<unsigned long long>(s.instructionsExecuted));
    for (const FuzzDivergence &d : result.divergences)
        std::printf("  DIVERGENCE %s %s\n", d.reproLine().c_str(),
                    d.message.c_str());
}

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0'
               ? std::strtoull(v, nullptr, 10)
               : fallback;
}

int
run(int argc, char **argv)
{
    FuzzOptions opts;
    opts.cases = static_cast<int>(envU64("TRAPJIT_FUZZ_CASES", 500));
    opts.firstSeed = envU64("TRAPJIT_FUZZ_SEED", 1);
    opts.threads = static_cast<int>(envU64("TRAPJIT_FUZZ_THREADS", 4));
    if (const char *p = std::getenv("TRAPJIT_FUZZ_PROFILE");
        p != nullptr && *p != '\0')
        opts.profiles = splitCommas(p);

    bool verbose = false;
    bool casesExplicit = false;
    bool reproMode = false;
    uint64_t reproSeed = 0;
    std::string reproProfile, reproArm, jsonPath, mutateName;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "trapjit-fuzz: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--cases") {
            opts.cases = std::atoi(value().c_str());
            casesExplicit = true;
        } else if (flag == "--seed") {
            opts.firstSeed = std::strtoull(value().c_str(), nullptr, 10);
        } else if (flag == "--threads") {
            opts.threads = std::atoi(value().c_str());
        } else if (flag == "--profile") {
            opts.profiles = splitCommas(value());
        } else if (flag == "--arm") {
            for (const std::string &label : splitCommas(value())) {
                int arm = findFuzzArm(label);
                if (arm < 0) {
                    std::cerr << "trapjit-fuzz: unknown arm '" << label
                              << "' (arms: " << fuzzArmLabels() << ")\n";
                    return 2;
                }
                opts.arms.push_back(arm);
            }
        } else if (flag == "--time-budget") {
            opts.timeBudgetSeconds = std::atof(value().c_str());
        } else if (flag == "--json") {
            jsonPath = value();
        } else if (flag == "--cache-dir") {
            opts.cacheDir = value();
        } else if (flag == "--no-native") {
            opts.useNativeEngine = false;
        } else if (flag == "--no-optimized") {
            opts.useOptimizedEngine = false;
        } else if (flag == "--no-tiered") {
            opts.useTieredEngine = false;
        } else if (flag == "--no-service") {
            opts.useService = false;
        } else if (flag == "--repro") {
            reproMode = true;
            if (!parseRepro(value(), reproSeed, reproProfile,
                            reproArm)) {
                std::cerr << "trapjit-fuzz: --repro wants "
                             "seed=S,profile=P,arm=A\n";
                return 2;
            }
        } else if (flag == "--mutate") {
            mutateName = value();
            opts.mutation = mutationFromName(mutateName);
            if (opts.mutation == NullCheckMutation::None) {
                std::cerr << "trapjit-fuzz: unknown mutation '"
                          << mutateName
                          << "' (one of: " << mutationNames() << ")\n";
                return 2;
            }
        } else if (flag == "-v" || flag == "--verbose") {
            verbose = true;
        } else if (flag == "--help" || flag == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "trapjit-fuzz: unknown flag " << flag << "\n";
            usage();
            return 2;
        }
    }

    for (const std::string &p : opts.profiles) {
        if (p != kRandomProgramProfile &&
            findWorkloadProfile(p) == nullptr) {
            std::cerr << "trapjit-fuzz: unknown profile '" << p
                      << "' (profiles: " << workloadProfileNames()
                      << ",random)\n";
            return 2;
        }
    }

    if (verbose)
        opts.log = [](const std::string &line) {
            std::cerr << line << "\n";
        };

    // Mutation mode compiles sequentially per worker; a targeted sweep
    // of a few dozen seeds catches every known mutation in seconds.
    if (opts.mutation != NullCheckMutation::None && !casesExplicit)
        opts.cases = 40;

    if (reproMode) {
        int arm = findFuzzArm(reproArm);
        if (arm < 0) {
            std::cerr << "trapjit-fuzz: unknown arm '" << reproArm
                      << "' (arms: " << fuzzArmLabels() << ")\n";
            return 2;
        }
        std::printf("trapjit-fuzz: rerunning seed=%llu profile=%s "
                    "arm=%s\n",
                    static_cast<unsigned long long>(reproSeed),
                    reproProfile.c_str(), reproArm.c_str());
        FuzzResult result =
            rerunFuzzCase(reproSeed, reproProfile, reproArm, opts);
        printSummary(result);
        if (result.clean()) {
            std::printf("trapjit-fuzz: case is clean\n");
            return 0;
        }
        return 1;
    }

    FuzzResult result = runFuzzFarm(opts);
    printSummary(result);
    if (!jsonPath.empty())
        writeJson(jsonPath, result, opts);

    if (opts.mutation != NullCheckMutation::None) {
        // Inverted verdict: a mutated compiler surviving a clean sweep
        // means the whole detection stack missed a real bug.
        if (result.clean()) {
            std::printf("trapjit-fuzz: mutation %s was NOT caught\n",
                        mutateName.c_str());
            return 1;
        }
        std::printf("trapjit-fuzz: mutation %s caught (%zu finding(s)); "
                    "first repro: %s\n",
                    mutateName.c_str(), result.divergences.size(),
                    result.divergences.front().reproLine().c_str());
        return 0;
    }

    return result.clean() ? 0 : 1;
}

} // namespace
} // namespace trapjit

int
main(int argc, char **argv)
{
    return trapjit::run(argc, argv);
}
