/**
 * @file
 * trapjit-lint: the null-check soundness auditor as a command-line tool.
 *
 * Compiles programs through every (target, pipeline) arm of the config
 * matrix with the auditor in Collect mode and prints each finding —
 * translation-validation failures of the null-check passes, coverage
 * gaps, and trap-safety violations (see analysis/audit/audit.h).  Exits
 * nonzero when any finding surfaces, so CI can run it as a gate.
 *
 * Inputs are the two corpora the repo can generate on its own: the
 * deterministic random-program seeds the differential test suites use,
 * and the JByteMark / SPECjvm98-like workload modules.
 *
 * Usage:
 *   trapjit-lint [--seeds A:B] [--arm SUBSTR] [--no-workloads]
 *                [--no-random] [-v]
 *
 *   --seeds A:B     random-program seed range, half open (default 200:232,
 *                   the config-matrix suite's seed set)
 *   --arm SUBSTR    only arms whose "target/config" label contains SUBSTR
 *   --no-workloads  skip the workload modules
 *   --no-random     skip the random-program corpus
 *   -v              also print per-arm clean summaries
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "jit/compiler.h"
#include "testing/random_program.h"
#include "workloads/workload.h"

namespace
{

using namespace trapjit;

struct Arm
{
    const char *targetName;
    Target (*makeTarget)();
    PipelineConfig (*makeConfig)();
};

// Identical to the tests' config matrix: every legal (target, pipeline)
// pair, including both AIX speculation arms.
const Arm kArms[] = {
    {"ia32", makeIA32WindowsTarget, makeNoOptNoTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeNoOptTrapConfig},
    {"ia32", makeIA32WindowsTarget, makeOldNullCheckConfig},
    {"ia32", makeIA32WindowsTarget, makeNewPhase1OnlyConfig},
    {"ia32", makeIA32WindowsTarget, makeNewFullConfig},
    {"ia32", makeIA32WindowsTarget, makeAltVMConfig},
    {"aix", makePPCAIXTarget, makeAIXNoOptConfig},
    {"aix", makePPCAIXTarget, makeAIXNoSpeculationConfig},
    {"aix", makePPCAIXTarget, makeAIXSpeculationConfig},
    {"sparc", makeSPARCTarget, makeNewFullConfig},
    {"s390", makeS390Target, makeNewFullConfig},
};

struct LintOptions
{
    uint64_t seedBegin = 200;
    uint64_t seedEnd = 232;
    std::string armFilter;
    bool runWorkloads = true;
    bool runRandom = true;
    bool verbose = false;
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::cerr << "usage: " << argv0
              << " [--seeds A:B] [--arm SUBSTR] [--no-workloads]"
                 " [--no-random] [-v]\n";
    std::exit(code);
}

LintOptions
parseArgs(int argc, char **argv)
{
    LintOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seeds" && i + 1 < argc) {
            const char *spec = argv[++i];
            const char *colon = std::strchr(spec, ':');
            if (!colon)
                usage(argv[0], 2);
            opts.seedBegin = std::strtoull(spec, nullptr, 10);
            opts.seedEnd = std::strtoull(colon + 1, nullptr, 10);
        } else if (arg == "--arm" && i + 1 < argc) {
            opts.armFilter = argv[++i];
        } else if (arg == "--no-workloads") {
            opts.runWorkloads = false;
        } else if (arg == "--no-random") {
            opts.runRandom = false;
        } else if (arg == "-v" || arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "-h" || arg == "--help") {
            usage(argv[0], 0);
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage(argv[0], 2);
        }
    }
    return opts;
}

struct LintTotals
{
    size_t modules = 0;
    size_t functions = 0;
    size_t errors = 0;
    size_t warnings = 0;
};

/** Compile @p mod under @p arm with the auditor on; print findings. */
void
lintModule(const Arm &arm, const std::string &label, Module &mod,
           const LintOptions &opts, LintTotals &totals)
{
    PipelineConfig config = arm.makeConfig();
    config.audit = AuditMode::Collect;
    Compiler compiler(arm.makeTarget(), config);
    CompileReport report = compiler.compile(mod);

    ++totals.modules;
    totals.functions += report.functionsCompiled;
    totals.errors += report.audit.errorCount();
    totals.warnings += report.audit.warningCount();

    if (!report.audit.clean()) {
        std::cout << label << ":\n";
        for (const AuditFinding &f : report.audit.findings)
            std::cout << "  " << f.format() << "\n";
    } else if (opts.verbose) {
        std::cout << label << ": clean (" << report.functionsCompiled
                  << " functions)\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const LintOptions opts = parseArgs(argc, argv);
    LintTotals totals;

    for (const Arm &arm : kArms) {
        const std::string armLabel =
            std::string(arm.targetName) + "/" + arm.makeConfig().name;
        if (!opts.armFilter.empty() &&
            armLabel.find(opts.armFilter) == std::string::npos)
            continue;

        if (opts.runRandom) {
            for (uint64_t seed = opts.seedBegin; seed < opts.seedEnd;
                 ++seed) {
                GeneratorOptions gen;
                gen.seed = seed;
                auto mod = generateRandomModule(gen);
                lintModule(arm,
                           armLabel + " seed " + std::to_string(seed),
                           *mod, opts, totals);
            }
        }
        if (opts.runWorkloads) {
            for (const auto &suite :
                 {&jbytemarkWorkloads(), &specjvmWorkloads()}) {
                for (const Workload &w : *suite) {
                    auto mod = w.build();
                    lintModule(arm, armLabel + " workload " + w.name,
                               *mod, opts, totals);
                }
            }
        }
    }

    std::cout << "trapjit-lint: " << totals.modules << " modules, "
              << totals.functions << " functions audited, "
              << totals.errors << " errors, " << totals.warnings
              << " warnings\n";
    return totals.errors > 0 || totals.warnings > 0 ? 1 : 0;
}
